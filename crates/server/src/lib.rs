//! # tdp-server — a multi-session TCP frontend for the engine
//!
//! Serves a [`TdpEngine`] to many concurrent clients over plain TCP —
//! the serving half of the engine/session split: the engine owns
//! everything shareable (catalog, cross-session plan cache, kernels),
//! the server gives every connection its own [`tdp_core::Session`], and
//! admission control keeps a bounded number of queries executing at
//! once.
//!
//! ```text
//!            TdpServer (accept thread, std::net — no async runtime)
//!                │ one OS thread per connection
//!    ┌───────────┼───────────┐
//!    ▼           ▼           ▼
//!  conn A      conn B      conn C        each: Session (per-user state,
//!  Session     Session     Session       prepared statements, device)
//!    └───────────┼───────────┘
//!                ▼
//!          AdmissionControl  (counting semaphore: ≤ max_concurrent
//!                │            executing, ≤ max_queued waiting)
//!                ▼
//!          Arc<TdpEngine>    (catalog, shared plan cache, shared UDFs,
//!                             chain kernels, EngineStats)
//! ```
//!
//! ## Protocol
//!
//! Line-oriented text, one request per line, UTF-8. Every response is a
//! sequence of lines terminated by a line containing a single `.`:
//!
//! ```text
//! request   = verb [SP operand] LF
//! verb      = "QUERY" | "PREPARE" | "BIND" | "EXPLAIN" | "PROFILE"
//!           | "STATS" | "QUIT"
//! response  = ( "OK" [SP detail] LF body* | "ERR" SP code SP message LF )
//!             "." LF
//! ```
//!
//! * `QUERY <sql>` — compile and execute; responds `OK <n> rows` plus the
//!   rendered result table. DDL statements (`CREATE INDEX … USING ivf(…)`,
//!   `DROP INDEX …`) run on the same verb and respond with a one-line ack.
//! * `PREPARE <name> <sql>` — remember `<sql>` under `<name>` for this
//!   connection. Compilation happens (and is plan-cached engine-wide) at
//!   `BIND` time; `PREPARE` itself just validates and stores the text.
//! * `BIND <name> [arg …]` — execute a prepared statement with positional
//!   arguments. Numbers bind as numbers, `true`/`false` as booleans,
//!   `null` as NULL, `'single quoted'` tokens as strings (`''` escapes a
//!   quote). Re-preparing per bind is cheap: the normalized statement
//!   hits the engine's cross-session plan cache.
//! * `EXPLAIN <sql>` / `PROFILE <sql>` — the compiled plan, or the result
//!   plus a per-operator execution profile.
//! * `STATS` — engine observability: sessions, served/queued/rejected
//!   query counts, plan-cache counters and hit rate
//!   ([`TdpEngine::stats`]), access-path counters — morsels pruned
//!   by zone maps, morsels scanned, ANN top-k queries, stale-IVF
//!   fallbacks ([`TdpEngine::access_path_stats`]) — and memory-pool
//!   gauges: bytes in use, high-water mark, configured budget and
//!   budget-abort count.
//! * `QUIT` — close the connection (`OK bye`).
//!
//! Error responses are one line, `ERR <CODE> <message>`, with codes
//! `BUSY` (admission rejection), `PROTO` (malformed request), `SQL`
//! (compile error), `MEM_BUDGET` (query aborted by the engine memory
//! budget), `EXEC` (any other runtime error), `UNKNOWN_STATEMENT` (BIND
//! of a name never prepared on this connection).
//!
//! ## Admission control
//!
//! Execution verbs (`QUERY`, `BIND`, `PROFILE`) pass through a counting
//! semaphore before running: at most [`ServerConfig::max_concurrent`]
//! queries execute at once; up to [`ServerConfig::max_queued`] more wait
//! in FIFO-ish order for at most [`ServerConfig::queue_timeout`]. A query
//! beyond both bounds — or one whose wait times out — is rejected with
//! `ERR BUSY …` immediately rather than hanging; the engine counts
//! queued and rejected queries in [`tdp_core::EngineStats`]. `EXPLAIN`, `PREPARE`
//! and `STATS` do not execute and bypass admission.
//!
//! With [`ServerConfig::mem_per_query`] set (`TDP_MEM_PER_QUERY`), each
//! execution slot additionally reserves that many bytes out of the
//! engine's [`tdp_mem::MemoryPool`] as an admission envelope before the
//! query starts: when the pool cannot cover another envelope the query
//! queues (or gets `ERR BUSY`) exactly like slot exhaustion, so the
//! server stops *starting* queries that would immediately abort on the
//! memory budget. The envelope is released with the permit when the
//! query finishes. An envelope refusal is a `BUSY` rejection, not a
//! budget abort — `mem_budget_aborts` counts only queries that ran and
//! breached.
//!
//! ## Shutdown
//!
//! [`TdpServer::shutdown`] (also run on drop) stops accepting, then
//! half-closes every connection's read side: a connection mid-query
//! finishes executing, writes its response, sees EOF and exits — in-
//! flight work drains, nothing is aborted mid-write.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tdp_core::{Session, StatementOutcome, TdpEngine, TdpError};
use tdp_exec::{ParamValue, ParamValues};

/// Rows of a result table rendered into a response (queries returning
/// more still report their full count on the `OK` line).
const RESULT_ROW_LIMIT: usize = 100;

/// Serving knobs. `Default` reads the environment: `TDP_MAX_CONCURRENT`
/// (default 4), `TDP_MAX_QUEUED` (default `2 × max_concurrent`),
/// `TDP_QUEUE_TIMEOUT_MS` (default 1000), `TDP_MEM_PER_QUERY` (bytes,
/// `k`/`m`/`g` suffixes allowed; default off).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Queries allowed to execute simultaneously (≥ 1).
    pub max_concurrent: usize,
    /// Queries allowed to wait for an execution slot (0 = reject as soon
    /// as the executing cap is reached).
    pub max_queued: usize,
    /// How long a queued query waits for a slot before `ERR BUSY`.
    pub queue_timeout: Duration,
    /// Memory-envelope bytes reserved from the engine pool per
    /// executing query; `None` disables the memory admission gate.
    pub mem_per_query: Option<u64>,
}

fn env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok().and_then(|v| v.parse().ok())
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        let max_concurrent = env_usize("TDP_MAX_CONCURRENT")
            .filter(|&n| n >= 1)
            .unwrap_or(4);
        ServerConfig {
            max_concurrent,
            max_queued: env_usize("TDP_MAX_QUEUED").unwrap_or(max_concurrent * 2),
            queue_timeout: Duration::from_millis(
                env_usize("TDP_QUEUE_TIMEOUT_MS")
                    .map(|n| n as u64)
                    .unwrap_or(1000),
            ),
            mem_per_query: std::env::var("TDP_MEM_PER_QUERY")
                .ok()
                .and_then(|v| tdp_mem::parse_bytes(&v)),
        }
    }
}

impl ServerConfig {
    pub fn max_concurrent(mut self, n: usize) -> ServerConfig {
        self.max_concurrent = n.max(1);
        self
    }

    pub fn max_queued(mut self, n: usize) -> ServerConfig {
        self.max_queued = n;
        self
    }

    pub fn queue_timeout(mut self, d: Duration) -> ServerConfig {
        self.queue_timeout = d;
        self
    }

    pub fn mem_per_query(mut self, bytes: u64) -> ServerConfig {
        self.mem_per_query = Some(bytes);
        self
    }
}

#[derive(Debug)]
struct AdmissionState {
    executing: usize,
    waiting: usize,
}

/// The counting semaphore gating execution verbs. Lock poisoning is
/// recovered (`into_inner`): the state is two counters adjusted in
/// single critical sections, never left torn.
#[derive(Debug)]
pub struct AdmissionControl {
    max_concurrent: usize,
    max_queued: usize,
    timeout: Duration,
    /// Admission envelope carved out of the engine memory pool per
    /// executing query; `None` disables the memory gate.
    mem_per_query: Option<u64>,
    state: Mutex<AdmissionState>,
    available: Condvar,
}

/// RAII execution slot; releasing wakes one queued query.
#[derive(Debug)]
struct AdmissionPermit<'a> {
    ctl: &'a AdmissionControl,
    /// The memory envelope held while the query executes.
    mem: Option<tdp_mem::MemoryReservation>,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        // Release the memory envelope *before* notifying: a woken
        // waiter must be able to take both the slot and the envelope.
        self.mem.take();
        let mut st = self.ctl.state.lock().unwrap_or_else(|e| e.into_inner());
        st.executing -= 1;
        drop(st);
        // notify_all, not notify_one: a woken waiter may be one that is
        // about to give up on timeout, which would strand the slot.
        self.ctl.available.notify_all();
    }
}

impl AdmissionControl {
    fn new(config: &ServerConfig) -> AdmissionControl {
        AdmissionControl {
            max_concurrent: config.max_concurrent.max(1),
            max_queued: config.max_queued,
            timeout: config.queue_timeout,
            mem_per_query: config.mem_per_query,
            state: Mutex::new(AdmissionState {
                executing: 0,
                waiting: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Try to take the per-query memory envelope. `Ok(None)` when the
    /// gate is off; `Err(())` when the pool cannot cover it right now.
    fn try_envelope(&self, engine: &TdpEngine) -> Result<Option<tdp_mem::MemoryReservation>, ()> {
        match self.mem_per_query {
            None => Ok(None),
            Some(bytes) => engine.memory_pool().try_reserve(bytes).map(Some).ok_or(()),
        }
    }

    /// Take an execution slot (and, with the memory gate on, a memory
    /// envelope), waiting in the bounded queue if either is
    /// unavailable. `Err` is the typed `BUSY` message; the engine's
    /// queued/rejected counters are updated here.
    fn acquire<'a>(&'a self, engine: &TdpEngine) -> Result<AdmissionPermit<'a>, String> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.executing < self.max_concurrent {
            if let Ok(mem) = self.try_envelope(engine) {
                st.executing += 1;
                return Ok(AdmissionPermit { ctl: self, mem });
            }
        }
        if st.waiting >= self.max_queued {
            engine.note_query_rejected();
            return Err(format!(
                "server busy: {} executing (cap {}), {} queued (cap {})",
                st.executing, self.max_concurrent, st.waiting, self.max_queued
            ));
        }
        st.waiting += 1;
        engine.note_query_queued();
        let deadline = Instant::now() + self.timeout;
        loop {
            if st.executing < self.max_concurrent {
                if let Ok(mem) = self.try_envelope(engine) {
                    st.waiting -= 1;
                    st.executing += 1;
                    return Ok(AdmissionPermit { ctl: self, mem });
                }
            }
            let now = Instant::now();
            if now >= deadline {
                st.waiting -= 1;
                engine.note_query_rejected();
                return Err(format!(
                    "server busy: no execution slot or memory envelope within {:?} (cap {})",
                    self.timeout, self.max_concurrent
                ));
            }
            let (guard, _) = self
                .available
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }
}

/// A live TCP frontend over a shared engine. Dropping the server shuts
/// it down gracefully (see the module docs).
pub struct TdpServer {
    engine: Arc<TdpEngine>,
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl TdpServer {
    /// Bind and start serving `engine` on `addr` (use port 0 for an
    /// ephemeral port; read it back with [`TdpServer::local_addr`]).
    pub fn bind(
        engine: Arc<TdpEngine>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<TdpServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept + poll so the accept thread can observe the
        // shutdown flag without needing a wakeup connection.
        listener.set_nonblocking(true)?;

        let running = Arc::new(AtomicBool::new(true));
        let admission = Arc::new(AdmissionControl::new(&config));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let conn_handles: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        let accept_handle = {
            let engine = Arc::clone(&engine);
            let running = Arc::clone(&running);
            let admission = Arc::clone(&admission);
            let conns = Arc::clone(&conns);
            let conn_handles = Arc::clone(&conn_handles);
            std::thread::spawn(move || {
                while running.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            if let Ok(clone) = stream.try_clone() {
                                conns.lock().unwrap_or_else(|e| e.into_inner()).push(clone);
                            }
                            let engine = Arc::clone(&engine);
                            let admission = Arc::clone(&admission);
                            let handle = std::thread::spawn(move || {
                                serve_connection(&engine, stream, &admission);
                            });
                            conn_handles
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push(handle);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        Ok(TdpServer {
            engine,
            local_addr,
            running,
            accept_handle: Some(accept_handle),
            conns,
            conn_handles,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine being served.
    pub fn engine(&self) -> &Arc<TdpEngine> {
        &self.engine
    }

    /// Stop accepting, drain in-flight queries, close every connection,
    /// and join all serving threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        if let Some(h) = self.accept_handle.take() {
            h.join().ok();
        }
        // Half-close the read side: blocked readers see EOF, and a
        // connection mid-query still gets to write its response.
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            conn.shutdown(Shutdown::Read).ok();
        }
        let handles: Vec<_> = self
            .conn_handles
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for h in handles {
            h.join().ok();
        }
    }
}

impl Drop for TdpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One connection: its own session, its own prepared-statement namespace.
fn serve_connection(engine: &Arc<TdpEngine>, stream: TcpStream, admission: &AdmissionControl) {
    let session = engine.session();
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    let mut statements: HashMap<String, String> = HashMap::new();

    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (verb, rest) = match line.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (line, ""),
        };
        let reply = match verb.to_ascii_uppercase().as_str() {
            "QUERY" => exec_query(&session, engine, admission, rest),
            "PREPARE" => prepare_statement(&session, &mut statements, rest),
            "BIND" => bind_statement(&session, engine, admission, &statements, rest),
            "EXPLAIN" => explain_query(&session, rest),
            "PROFILE" => profile_query(&session, engine, admission, rest),
            "STATS" => Ok(render_stats(engine)),
            "QUIT" => {
                write_response(&mut writer, &Ok("OK bye".to_string()));
                break;
            }
            other => Err(("PROTO".to_string(), format!("unknown verb '{other}'"))),
        };
        if !write_response(&mut writer, &reply) {
            break;
        }
    }
}

/// Write a framed response; returns false when the peer is gone.
fn write_response(w: &mut impl Write, reply: &Result<String, (String, String)>) -> bool {
    let ok = match reply {
        Ok(body) => writeln!(w, "{}\n.", body.trim_end()),
        Err((code, msg)) => writeln!(w, "ERR {code} {}\n.", one_line(msg)),
    };
    ok.and_then(|_| w.flush()).is_ok()
}

/// Collapse a (possibly multi-line) error message into the single-line
/// `ERR` frame.
fn one_line(msg: &str) -> String {
    msg.replace(['\n', '\r'], "; ")
}

fn sql_error(e: &TdpError) -> (String, String) {
    let code = match e {
        TdpError::Sql(_) | TdpError::Session(_) => "SQL",
        // A budget breach gets its own code: clients can tell "this
        // query is too big for the configured budget" from a plain
        // runtime failure and react differently (shrink, retry later).
        TdpError::Exec(tdp_exec::ExecError::MemoryBudget { .. }) => "MEM_BUDGET",
        TdpError::Exec(_) => "EXEC",
    };
    (code.to_string(), e.to_string())
}

fn exec_query(
    session: &Session,
    engine: &TdpEngine,
    admission: &AdmissionControl,
    sql: &str,
) -> Result<String, (String, String)> {
    if sql.is_empty() {
        return Err(("PROTO".into(), "QUERY needs a statement".into()));
    }
    let _permit = admission
        .acquire(engine)
        .map_err(|m| ("BUSY".to_string(), m))?;
    // `execute`, not `query`: DDL statements (CREATE/DROP INDEX) are
    // accepted on the same verb as queries.
    match session.execute(sql).map_err(|e| sql_error(&e))? {
        StatementOutcome::Rows(table) => Ok(render_table(&table)),
        StatementOutcome::Ack(msg) => Ok(format!("OK {msg}")),
    }
}

fn prepare_statement(
    session: &Session,
    statements: &mut HashMap<String, String>,
    rest: &str,
) -> Result<String, (String, String)> {
    let (name, sql) = rest
        .split_once(char::is_whitespace)
        .map(|(n, s)| (n, s.trim()))
        .ok_or((
            "PROTO".to_string(),
            "usage: PREPARE <name> <sql>".to_string(),
        ))?;
    if sql.is_empty() {
        return Err(("PROTO".into(), "usage: PREPARE <name> <sql>".into()));
    }
    // Compile now so errors surface at PREPARE time; the compilation is
    // not wasted — it warms the engine plan cache that BIND hits.
    let prepared = session.prepare(sql).map_err(|e| sql_error(&e))?;
    let params = prepared.param_count();
    statements.insert(name.to_string(), sql.to_string());
    Ok(format!("OK prepared {name} ({params} parameter(s))"))
}

fn bind_statement(
    session: &Session,
    engine: &TdpEngine,
    admission: &AdmissionControl,
    statements: &HashMap<String, String>,
    rest: &str,
) -> Result<String, (String, String)> {
    let (name, args) = match rest.split_once(char::is_whitespace) {
        Some((n, a)) => (n, a.trim()),
        None => (rest, ""),
    };
    if name.is_empty() {
        return Err(("PROTO".into(), "usage: BIND <name> [args…]".into()));
    }
    let sql = statements.get(name).ok_or((
        "UNKNOWN_STATEMENT".to_string(),
        format!("no prepared statement '{name}' on this connection"),
    ))?;
    let params = parse_args(args).map_err(|m| ("PROTO".to_string(), m))?;
    let _permit = admission
        .acquire(engine)
        .map_err(|m| ("BUSY".to_string(), m))?;
    // Re-prepare by text: the normalized statement hits the engine plan
    // cache, so this is a lookup, not a compilation.
    let prepared = session.prepare(sql).map_err(|e| sql_error(&e))?;
    let bound = prepared.bind(params).map_err(|e| sql_error(&e))?;
    let table = bound.run().map_err(|e| sql_error(&e))?;
    Ok(render_table(&table))
}

fn explain_query(session: &Session, sql: &str) -> Result<String, (String, String)> {
    if sql.is_empty() {
        return Err(("PROTO".into(), "EXPLAIN needs a statement".into()));
    }
    let prepared = session.prepare(sql).map_err(|e| sql_error(&e))?;
    Ok(format!("OK explain\n{}", prepared.explain().trim_end()))
}

fn profile_query(
    session: &Session,
    engine: &TdpEngine,
    admission: &AdmissionControl,
    sql: &str,
) -> Result<String, (String, String)> {
    if sql.is_empty() {
        return Err(("PROTO".into(), "PROFILE needs a statement".into()));
    }
    let _permit = admission
        .acquire(engine)
        .map_err(|m| ("BUSY".to_string(), m))?;
    let query = session.query(sql).map_err(|e| sql_error(&e))?;
    let (table, profile) = query.run_profiled().map_err(|e| sql_error(&e))?;
    Ok(format!(
        "{}\n{}",
        render_table(&table),
        profile.pretty().trim_end()
    ))
}

fn render_table(table: &tdp_storage::Table) -> String {
    format!(
        "OK {} rows\n{}",
        table.rows(),
        table.pretty(RESULT_ROW_LIMIT).trim_end()
    )
}

fn render_stats(engine: &TdpEngine) -> String {
    let stats = engine.stats();
    let access = engine.access_path_stats();
    format!(
        "OK stats\n\
         sessions_open {}\n\
         sessions_total {}\n\
         queries_served {}\n\
         queries_queued {}\n\
         queries_rejected {}\n\
         plan_cache_hits {}\n\
         plan_cache_misses {}\n\
         plan_cache_evictions {}\n\
         plan_cache_entries {}\n\
         plan_cache_hit_rate {:.3}\n\
         morsels_pruned {}\n\
         morsels_scanned {}\n\
         ann_queries {}\n\
         ivf_stale_fallbacks {}\n\
         ivf_rebuilds {}\n\
         barriers_selection_fed {}\n\
         barriers_gathered {}\n\
         mem_used_bytes {}\n\
         mem_high_water_bytes {}\n\
         mem_budget_bytes {}\n\
         mem_budget_aborts {}",
        stats.sessions_open,
        stats.sessions_total,
        stats.queries_served,
        stats.queries_queued,
        stats.queries_rejected,
        stats.plan_cache.hits,
        stats.plan_cache.misses,
        stats.plan_cache.evictions,
        stats.plan_cache.entries,
        stats.plan_cache_hit_rate(),
        access.morsels_pruned,
        access.morsels_scanned,
        access.ann_queries,
        access.ivf_stale_fallbacks,
        access.ivf_rebuilds,
        access.barriers_selection_fed,
        access.barriers_gathered,
        stats.mem_used_bytes,
        stats.mem_high_water_bytes,
        stats
            .mem_budget_bytes
            .map_or_else(|| "unlimited".to_string(), |b| b.to_string()),
        stats.mem_budget_aborts,
    )
}

/// Parse `BIND` arguments: whitespace-separated tokens; `'…'` quotes a
/// string (spaces allowed inside, `''` escapes a quote), `true`/`false`
/// bind booleans, `null` binds NULL, anything parsing as f64 binds a
/// number.
fn parse_args(s: &str) -> Result<ParamValues, String> {
    let mut params = ParamValues::new();
    let mut chars = s.chars().peekable();
    loop {
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        let value = if c == '\'' {
            chars.next();
            let mut out = String::new();
            loop {
                match chars.next() {
                    Some('\'') => {
                        if chars.peek() == Some(&'\'') {
                            chars.next();
                            out.push('\'');
                        } else {
                            break;
                        }
                    }
                    Some(ch) => out.push(ch),
                    None => return Err("unterminated string argument".into()),
                }
            }
            ParamValue::String(out)
        } else {
            let mut tok = String::new();
            while matches!(chars.peek(), Some(c) if !c.is_whitespace()) {
                tok.push(chars.next().expect("peeked"));
            }
            match tok.as_str() {
                "true" => ParamValue::Bool(true),
                "false" => ParamValue::Bool(false),
                "null" => ParamValue::Null,
                other => ParamValue::Number(
                    other
                        .parse::<f64>()
                        .map_err(|_| format!("cannot parse argument '{other}' (quote strings)"))?,
                ),
            }
        };
        params.push(value);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_storage::TableBuilder;

    fn test_engine() -> Arc<TdpEngine> {
        let engine = TdpEngine::new();
        engine.register_table(
            TableBuilder::new()
                .col_f32("v", (0..10).map(|i| i as f32).collect())
                .build("nums"),
        );
        engine
    }

    /// A client helper: send one line, read until the `.` frame.
    fn roundtrip(stream: &TcpStream, reader: &mut BufReader<TcpStream>, req: &str) -> String {
        let mut w = stream.try_clone().unwrap();
        writeln!(w, "{req}").unwrap();
        w.flush().unwrap();
        let mut out = String::new();
        loop {
            let mut line = String::new();
            assert_ne!(reader.read_line(&mut line).unwrap(), 0, "server hung up");
            if line.trim_end() == "." {
                return out;
            }
            out.push_str(&line);
        }
    }

    fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
        let stream = TcpStream::connect(addr).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        (stream, reader)
    }

    #[test]
    fn protocol_round_trip() {
        let server =
            TdpServer::bind(test_engine(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let r = roundtrip(&stream, &mut reader, "QUERY SELECT COUNT(*) FROM nums");
        assert!(r.starts_with("OK 1 rows\n"), "{r}");
        assert!(r.contains("10"), "{r}");

        let r = roundtrip(
            &stream,
            &mut reader,
            "PREPARE big SELECT COUNT(*) FROM nums WHERE v >= ?",
        );
        assert!(r.starts_with("OK prepared big (1 parameter(s))"), "{r}");
        let r = roundtrip(&stream, &mut reader, "BIND big 7");
        assert!(r.contains('3'), "v >= 7 keeps 7,8,9: {r}");
        let r = roundtrip(&stream, &mut reader, "BIND missing 7");
        assert!(r.starts_with("ERR UNKNOWN_STATEMENT"), "{r}");

        let r = roundtrip(
            &stream,
            &mut reader,
            "EXPLAIN SELECT v FROM nums WHERE v > 1",
        );
        assert!(r.contains("== physical"), "{r}");
        let r = roundtrip(&stream, &mut reader, "PROFILE SELECT COUNT(*) FROM nums");
        assert!(r.starts_with("OK 1 rows\n"), "{r}");

        let r = roundtrip(&stream, &mut reader, "STATS");
        assert!(r.contains("sessions_open 1"), "{r}");
        assert!(r.contains("plan_cache_hit_rate"), "{r}");
        assert!(r.contains("morsels_pruned"), "{r}");
        assert!(r.contains("morsels_scanned"), "{r}");
        assert!(r.contains("ann_queries"), "{r}");
        assert!(r.contains("ivf_stale_fallbacks"), "{r}");
        assert!(r.contains("mem_high_water_bytes"), "{r}");
        // The budget line renders the configured cap, or "unlimited"
        // when the engine booted without TDP_MEM_BUDGET (CI runs both).
        assert!(r.contains("mem_budget_bytes "), "{r}");
        assert!(r.contains("mem_budget_aborts 0"), "{r}");

        let r = roundtrip(&stream, &mut reader, "QUERY SELECT nope FROM nums");
        assert!(r.starts_with("ERR "), "{r}");
        let r = roundtrip(&stream, &mut reader, "FROB x");
        assert!(r.starts_with("ERR PROTO"), "{r}");

        let r = roundtrip(&stream, &mut reader, "QUIT");
        assert!(r.starts_with("OK bye"), "{r}");
        server.shutdown();
    }

    #[test]
    fn index_ddl_over_the_wire() {
        let engine = test_engine();
        engine.register_table(
            TableBuilder::new()
                .col_tensor(
                    "emb",
                    tdp_core::tensor::Tensor::from_vec(
                        vec![1.0, 0.0, 0.0, 1.0, 0.5, 0.5, 0.9, 0.1],
                        &[4, 2],
                    ),
                )
                .build("vecs"),
        );
        let server = TdpServer::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
        let (stream, mut reader) = connect(server.local_addr());

        let r = roundtrip(
            &stream,
            &mut reader,
            "QUERY CREATE INDEX vi ON vecs (emb) USING ivf(2, 2) METRIC l2",
        );
        assert!(r.starts_with("OK CREATE INDEX vi"), "{r}");
        let r = roundtrip(
            &stream,
            &mut reader,
            "EXPLAIN SELECT emb FROM vecs ORDER BY distance(emb, ?) LIMIT 2",
        );
        assert!(r.contains("AnnTopK"), "{r}");
        assert!(r.contains("ivf nlist=2 nprobe=2"), "{r}");
        let r = roundtrip(&stream, &mut reader, "QUERY DROP INDEX vi");
        assert!(r.starts_with("OK DROP INDEX vi"), "{r}");
        let r = roundtrip(&stream, &mut reader, "QUERY DROP INDEX vi");
        assert!(r.starts_with("ERR SQL"), "{r}");
        server.shutdown();
    }

    #[test]
    fn each_connection_gets_its_own_session() {
        let server =
            TdpServer::bind(test_engine(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let (a, mut ra) = connect(server.local_addr());
        let (b, mut rb) = connect(server.local_addr());
        roundtrip(&a, &mut ra, "PREPARE p SELECT COUNT(*) FROM nums");
        // Prepared-statement namespaces are per connection…
        let r = roundtrip(&b, &mut rb, "BIND p");
        assert!(r.starts_with("ERR UNKNOWN_STATEMENT"), "{r}");
        // …but the engine is shared: both sessions are visible.
        let r = roundtrip(&a, &mut ra, "STATS");
        assert!(r.contains("sessions_open 2"), "{r}");
        drop((a, b));
        server.shutdown();
    }

    #[test]
    fn admission_rejects_beyond_cap_and_queue() {
        let engine = test_engine();
        let ctl = AdmissionControl::new(
            &ServerConfig::default()
                .max_concurrent(1)
                .max_queued(0)
                .queue_timeout(Duration::from_millis(50)),
        );
        let p1 = ctl.acquire(&engine).expect("first slot free");
        let err = ctl.acquire(&engine).expect_err("cap 1, queue 0");
        assert!(err.contains("server busy"), "{err}");
        assert_eq!(engine.stats().queries_rejected, 1);
        drop(p1);
        let p2 = ctl.acquire(&engine).expect("slot released");
        drop(p2);
    }

    #[test]
    fn admission_queue_times_out_with_typed_error() {
        let engine = test_engine();
        let ctl = AdmissionControl::new(
            &ServerConfig::default()
                .max_concurrent(1)
                .max_queued(4)
                .queue_timeout(Duration::from_millis(30)),
        );
        let _p1 = ctl.acquire(&engine).unwrap();
        let start = Instant::now();
        let err = ctl.acquire(&engine).expect_err("queued then timed out");
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert!(err.contains("server busy"), "{err}");
        let stats = engine.stats();
        assert_eq!((stats.queries_queued, stats.queries_rejected), (1, 1));
    }

    #[test]
    fn admission_queue_hands_over_released_slots() {
        let engine = test_engine();
        let ctl = Arc::new(AdmissionControl::new(
            &ServerConfig::default()
                .max_concurrent(1)
                .max_queued(1)
                .queue_timeout(Duration::from_secs(5)),
        ));
        let p1 = ctl.acquire(&engine).unwrap();
        let waiter = {
            let ctl = Arc::clone(&ctl);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || ctl.acquire(&engine).is_ok())
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(p1); // hands the slot to the queued waiter
        assert!(waiter.join().unwrap(), "queued query must get the slot");
        assert_eq!(engine.stats().queries_queued, 1);
        assert_eq!(engine.stats().queries_rejected, 0);
    }

    #[test]
    fn memory_gate_queues_and_releases_envelopes() {
        // Budget fits exactly one 1 KiB envelope: the second acquire
        // must wait for the first permit to drop, not fail outright.
        let engine = TdpEngine::with_memory_budget(1024);
        let ctl = Arc::new(AdmissionControl::new(
            &ServerConfig::default()
                .max_concurrent(4)
                .max_queued(2)
                .queue_timeout(Duration::from_secs(5))
                .mem_per_query(1024),
        ));
        let p1 = ctl.acquire(&engine).expect("first envelope fits");
        assert_eq!(engine.memory_pool().used(), 1024);
        let waiter = {
            let ctl = Arc::clone(&ctl);
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || ctl.acquire(&engine).is_ok())
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(p1); // releases the envelope, then wakes the waiter
        assert!(waiter.join().unwrap(), "queued query must get the envelope");
        assert_eq!(engine.memory_pool().used(), 0, "all envelopes released");
        assert_eq!(
            engine.stats().mem_budget_aborts,
            0,
            "admission refusals are not budget aborts"
        );
    }

    #[test]
    fn memory_gate_rejects_when_queue_full() {
        let engine = TdpEngine::with_memory_budget(1024);
        let ctl = AdmissionControl::new(
            &ServerConfig::default()
                .max_concurrent(4)
                .max_queued(0)
                .queue_timeout(Duration::from_millis(20))
                .mem_per_query(1024),
        );
        let _p1 = ctl.acquire(&engine).expect("first envelope fits");
        let err = ctl.acquire(&engine).expect_err("no envelope, queue 0");
        assert!(err.contains("server busy"), "{err}");
        assert_eq!(engine.stats().queries_rejected, 1);
    }

    #[test]
    fn bind_args_parse_all_types() {
        let p = parse_args("1.5 'a b' true null ''''").unwrap();
        assert_eq!(p.len(), 5);
        assert!(matches!(p.get(0), Some(ParamValue::Number(n)) if *n == 1.5));
        assert!(matches!(p.get(1), Some(ParamValue::String(s)) if s == "a b"));
        assert!(matches!(p.get(2), Some(ParamValue::Bool(true))));
        assert!(matches!(p.get(3), Some(ParamValue::Null)));
        assert!(matches!(p.get(4), Some(ParamValue::String(s)) if s == "'"));
        assert!(parse_args("'open").is_err());
        assert!(parse_args("wat").is_err());
        assert_eq!(parse_args("").unwrap().len(), 0);
    }

    #[test]
    fn graceful_shutdown_closes_idle_connections() {
        let server =
            TdpServer::bind(test_engine(), "127.0.0.1:0", ServerConfig::default()).unwrap();
        let (stream, mut reader) = connect(server.local_addr());
        roundtrip(&stream, &mut reader, "QUERY SELECT COUNT(*) FROM nums");
        server.shutdown(); // must not hang on the idle connection
        let mut line = String::new();
        assert_eq!(
            reader.read_line(&mut line).unwrap_or(0),
            0,
            "EOF after shutdown"
        );
    }
}
