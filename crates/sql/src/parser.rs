//! Recursive-descent SQL parser with precedence climbing for expressions.

use crate::ast::*;
use crate::lexer::{tokenize, Sym, Token};
use crate::SqlError;

/// Parse SQL text into a [`Query`].
pub fn parse(input: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        positional_params: 0,
        saw_numbered_param: false,
    };
    let q = p.parse_query()?;
    if !p.at_end() {
        return Err(SqlError::new(format!(
            "trailing input after query: {:?}",
            p.peek()
        )));
    }
    Ok(q)
}

/// Parse a top-level statement: a SELECT query, or one of the vector-index
/// DDL forms (`CREATE INDEX name ON table (column) [USING flat |
/// ivf(nlist, nprobe)] [METRIC l2|ip|cosine]`, `DROP INDEX name`).
///
/// CREATE/INDEX/USING/DROP are deliberately *not* reserved words — they
/// lex as identifiers and are matched case-insensitively here, so column
/// names like `index` keep working inside queries.
pub fn parse_statement(input: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        positional_params: 0,
        saw_numbered_param: false,
    };
    let stmt = if p.eat_word("CREATE") {
        p.parse_create_index()?
    } else if p.eat_word("DROP") {
        p.parse_drop_index()?
    } else {
        Statement::Query(p.parse_query()?)
    };
    if !p.at_end() {
        return Err(SqlError::new(format!(
            "trailing input after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far — each gets the next 0-based
    /// index, statement-wide (subqueries share the numbering).
    positional_params: usize,
    /// Whether any explicit `$n` placeholder was seen; mixing the two
    /// styles in one statement is rejected as ambiguous.
    saw_numbered_param: bool,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        self.pos += 1;
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::new(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, s: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(sym)) if *sym == s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: Sym) -> Result<(), SqlError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(SqlError::new(format!(
                "expected {s:?}, found {:?}",
                self.peek()
            )))
        }
    }

    /// Case-insensitive match of a non-reserved word (lexed as `Ident`).
    fn eat_word(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Some(Token::Ident(w)) if w.eq_ignore_ascii_case(word)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.advance() {
            Some(Token::Ident(w)) => Ok(w),
            other => Err(SqlError::new(format!("expected {what}, found {other:?}"))),
        }
    }

    fn expect_usize(&mut self, what: &str) -> Result<usize, SqlError> {
        match self.advance() {
            Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => Ok(n as usize),
            other => Err(SqlError::new(format!(
                "expected integer {what}, found {other:?}"
            ))),
        }
    }

    /// `INDEX name ON table (column) [USING …] [METRIC m]` — the leading
    /// CREATE was already consumed.
    fn parse_create_index(&mut self) -> Result<Statement, SqlError> {
        if !self.eat_word("INDEX") {
            return Err(SqlError::new(format!(
                "expected INDEX after CREATE, found {:?}",
                self.peek()
            )));
        }
        let name = self.expect_ident("index name")?;
        self.expect_keyword("ON")?;
        let table = self.expect_ident("table name")?;
        self.expect_symbol(Sym::LParen)?;
        let column = self.expect_ident("column name")?;
        self.expect_symbol(Sym::RParen)?;
        let method = if self.eat_word("USING") {
            if self.eat_word("FLAT") {
                IndexMethod::Flat
            } else if self.eat_word("IVF") {
                self.expect_symbol(Sym::LParen)?;
                let nlist = self.expect_usize("nlist")?;
                self.expect_symbol(Sym::Comma)?;
                let nprobe = self.expect_usize("nprobe")?;
                self.expect_symbol(Sym::RParen)?;
                if nlist == 0 || nprobe == 0 {
                    return Err(SqlError::new("ivf(nlist, nprobe) arguments must be >= 1"));
                }
                IndexMethod::Ivf { nlist, nprobe }
            } else {
                return Err(SqlError::new(format!(
                    "unknown index method {:?}; expected flat or ivf(nlist, nprobe)",
                    self.peek()
                )));
            }
        } else {
            IndexMethod::Flat
        };
        let metric = if self.eat_word("METRIC") {
            Some(self.expect_ident("metric name")?.to_ascii_lowercase())
        } else {
            None
        };
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            method,
            metric,
        })
    }

    /// `INDEX name` — the leading DROP was already consumed.
    fn parse_drop_index(&mut self) -> Result<Statement, SqlError> {
        if !self.eat_word("INDEX") {
            return Err(SqlError::new(format!(
                "expected INDEX after DROP, found {:?}",
                self.peek()
            )));
        }
        let name = self.expect_ident("index name")?;
        Ok(Statement::DropIndex { name })
    }

    fn parse_query(&mut self) -> Result<Query, SqlError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");
        let select = self.parse_select_list()?;

        let from = if self.eat_keyword("FROM") {
            Some(self.parse_table_ref()?)
        } else {
            None
        };

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_keyword("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Number(n)) if n >= 0.0 && n.fract() == 0.0 => {
                    Some(LimitCount::Const(n as u64))
                }
                // `LIMIT ?` / `LIMIT $n`: a typed integer parameter slot,
                // following the same positional/numbered bookkeeping as
                // expression placeholders.
                Some(Token::Param(None)) => {
                    if self.saw_numbered_param {
                        return Err(SqlError::new(
                            "cannot mix '?' and '$n' parameter styles in one statement",
                        ));
                    }
                    let idx = self.positional_params;
                    self.positional_params += 1;
                    Some(LimitCount::Param { idx })
                }
                Some(Token::Param(Some(n))) => {
                    if self.positional_params > 0 {
                        return Err(SqlError::new(
                            "cannot mix '?' and '$n' parameter styles in one statement",
                        ));
                    }
                    self.saw_numbered_param = true;
                    Some(LimitCount::Param { idx: n - 1 })
                }
                other => {
                    return Err(SqlError::new(format!(
                        "LIMIT expects a non-negative integer or a parameter, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };

        let union_all = if self.eat_keyword("UNION") {
            self.expect_keyword("ALL")?;
            Some(Box::new(self.parse_query()?))
        } else {
            None
        };

        Ok(Query {
            distinct,
            select,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
            union_all,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            let expr = if self.eat_symbol(Sym::Star) {
                Expr::Star
            } else {
                self.parse_expr()?
            };
            let alias = if self.eat_keyword("AS") {
                match self.advance() {
                    Some(Token::Ident(name)) => Some(name),
                    other => {
                        return Err(SqlError::new(format!(
                            "expected alias after AS, found {other:?}"
                        )))
                    }
                }
            } else if let Some(Token::Ident(name)) = self.peek() {
                // Bare alias (`expr name`).
                let name = name.clone();
                self.pos += 1;
                Some(name)
            } else {
                None
            };
            items.push(SelectItem { expr, alias });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_keyword("JOIN") {
                JoinKind::Inner
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                JoinKind::Inner
            } else if self.eat_keyword("LEFT") {
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            let on = if self.eat_keyword("ON") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef, SqlError> {
        // Subquery.
        if self.eat_symbol(Sym::LParen) {
            if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT") {
                let q = self.parse_query()?;
                self.expect_symbol(Sym::RParen)?;
                let alias = self.parse_optional_alias();
                return Ok(TableRef::Subquery {
                    query: Box::new(q),
                    alias,
                });
            }
            // Parenthesised table ref.
            let t = self.parse_table_ref()?;
            self.expect_symbol(Sym::RParen)?;
            return Ok(t);
        }
        match self.advance() {
            Some(Token::Ident(name)) => {
                if self.eat_symbol(Sym::LParen) {
                    // TVF over a table/subquery input.
                    let input = self.parse_table_factor()?;
                    self.expect_symbol(Sym::RParen)?;
                    let alias = self.parse_optional_alias();
                    return Ok(TableRef::Tvf {
                        name,
                        input: Box::new(input),
                        alias,
                    });
                }
                let alias = self.parse_optional_alias();
                Ok(TableRef::Named { name, alias })
            }
            other => Err(SqlError::new(format!(
                "expected table reference, found {other:?}"
            ))),
        }
    }

    fn parse_optional_alias(&mut self) -> Option<String> {
        if self.eat_keyword("AS") {
            if let Some(Token::Ident(name)) = self.peek() {
                let name = name.clone();
                self.pos += 1;
                return Some(name);
            }
            return None;
        }
        if let Some(Token::Ident(name)) = self.peek() {
            let name = name.clone();
            self.pos += 1;
            return Some(name);
        }
        None
    }

    // ------------------------------------------------------------------
    // Expressions: OR < AND < NOT < comparison < +- < */% < unary < atoms
    // ------------------------------------------------------------------

    fn parse_expr(&mut self) -> Result<Expr, SqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_and()?;
        while self.eat_keyword("OR") {
            let right = self.parse_and()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_not()?;
        while self.eat_keyword("AND") {
            let right = self.parse_not()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr, SqlError> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.parse_additive()?;
        // Postfix NOT of `x NOT IN/LIKE/BETWEEN …`.
        let negated = matches!(self.peek(), Some(Token::Keyword(k)) if k == "NOT")
            && matches!(
                self.tokens.get(self.pos + 1),
                Some(Token::Keyword(k)) if k == "IN" || k == "LIKE" || k == "BETWEEN"
            );
        if negated {
            self.pos += 1;
        }
        // BETWEEN lowers to two comparisons.
        if self.eat_keyword("BETWEEN") {
            let lo = self.parse_additive()?;
            self.expect_keyword("AND")?;
            let hi = self.parse_additive()?;
            let range = Expr::binary(
                BinOp::And,
                Expr::binary(BinOp::GtEq, left.clone(), lo),
                Expr::binary(BinOp::LtEq, left, hi),
            );
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(range),
                }
            } else {
                range
            });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            let pattern = match self.advance() {
                Some(Token::Str(s)) => s,
                other => {
                    return Err(SqlError::new(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(SqlError::new("expected IN, LIKE or BETWEEN after NOT"));
        }
        let op = match self.peek() {
            Some(Token::Symbol(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Symbol(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Symbol(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Symbol(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Symbol(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Symbol(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Plus)) => BinOp::Add,
                Some(Token::Symbol(Sym::Minus)) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Symbol(Sym::Star)) => BinOp::Mul,
                Some(Token::Symbol(Sym::Slash)) => BinOp::Div,
                Some(Token::Symbol(Sym::Percent)) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.parse_unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.parse_unary()?;
            // Fold negative numeric literals immediately.
            if let Expr::Literal(Literal::Number(n)) = inner {
                return Ok(Expr::num(-n));
            }
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_symbol(Sym::Plus) {
            return self.parse_unary();
        }
        self.parse_atom()
    }

    fn parse_atom(&mut self) -> Result<Expr, SqlError> {
        match self.advance() {
            Some(Token::Number(n)) => Ok(Expr::num(n)),
            Some(Token::Param(None)) => {
                if self.saw_numbered_param {
                    return Err(SqlError::new(
                        "cannot mix '?' and '$n' parameter styles in one statement",
                    ));
                }
                let idx = self.positional_params;
                self.positional_params += 1;
                Ok(Expr::Param { idx })
            }
            Some(Token::Param(Some(n))) => {
                if self.positional_params > 0 {
                    return Err(SqlError::new(
                        "cannot mix '?' and '$n' parameter styles in one statement",
                    ));
                }
                self.saw_numbered_param = true;
                Ok(Expr::Param { idx: n - 1 })
            }
            Some(Token::Str(s)) => Ok(Expr::Literal(Literal::String(s))),
            Some(Token::Keyword(k)) if k == "TRUE" => Ok(Expr::Literal(Literal::Bool(true))),
            Some(Token::Keyword(k)) if k == "FALSE" => Ok(Expr::Literal(Literal::Bool(false))),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Expr::Literal(Literal::Null)),
            Some(Token::Keyword(k))
                if matches!(
                    k.as_str(),
                    "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "VARIANCE" | "STDDEV"
                ) =>
            {
                let mut func = match k.as_str() {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    "MAX" => AggFunc::Max,
                    "VARIANCE" => AggFunc::Variance,
                    _ => AggFunc::Stddev,
                };
                self.expect_symbol(Sym::LParen)?;
                if func == AggFunc::Count && self.eat_keyword("DISTINCT") {
                    func = AggFunc::CountDistinct;
                }
                let arg = if self.eat_symbol(Sym::Star) {
                    None
                } else {
                    Some(Box::new(self.parse_expr()?))
                };
                self.expect_symbol(Sym::RParen)?;
                if func == AggFunc::CountDistinct && arg.is_none() {
                    return Err(SqlError::new("COUNT(DISTINCT *) is not valid"));
                }
                if arg.is_none() && func != AggFunc::Count {
                    return Err(SqlError::new(format!(
                        "{}(*) is not valid; only COUNT takes '*'",
                        func.name()
                    )));
                }
                if self.eat_keyword("OVER") {
                    let (partition_by, order_by) = self.parse_window_spec()?;
                    return Ok(Expr::Window {
                        func: WindowFunc::Agg { func, arg },
                        partition_by,
                        order_by,
                    });
                }
                Ok(Expr::Aggregate { func, arg })
            }
            Some(Token::Keyword(k)) if k == "CASE" => self.parse_case(),
            Some(Token::Symbol(Sym::LParen)) => {
                // `(SELECT …)` in expression position is a scalar subquery.
                if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT") {
                    let q = self.parse_query()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name)) => {
                if self.eat_symbol(Sym::LParen) {
                    // Function call.
                    let mut args = Vec::new();
                    if !self.eat_symbol(Sym::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat_symbol(Sym::Comma) {
                                break;
                            }
                        }
                        self.expect_symbol(Sym::RParen)?;
                    }
                    if self.eat_keyword("OVER") {
                        let func = match name.to_ascii_lowercase().as_str() {
                            "row_number" => WindowFunc::RowNumber,
                            "rank" => WindowFunc::Rank,
                            "dense_rank" => WindowFunc::DenseRank,
                            other => {
                                return Err(SqlError::new(format!(
                                    "unknown window function '{other}'"
                                )))
                            }
                        };
                        if !args.is_empty() {
                            return Err(SqlError::new(format!("{name}() takes no arguments")));
                        }
                        let (partition_by, order_by) = self.parse_window_spec()?;
                        return Ok(Expr::Window {
                            func,
                            partition_by,
                            order_by,
                        });
                    }
                    return Ok(Expr::Func { name, args });
                }
                if self.eat_symbol(Sym::Dot) {
                    match self.advance() {
                        Some(Token::Ident(col)) => {
                            return Ok(Expr::Column {
                                qualifier: Some(name),
                                name: col,
                            })
                        }
                        Some(Token::Symbol(Sym::Star)) => return Ok(Expr::Star),
                        other => {
                            return Err(SqlError::new(format!(
                                "expected column after '{name}.', found {other:?}"
                            )))
                        }
                    }
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::new(format!(
                "unexpected token in expression: {other:?}"
            ))),
        }
    }

    /// `( [PARTITION BY expr, …] [ORDER BY item, …] )` — the OVER keyword
    /// has already been consumed.
    fn parse_window_spec(&mut self) -> Result<(Vec<Expr>, Vec<OrderItem>), SqlError> {
        self.expect_symbol(Sym::LParen)?;
        let mut partition_by = Vec::new();
        if self.eat_keyword("PARTITION") {
            self.expect_keyword("BY")?;
            loop {
                partition_by.push(self.parse_expr()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok((partition_by, order_by))
    }

    /// `CASE [operand] WHEN … THEN … [WHEN …]* [ELSE …] END`. The CASE
    /// keyword has already been consumed.
    fn parse_case(&mut self) -> Result<Expr, SqlError> {
        let operand = if matches!(self.peek(), Some(Token::Keyword(k)) if k == "WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_keyword("WHEN") {
            let when = self.parse_expr()?;
            self.expect_keyword("THEN")?;
            let then = self.parse_expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(SqlError::new("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_keyword("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_mnistgrid_query() {
        let q = parse(
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert_eq!(q.group_by.len(), 2);
        match q.from.unwrap() {
            TableRef::Tvf { name, input, .. } => {
                assert_eq!(name, "parse_mnist_grid");
                assert!(matches!(*input, TableRef::Named { ref name, .. } if name == "MNIST_Grid"));
            }
            other => panic!("expected TVF from-clause, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_multimodal_filter() {
        let q = parse(
            "SELECT COUNT(*) FROM Attachments WHERE image_text_similarity('receipt', images) > 0.80",
        )
        .unwrap();
        let w = q.where_clause.unwrap();
        match w {
            Expr::Binary {
                op: BinOp::Gt,
                left,
                ..
            } => match *left {
                Expr::Func { name, args } => {
                    assert_eq!(name, "image_text_similarity");
                    assert_eq!(args.len(), 2);
                }
                other => panic!("expected UDF call, got {other:?}"),
            },
            other => panic!("expected comparison, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_topk_query() {
        let q = parse(
            "SELECT images, image_text_similarity('KFC Receipt', images) as score \
             FROM Attachments ORDER BY score DESC LIMIT 2",
        )
        .unwrap();
        assert_eq!(q.select[1].alias.as_deref(), Some("score"));
        assert!(q.order_by[0].desc);
        assert_eq!(q.limit, Some(LimitCount::Const(2)));
    }

    #[test]
    fn parses_paper_ocr_query() {
        let q = parse(
            "SELECT AVG(SepalLength), AVG(PetalLength) \
             FROM (SELECT extract_table(images) FROM Document WHERE timestamp = '2022:08:10')",
        )
        .unwrap();
        assert!(matches!(q.from, Some(TableRef::Subquery { .. })));
        assert!(q.select[0].expr.contains_aggregate());
    }

    #[test]
    fn precedence_and_parens() {
        let q = parse("SELECT a + b * c - d FROM t").unwrap();
        assert_eq!(format!("{}", q.select[0].expr), "((a + (b * c)) - d)");
        let q2 = parse("SELECT (a + b) * c FROM t").unwrap();
        assert_eq!(format!("{}", q2.select[0].expr), "((a + b) * c)");
        let q3 = parse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        assert_eq!(
            format!("{}", q3.where_clause.unwrap()),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn between_desugars() {
        let q = parse("SELECT 1 FROM t WHERE x BETWEEN 2 AND 5").unwrap();
        assert_eq!(
            format!("{}", q.where_clause.unwrap()),
            "((x >= 2) AND (x <= 5))"
        );
    }

    #[test]
    fn joins_parse() {
        let q = parse("SELECT a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.k = v.k").unwrap();
        match q.from.unwrap() {
            TableRef::Join {
                kind: JoinKind::Left,
                left,
                ..
            } => {
                assert!(matches!(
                    *left,
                    TableRef::Join {
                        kind: JoinKind::Inner,
                        ..
                    }
                ));
            }
            other => panic!("expected nested join, got {other:?}"),
        }
    }

    #[test]
    fn qualified_columns_and_aliases() {
        let q = parse("SELECT t.x AS first, u.y second FROM t JOIN u").unwrap();
        assert_eq!(q.select[0].alias.as_deref(), Some("first"));
        assert_eq!(q.select[1].alias.as_deref(), Some("second"));
        match &q.select[0].expr {
            Expr::Column { qualifier, name } => {
                assert_eq!(qualifier.as_deref(), Some("t"));
                assert_eq!(name, "x");
            }
            other => panic!("expected qualified column, got {other:?}"),
        }
    }

    #[test]
    fn negative_numbers_fold() {
        let q = parse("SELECT -3.5 FROM t WHERE x > -1").unwrap();
        assert_eq!(format!("{}", q.select[0].expr), "-3.5");
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT a FROM").is_err());
        assert!(parse("SELECT a FROM t LIMIT x").is_err());
        assert!(parse("SELECT a FROM t extra garbage (").is_err());
        assert!(parse("SELECT COUNT(").is_err());
    }

    #[test]
    fn parses_in_list_and_negation() {
        let q = parse("SELECT 1 FROM t WHERE x IN (1, 2, 3)").unwrap();
        match q.where_clause.unwrap() {
            Expr::InList { list, negated, .. } => {
                assert_eq!(list.len(), 3);
                assert!(!negated);
            }
            other => panic!("expected IN, got {other:?}"),
        }
        let q2 = parse("SELECT 1 FROM t WHERE tag NOT IN ('a', 'b')").unwrap();
        assert!(matches!(
            q2.where_clause.unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn parses_like_and_not_like() {
        let q = parse("SELECT 1 FROM t WHERE name LIKE 'rec%'").unwrap();
        match q.where_clause.unwrap() {
            Expr::Like {
                pattern, negated, ..
            } => {
                assert_eq!(pattern, "rec%");
                assert!(!negated);
            }
            other => panic!("expected LIKE, got {other:?}"),
        }
        assert!(matches!(
            parse("SELECT 1 FROM t WHERE name NOT LIKE '%x'")
                .unwrap()
                .where_clause
                .unwrap(),
            Expr::Like { negated: true, .. }
        ));
        assert!(parse("SELECT 1 FROM t WHERE name LIKE 5").is_err());
    }

    #[test]
    fn parses_not_between() {
        let q = parse("SELECT 1 FROM t WHERE x NOT BETWEEN 2 AND 5").unwrap();
        assert_eq!(
            format!("{}", q.where_clause.unwrap()),
            "(NOT ((x >= 2) AND (x <= 5)))"
        );
    }

    #[test]
    fn parses_case_expressions() {
        let q =
            parse("SELECT CASE WHEN x > 0 THEN 1 WHEN x < 0 THEN -1 ELSE 0 END FROM t").unwrap();
        match &q.select[0].expr {
            Expr::Case {
                operand: None,
                branches,
                else_expr,
            } => {
                assert_eq!(branches.len(), 2);
                assert!(else_expr.is_some());
            }
            other => panic!("expected CASE, got {other:?}"),
        }
        // Operand form.
        let q2 = parse("SELECT CASE tag WHEN 'a' THEN 1 ELSE 2 END FROM t").unwrap();
        assert!(matches!(
            &q2.select[0].expr,
            Expr::Case {
                operand: Some(_),
                ..
            }
        ));
        // Missing WHEN / END are errors.
        assert!(parse("SELECT CASE ELSE 1 END FROM t").is_err());
        assert!(parse("SELECT CASE WHEN a THEN 1 FROM t").is_err());
    }

    #[test]
    fn parses_distinct_and_union_all() {
        let q = parse("SELECT DISTINCT item FROM orders").unwrap();
        assert!(q.distinct);
        let q2 =
            parse("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v").unwrap();
        let second = q2.union_all.as_deref().unwrap();
        assert!(second.union_all.is_some());
        // Bare UNION (without ALL) is rejected in this dialect.
        assert!(parse("SELECT a FROM t UNION SELECT a FROM u").is_err());
    }

    #[test]
    fn parses_new_aggregates() {
        let q = parse("SELECT COUNT(DISTINCT tag), VARIANCE(x), STDDEV(x) FROM t").unwrap();
        assert!(matches!(
            &q.select[0].expr,
            Expr::Aggregate {
                func: AggFunc::CountDistinct,
                arg: Some(_)
            }
        ));
        assert!(matches!(
            &q.select[1].expr,
            Expr::Aggregate {
                func: AggFunc::Variance,
                ..
            }
        ));
        assert!(matches!(
            &q.select[2].expr,
            Expr::Aggregate {
                func: AggFunc::Stddev,
                ..
            }
        ));
        assert!(parse("SELECT COUNT(DISTINCT *) FROM t").is_err());
        assert!(parse("SELECT VARIANCE(*) FROM t").is_err());
    }

    #[test]
    fn parses_positional_and_numbered_params() {
        let q = parse("SELECT a FROM t WHERE x > ? AND y < ?").unwrap();
        assert_eq!(
            format!("{}", q.where_clause.unwrap()),
            "((x > $1) AND (y < $2))",
            "each '?' takes the next index"
        );
        let q2 = parse("SELECT a FROM t WHERE x > $2 AND y < $1").unwrap();
        assert_eq!(
            format!("{}", q2.where_clause.unwrap()),
            "((x > $2) AND (y < $1))"
        );
        // Subqueries share the statement-wide numbering.
        let q3 = parse("SELECT a FROM t WHERE x > ? AND y > (SELECT MAX(v) + ? FROM u)").unwrap();
        let text = format!("{}", q3.where_clause.unwrap());
        assert!(text.contains("$1") && text.contains("$2"), "{text}");
        // Mixing styles is rejected, both orders.
        assert!(parse("SELECT a FROM t WHERE x > ? AND y < $1").is_err());
        assert!(parse("SELECT a FROM t WHERE x > $1 AND y < ?").is_err());
        // Params display/reparse as a fixpoint.
        let printed = format!("{}", parse("SELECT a FROM t WHERE x IN (?, ?)").unwrap());
        assert_eq!(format!("{}", parse(&printed).unwrap()), printed);
    }

    #[test]
    fn parses_scalar_subqueries() {
        let q = parse("SELECT 1 FROM t WHERE x > (SELECT AVG(x) FROM t)").unwrap();
        match q.where_clause.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::ScalarSubquery(_)));
            }
            other => panic!("expected comparison, got {other:?}"),
        }
        // A parenthesised non-SELECT expression is still just grouping.
        let q2 = parse("SELECT (1 + 2) FROM t").unwrap();
        assert!(matches!(
            q2.select[0].expr,
            Expr::Literal(_) | Expr::Binary { .. }
        ));
    }

    #[test]
    fn parses_window_functions() {
        let q = parse(
            "SELECT item, ROW_NUMBER() OVER (PARTITION BY item ORDER BY price DESC) AS rn, \
             SUM(qty) OVER (PARTITION BY item) AS total FROM orders",
        )
        .unwrap();
        match &q.select[1].expr {
            Expr::Window {
                func: WindowFunc::RowNumber,
                partition_by,
                order_by,
            } => {
                assert_eq!(partition_by.len(), 1);
                assert_eq!(order_by.len(), 1);
                assert!(order_by[0].desc);
            }
            other => panic!("expected window, got {other:?}"),
        }
        match &q.select[2].expr {
            Expr::Window {
                func:
                    WindowFunc::Agg {
                        func: AggFunc::Sum,
                        arg,
                    },
                order_by,
                ..
            } => {
                assert!(arg.is_some());
                assert!(order_by.is_empty());
            }
            other => panic!("expected SUM window, got {other:?}"),
        }
        // Empty OVER () is valid; unknown window functions are not.
        assert!(parse("SELECT COUNT(*) OVER () FROM t").is_ok());
        assert!(parse("SELECT nope() OVER () FROM t").is_err());
        assert!(parse("SELECT ROW_NUMBER(x) OVER () FROM t").is_err());
    }

    #[test]
    fn display_reparse_fixpoint() {
        let queries = [
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
            "SELECT a FROM t WHERE x > 1 AND y < 2 ORDER BY a DESC LIMIT 5",
            "SELECT AVG(v) FROM (SELECT v FROM t WHERE ts = 'x')",
            "SELECT COUNT(*) FROM t HAVING COUNT(*) > 3",
            "SELECT DISTINCT tag FROM t WHERE x IN (1, 2) UNION ALL SELECT tag FROM u",
            "SELECT CASE WHEN x > 0 THEN 1 ELSE 0 END FROM t WHERE name LIKE 'a%'",
            "SELECT COUNT(DISTINCT tag), STDDEV(x) FROM t GROUP BY g",
            "SELECT 1 FROM t WHERE tag NOT IN ('a') AND name NOT LIKE '%b'",
            "SELECT ROW_NUMBER() OVER (PARTITION BY item ORDER BY price DESC) AS rn FROM t",
            "SELECT SUM(v) OVER (ORDER BY ts), RANK() OVER (PARTITION BY k) FROM t",
            "SELECT price FROM orders WHERE price > (SELECT AVG(price) FROM orders)",
        ];
        for q in queries {
            let ast1 = parse(q).unwrap();
            let printed = format!("{ast1}");
            let ast2 = parse(&printed).unwrap_or_else(|e| panic!("reparse of '{printed}': {e}"));
            assert_eq!(
                format!("{ast2}"),
                printed,
                "pretty-print must be a fixpoint"
            );
        }
    }

    #[test]
    fn create_index_statements() {
        let s = parse_statement("CREATE INDEX i ON t (emb)").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "i".into(),
                table: "t".into(),
                column: "emb".into(),
                method: IndexMethod::Flat,
                metric: None,
            }
        );
        let s =
            parse_statement("create index i on vecs (emb) using ivf(64, 8) metric COSINE").unwrap();
        assert_eq!(
            s,
            Statement::CreateIndex {
                name: "i".into(),
                table: "vecs".into(),
                column: "emb".into(),
                method: IndexMethod::Ivf {
                    nlist: 64,
                    nprobe: 8
                },
                metric: Some("cosine".into()),
            }
        );
        assert!(parse_statement("CREATE INDEX i ON t (emb) USING hnsw").is_err());
        assert!(parse_statement("CREATE INDEX i ON t (emb) USING ivf(0, 1)").is_err());
        assert!(parse_statement("CREATE TABLE t (x)").is_err());
    }

    #[test]
    fn drop_index_statement() {
        assert_eq!(
            parse_statement("drop index i").unwrap(),
            Statement::DropIndex { name: "i".into() }
        );
        assert!(parse_statement("DROP INDEX i extra").is_err());
    }

    #[test]
    fn statement_wraps_plain_query() {
        // `index` stays usable as an identifier — it is not reserved.
        let s = parse_statement("SELECT index FROM t LIMIT 1").unwrap();
        assert!(matches!(s, Statement::Query(_)));
    }
}
