//! Rule-based logical optimizer.
//!
//! Three classical rewrites, applied to fixpoint:
//!
//! 1. **Constant folding** — arithmetic/boolean expressions over literals
//!    are evaluated at plan time.
//! 2. **Predicate pushdown** — filters move below projections and sorts
//!    (never below limits, TVFs or aggregates, which change row identity).
//! 3. **Filter fusion** — adjacent filters merge into one conjunction, and
//!    `TRUE` predicates disappear.

use crate::ast::{BinOp, Expr, Literal, SelectItem, UnOp};
use crate::plan::LogicalPlan;

/// Hard cap on rewrite passes: a diverging rule set is a bug, not a
/// reason to spin — plans deep enough to need more than this are
/// pathological.
const MAX_PASSES: usize = 16;

/// Optimise a logical plan. Semantics-preserving by construction.
/// Rewrites run to an actual fixpoint (the pass that changes nothing is
/// the last), capped at `MAX_PASSES` so deep filter/projection stacks
/// still fold fully.
pub fn optimize(plan: LogicalPlan) -> LogicalPlan {
    let mut cur = plan;
    for _ in 0..MAX_PASSES {
        let next = rewrite(cur.clone());
        if next == cur {
            return cur;
        }
        cur = next;
    }
    cur
}

fn rewrite(plan: LogicalPlan) -> LogicalPlan {
    // Bottom-up: rewrite children first.
    let plan = map_children(plan, rewrite);
    match plan {
        LogicalPlan::Filter { predicate, input } => {
            let predicate = fold_expr(predicate);
            // Drop trivially-true filters.
            if matches!(predicate, Expr::Literal(Literal::Bool(true))) {
                return *input;
            }
            match *input {
                // Fuse Filter(Filter(x)) into one conjunction.
                LogicalPlan::Filter {
                    predicate: inner,
                    input: deeper,
                } => LogicalPlan::Filter {
                    predicate: fold_expr(Expr::binary(BinOp::And, inner, predicate)),
                    input: deeper,
                },
                // Push below Project when the predicate only references
                // columns the projection passes through unchanged.
                LogicalPlan::Project {
                    items,
                    input: deeper,
                } if pushable_through_project(&predicate, &items) => LogicalPlan::Project {
                    items,
                    input: Box::new(rewrite(LogicalPlan::Filter {
                        predicate,
                        input: deeper,
                    })),
                },
                // Filtering before sorting is always valid and cheaper.
                LogicalPlan::Sort {
                    keys,
                    input: deeper,
                } => LogicalPlan::Sort {
                    keys,
                    input: Box::new(rewrite(LogicalPlan::Filter {
                        predicate,
                        input: deeper,
                    })),
                },
                other => LogicalPlan::Filter {
                    predicate,
                    input: Box::new(other),
                },
            }
        }
        LogicalPlan::Project { items, input } => {
            let items: Vec<SelectItem> = items
                .into_iter()
                .map(|i| SelectItem {
                    expr: fold_expr(i.expr),
                    alias: i.alias,
                })
                .collect();
            // Fuse Project(Project(x)) when the outer projection only
            // passes through (possibly re-ordering/renaming) columns the
            // inner one computes.
            if let LogicalPlan::Project {
                items: inner,
                input: deeper,
            } = *input
            {
                if let Some(fused) = fuse_projections(&items, &inner) {
                    return LogicalPlan::Project {
                        items: fused,
                        input: deeper,
                    };
                }
                return LogicalPlan::Project {
                    items,
                    input: Box::new(LogicalPlan::Project {
                        items: inner,
                        input: deeper,
                    }),
                };
            }
            LogicalPlan::Project { items, input }
        }
        // ORDER BY + LIMIT fuses into a partial top-k selection. The
        // Limit(Project(Sort)) sandwich — the shape the planner emits
        // when the sort key is not in the SELECT list — fuses too, with
        // the projection hoisted above the TopK so sort keys (e.g. a
        // `distance(emb, ?)` call) stay visible to access-path lowering.
        LogicalPlan::Limit { n, input } => match *input {
            LogicalPlan::Sort {
                keys,
                input: deeper,
            } => LogicalPlan::TopK {
                keys,
                n,
                input: deeper,
            },
            LogicalPlan::Project { items, input: mid } => match *mid {
                LogicalPlan::Sort {
                    keys,
                    input: deeper,
                } => LogicalPlan::Project {
                    items,
                    input: Box::new(LogicalPlan::TopK {
                        keys,
                        n,
                        input: deeper,
                    }),
                },
                other => LogicalPlan::Limit {
                    n,
                    input: Box::new(LogicalPlan::Project {
                        items,
                        input: Box::new(other),
                    }),
                },
            },
            other => LogicalPlan::Limit {
                n,
                input: Box::new(other),
            },
        },
        other => other,
    }
}

/// Outer items that are bare column references resolve against the inner
/// projection's outputs; the result is the inner expression under the
/// outer name. Any non-column outer item blocks fusion.
fn fuse_projections(outer: &[SelectItem], inner: &[SelectItem]) -> Option<Vec<SelectItem>> {
    let mut fused = Vec::with_capacity(outer.len());
    for item in outer {
        let Expr::Column { name, .. } = &item.expr else {
            return None;
        };
        let source = inner
            .iter()
            .find(|i| i.output_name().eq_ignore_ascii_case(name))?;
        fused.push(SelectItem {
            expr: source.expr.clone(),
            alias: Some(item.output_name()),
        });
    }
    Some(fused)
}

fn map_children(plan: LogicalPlan, f: impl Fn(LogicalPlan) -> LogicalPlan + Copy) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan { .. } => plan,
        LogicalPlan::TvfScan { name, input } => LogicalPlan::TvfScan {
            name,
            input: Box::new(f(*input)),
        },
        LogicalPlan::TvfProject { name, args, input } => LogicalPlan::TvfProject {
            name,
            args,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Filter { predicate, input } => LogicalPlan::Filter {
            predicate,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Project { items, input } => LogicalPlan::Project {
            items,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input,
        } => LogicalPlan::Aggregate {
            group_by,
            aggregates,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
        } => LogicalPlan::Join {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
            kind,
            on,
        },
        LogicalPlan::Sort { keys, input } => LogicalPlan::Sort {
            keys,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Limit { n, input } => LogicalPlan::Limit {
            n,
            input: Box::new(f(*input)),
        },
        LogicalPlan::TopK { keys, n, input } => LogicalPlan::TopK {
            keys,
            n,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Window { windows, input } => LogicalPlan::Window {
            windows,
            input: Box::new(f(*input)),
        },
        LogicalPlan::Distinct { input } => LogicalPlan::Distinct {
            input: Box::new(f(*input)),
        },
        LogicalPlan::UnionAll { left, right } => LogicalPlan::UnionAll {
            left: Box::new(f(*left)),
            right: Box::new(f(*right)),
        },
    }
}

/// A predicate can move below a projection iff every column it references
/// is passed through unchanged (possibly under its own name).
fn pushable_through_project(pred: &Expr, items: &[SelectItem]) -> bool {
    pred.referenced_columns().iter().all(|col| {
        items.iter().any(|item| {
            let passes_unchanged = matches!(&item.expr, Expr::Column { name, .. } if name == col);
            let not_renamed = item.alias.is_none() || item.alias.as_deref() == Some(col.as_str());
            passes_unchanged && not_renamed
        })
    })
}

/// Evaluate constant subexpressions.
pub fn fold_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Binary { op, left, right } => {
            let left = fold_expr(*left);
            let right = fold_expr(*right);
            if let (Expr::Literal(Literal::Number(a)), Expr::Literal(Literal::Number(b))) =
                (&left, &right)
            {
                let (a, b) = (*a, *b);
                return match op {
                    BinOp::Add => Expr::num(a + b),
                    BinOp::Sub => Expr::num(a - b),
                    BinOp::Mul => Expr::num(a * b),
                    BinOp::Div if b != 0.0 => Expr::num(a / b),
                    BinOp::Mod if b != 0.0 => Expr::num(a % b),
                    BinOp::Eq => Expr::Literal(Literal::Bool(a == b)),
                    BinOp::NotEq => Expr::Literal(Literal::Bool(a != b)),
                    BinOp::Lt => Expr::Literal(Literal::Bool(a < b)),
                    BinOp::LtEq => Expr::Literal(Literal::Bool(a <= b)),
                    BinOp::Gt => Expr::Literal(Literal::Bool(a > b)),
                    BinOp::GtEq => Expr::Literal(Literal::Bool(a >= b)),
                    // Division by a constant zero is a runtime concern.
                    _ => Expr::Binary {
                        op,
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                };
            }
            if let (Expr::Literal(Literal::Bool(a)), Expr::Literal(Literal::Bool(b))) =
                (&left, &right)
            {
                match op {
                    BinOp::And => return Expr::Literal(Literal::Bool(*a && *b)),
                    BinOp::Or => return Expr::Literal(Literal::Bool(*a || *b)),
                    _ => {}
                }
            }
            // Boolean identity simplifications: TRUE AND x => x, etc.
            match (op, &left, &right) {
                (BinOp::And, Expr::Literal(Literal::Bool(true)), _) => return right,
                (BinOp::And, _, Expr::Literal(Literal::Bool(true))) => return left,
                (BinOp::Or, Expr::Literal(Literal::Bool(false)), _) => return right,
                (BinOp::Or, _, Expr::Literal(Literal::Bool(false))) => return left,
                _ => {}
            }
            Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        Expr::Unary { op, expr } => {
            let inner = fold_expr(*expr);
            match (op, &inner) {
                (UnOp::Neg, Expr::Literal(Literal::Number(n))) => Expr::num(-n),
                (UnOp::Not, Expr::Literal(Literal::Bool(b))) => Expr::Literal(Literal::Bool(!b)),
                _ => Expr::Unary {
                    op,
                    expr: Box::new(inner),
                },
            }
        }
        Expr::Func { name, args } => Expr::Func {
            name,
            args: args.into_iter().map(fold_expr).collect(),
        },
        Expr::Aggregate { func, arg } => Expr::Aggregate {
            func,
            arg: arg.map(|a| Box::new(fold_expr(*a))),
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand.map(|o| Box::new(fold_expr(*o))),
            branches: branches
                .into_iter()
                .map(|(w, t)| (fold_expr(w), fold_expr(t)))
                .collect(),
            else_expr: else_expr.map(|e| Box::new(fold_expr(*e))),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let expr = fold_expr(*expr);
            let list: Vec<Expr> = list.into_iter().map(fold_expr).collect();
            // A fully-literal membership test folds to a boolean.
            if let Expr::Literal(Literal::Number(x)) = &expr {
                if list
                    .iter()
                    .all(|i| matches!(i, Expr::Literal(Literal::Number(_))))
                {
                    let found = list
                        .iter()
                        .any(|i| matches!(i, Expr::Literal(Literal::Number(v)) if v == x));
                    return Expr::Literal(Literal::Bool(found != negated));
                }
            }
            Expr::InList {
                expr: Box::new(expr),
                list,
                negated,
            }
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(fold_expr(*expr)),
            pattern,
            negated,
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::plan::{build_plan, PlannerContext};

    fn optimized(sql: &str) -> LogicalPlan {
        optimize(build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap())
    }

    #[test]
    fn constant_folding() {
        assert_eq!(fold_expr(parse_expr("1 + 2 * 3")), Expr::num(7.0));
        assert_eq!(
            fold_expr(parse_expr("2 > 1")),
            Expr::Literal(Literal::Bool(true))
        );
        assert_eq!(fold_expr(parse_expr("-(3 + 4)")), Expr::num(-7.0));
        // Non-constant parts survive.
        assert_eq!(
            format!("{}", fold_expr(parse_expr("x + (1 + 1)"))),
            "(x + 2)"
        );
    }

    fn parse_expr(e: &str) -> Expr {
        parse(&format!("SELECT {e} FROM t"))
            .unwrap()
            .select
            .remove(0)
            .expr
    }

    #[test]
    fn boolean_identities() {
        assert_eq!(format!("{}", fold_expr(parse_expr("TRUE AND x"))), "x");
        assert_eq!(format!("{}", fold_expr(parse_expr("x OR FALSE"))), "x");
        assert_eq!(
            fold_expr(parse_expr("NOT TRUE")),
            Expr::Literal(Literal::Bool(false))
        );
    }

    #[test]
    fn trivially_true_filter_removed() {
        let p = optimized("SELECT * FROM t WHERE 1 < 2");
        assert!(matches!(p, LogicalPlan::Scan { .. }), "got {p:?}");
    }

    #[test]
    fn adjacent_filters_fuse() {
        // Subquery filter + outer filter on passthrough projection.
        let p = optimized("SELECT * FROM (SELECT * FROM t WHERE a > 1) WHERE b < 2");
        match &p {
            LogicalPlan::Filter { predicate, input } => {
                let text = format!("{predicate}");
                assert!(text.contains("a > 1") && text.contains("b < 2"), "{text}");
                assert!(matches!(**input, LogicalPlan::Scan { .. }));
            }
            other => panic!("expected fused filter over scan, got {other:?}"),
        }
    }

    #[test]
    fn filter_pushes_below_projection() {
        let p = optimized("SELECT a, b FROM (SELECT a, b FROM t) WHERE a > 3");
        // The filter must sit below (inside) the projections, on the scan.
        fn scan_parent_is_filter(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { input, .. } => {
                    matches!(**input, LogicalPlan::Scan { .. })
                }
                other => other.inputs().iter().any(|c| scan_parent_is_filter(c)),
            }
        }
        assert!(scan_parent_is_filter(&p), "plan: {p}");
    }

    #[test]
    fn filter_does_not_push_below_renaming_projection() {
        let p = optimized("SELECT score FROM (SELECT f(x) AS score FROM t) WHERE score > 0.8");
        // `score` is computed by the inner projection: filter must stay above.
        match &p {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Filter { .. }), "plan: {p}")
            }
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Project { .. }), "plan: {p}")
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn filter_pushes_below_sort_but_not_limit() {
        let p = optimized("SELECT * FROM (SELECT * FROM t ORDER BY a) WHERE a > 1");
        match &p {
            LogicalPlan::Sort { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Filter { .. }), "plan: {p}")
            }
            other => panic!("expected sort on top, got {other:?}"),
        }
        let p2 = optimized("SELECT * FROM (SELECT * FROM t LIMIT 5) WHERE a > 1");
        match &p2 {
            LogicalPlan::Filter { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Limit { .. }), "plan: {p2}")
            }
            other => panic!("filter must stay above limit, got {other:?}"),
        }
    }

    #[test]
    fn in_list_of_literals_folds() {
        assert_eq!(
            fold_expr(parse_expr("2 IN (1, 2, 3)")),
            Expr::Literal(Literal::Bool(true))
        );
        assert_eq!(
            fold_expr(parse_expr("5 NOT IN (1, 2)")),
            Expr::Literal(Literal::Bool(true))
        );
        // Column membership survives folding (with folded items).
        assert_eq!(
            format!("{}", fold_expr(parse_expr("x IN (1 + 1, 3)"))),
            "(x IN (2, 3))"
        );
    }

    #[test]
    fn case_branches_fold() {
        assert_eq!(
            format!(
                "{}",
                fold_expr(parse_expr("CASE WHEN x > 1 + 1 THEN 2 * 3 ELSE 0 END"))
            ),
            "CASE WHEN (x > 2) THEN 6 ELSE 0 END"
        );
    }

    #[test]
    fn distinct_and_union_nodes_survive_optimization() {
        let p = optimized("SELECT DISTINCT a FROM t WHERE 1 < 2 UNION ALL SELECT a FROM u");
        match p {
            LogicalPlan::UnionAll { left, right } => {
                assert!(
                    matches!(*left, LogicalPlan::Distinct { .. }),
                    "left: {left}"
                );
                assert!(
                    matches!(*right, LogicalPlan::Project { .. }),
                    "right: {right}"
                );
            }
            other => panic!("expected union, got {other:?}"),
        }
    }

    #[test]
    fn limit_sort_fuses_into_topk() {
        let p = optimized("SELECT a FROM t ORDER BY a DESC LIMIT 3");
        match p {
            LogicalPlan::TopK {
                keys,
                n: crate::ast::LimitCount::Const(3),
                input,
            } => {
                assert!(keys[0].desc);
                assert!(matches!(*input, LogicalPlan::Project { .. }));
            }
            other => panic!("expected TopK, got {other:?}"),
        }
        // LIMIT without ORDER BY stays a plain Limit.
        let p2 = optimized("SELECT a FROM t LIMIT 3");
        assert!(matches!(p2, LogicalPlan::Limit { .. }), "{p2}");
        // Sort key dropped by the projection: the Limit(Project(Sort))
        // sandwich fuses with the projection hoisted above the TopK.
        let p4 = optimized("SELECT a FROM t ORDER BY b LIMIT 3");
        match p4 {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(*input, LogicalPlan::TopK { .. }), "{input}");
            }
            other => panic!("expected Project over TopK, got {other:?}"),
        }
        // Filters never push through TopK (they change the selected set).
        let p3 = optimized("SELECT a FROM (SELECT a FROM t ORDER BY a LIMIT 5) WHERE a > 1");
        fn filter_above_topk(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { input, .. } => {
                    fn has_topk(p: &LogicalPlan) -> bool {
                        matches!(p, LogicalPlan::TopK { .. })
                            || p.inputs().iter().any(|c| has_topk(c))
                    }
                    has_topk(input)
                }
                other => other.inputs().iter().any(|c| filter_above_topk(c)),
            }
        }
        assert!(filter_above_topk(&p3), "plan: {p3}");
    }

    #[test]
    fn deep_plans_reach_fixpoint() {
        // A nesting depth the old fixed 4-pass loop could not fully fold:
        // each subquery level adds a Filter + passthrough Projection pair
        // that must fuse into the single scan-level filter.
        let mut sql = String::from("SELECT * FROM t WHERE c0 > 0");
        for i in 1..10 {
            sql = format!("SELECT * FROM ({sql}) WHERE c{i} > {i}");
        }
        let p = optimized(&sql);
        match &p {
            LogicalPlan::Filter { predicate, input } => {
                let text = format!("{predicate}");
                for i in 0..10 {
                    assert!(text.contains(&format!("c{i}")), "missing c{i} in {text}");
                }
                assert!(
                    matches!(**input, LogicalPlan::Scan { .. }),
                    "all filters must fuse onto the scan: {p}"
                );
            }
            other => panic!("expected one fused filter, got {other}"),
        }
        // Idempotence: optimising an optimised plan changes nothing.
        assert_eq!(optimize(p.clone()), p);
    }

    #[test]
    fn adjacent_projections_fuse() {
        let p = optimized("SELECT total FROM (SELECT price * qty AS total FROM t)");
        match &p {
            LogicalPlan::Project { items, input } => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].output_name(), "total");
                assert_eq!(format!("{}", items[0].expr), "(price * qty)");
                assert!(matches!(**input, LogicalPlan::Scan { .. }), "plan: {p}");
            }
            other => panic!("expected fused projection, got {other:?}"),
        }
        // Outer expressions (not bare columns) block fusion.
        let p2 = optimized("SELECT total + 1 FROM (SELECT price * qty AS total FROM t)");
        match &p2 {
            LogicalPlan::Project { input, .. } => {
                assert!(matches!(**input, LogicalPlan::Project { .. }), "plan: {p2}")
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn aggregate_blocks_pushdown() {
        let p = optimized("SELECT d FROM (SELECT d, COUNT(*) AS c FROM t GROUP BY d) WHERE d > 1");
        // Filter over the aggregate's key output may not move below the
        // aggregate in our conservative rule set.
        fn has_filter_above_aggregate(p: &LogicalPlan) -> bool {
            match p {
                LogicalPlan::Filter { input, .. } => {
                    fn contains_agg(p: &LogicalPlan) -> bool {
                        matches!(p, LogicalPlan::Aggregate { .. })
                            || p.inputs().iter().any(|c| contains_agg(c))
                    }
                    contains_agg(input)
                }
                other => other.inputs().iter().any(|c| has_filter_above_aggregate(c)),
            }
        }
        assert!(has_filter_above_aggregate(&p), "plan: {p}");
    }
}
