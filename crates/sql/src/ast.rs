//! Abstract syntax tree for the supported SQL dialect.

use std::fmt;

/// Literal values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Number(f64),
    String(String),
    Bool(bool),
    Null,
}

/// Binary operators, loosest-binding last.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    /// `COUNT(DISTINCT x)` — number of distinct values per group.
    CountDistinct,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample variance (n−1 denominator; 0 for singleton groups in this
    /// NULL-free dialect).
    Variance,
    /// Sample standard deviation, `sqrt(VARIANCE)`.
    Stddev,
}

impl AggFunc {
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::CountDistinct => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::Variance => "VARIANCE",
            AggFunc::Stddev => "STDDEV",
        }
    }

    /// Canonical `FUNC(arg)` rendering, handling `COUNT(*)` and the
    /// `DISTINCT` modifier.
    pub fn render_call(self, arg: &str) -> String {
        match self {
            AggFunc::CountDistinct => format!("COUNT(DISTINCT {arg})"),
            f => format!("{}({arg})", f.name()),
        }
    }
}

/// Window functions (`… OVER (PARTITION BY … ORDER BY …)`).
#[derive(Debug, Clone, PartialEq)]
pub enum WindowFunc {
    /// 1-based position within the partition, in window order.
    RowNumber,
    /// Rank with gaps (ties share a rank; the next rank skips).
    Rank,
    /// Rank without gaps.
    DenseRank,
    /// Aggregate over the partition; *running* (peers-inclusive
    /// cumulative) when the window has an ORDER BY, whole-partition
    /// otherwise. `None` argument encodes `COUNT(*)`.
    Agg {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
}

impl WindowFunc {
    pub fn display_head(&self) -> String {
        match self {
            WindowFunc::RowNumber => "ROW_NUMBER()".into(),
            WindowFunc::Rank => "RANK()".into(),
            WindowFunc::DenseRank => "DENSE_RANK()".into(),
            WindowFunc::Agg { func, arg } => match arg {
                Some(a) => func.render_call(&a.to_string()),
                None => format!("{}(*)", func.name()),
            },
        }
    }
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`t.c` keeps `qualifier`).
    Column {
        qualifier: Option<String>,
        name: String,
    },
    Literal(Literal),
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// Function call: scalar UDF or table-valued function, resolved later.
    Func {
        name: String,
        args: Vec<Expr>,
    },
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Aggregate {
        func: AggFunc,
        arg: Option<Box<Expr>>,
    },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`. With an operand, each
    /// WHEN is compared for equality against it; without, each WHEN is a
    /// boolean condition.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    /// `expr [NOT] IN (item, …)` — list membership.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'` — SQL wildcard match (`%`, `_`).
    Like {
        expr: Box<Expr>,
        pattern: String,
        negated: bool,
    },
    /// Window function call.
    Window {
        func: WindowFunc,
        partition_by: Vec<Expr>,
        order_by: Vec<OrderItem>,
    },
    /// Uncorrelated scalar subquery: `(SELECT …)` in expression position.
    /// Must evaluate to exactly one row and one column; it sees the
    /// session catalog, not the enclosing query's columns.
    ScalarSubquery(Box<Query>),
    /// Statement parameter (`?` or `$n` in the source, or a literal
    /// auto-parameterised for plan-cache sharing). `idx` is 0-based; the
    /// value arrives at execution time through the parameter binding.
    Param {
        idx: usize,
    },
    /// `*` in a select list.
    Star,
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    pub fn num(v: f64) -> Expr {
        Expr::Literal(Literal::Number(v))
    }

    pub fn str_lit(s: &str) -> Expr {
        Expr::Literal(Literal::String(s.to_owned()))
    }

    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Whether any aggregate call appears in the expression.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// All column names referenced (ignoring qualifiers).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column { name, .. } => out.push(name.clone()),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Unary { expr, .. } => expr.collect_columns(out),
            Expr::Func { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Aggregate { arg: Some(a), .. } => a.collect_columns(out),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.collect_columns(out);
                }
                for (w, t) in branches {
                    w.collect_columns(out);
                    t.collect_columns(out);
                }
                if let Some(e) = else_expr {
                    e.collect_columns(out);
                }
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for i in list {
                    i.collect_columns(out);
                }
            }
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Window {
                func,
                partition_by,
                order_by,
            } => {
                if let WindowFunc::Agg { arg: Some(a), .. } = func {
                    a.collect_columns(out);
                }
                for p in partition_by {
                    p.collect_columns(out);
                }
                for o in order_by {
                    o.expr.collect_columns(out);
                }
            }
            _ => {}
        }
    }

    /// Whether any window-function call appears in the expression.
    pub fn contains_window(&self) -> bool {
        match self {
            Expr::Window { .. } => true,
            Expr::Binary { left, right, .. } => left.contains_window() || right.contains_window(),
            Expr::Unary { expr, .. } => expr.contains_window(),
            Expr::Func { args, .. } => args.iter().any(Expr::contains_window),
            Expr::Aggregate { arg: Some(a), .. } => a.contains_window(),
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(Expr::contains_window)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_window() || t.contains_window())
                    || else_expr.as_deref().is_some_and(Expr::contains_window)
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_window() || list.iter().any(Expr::contains_window)
            }
            Expr::Like { expr, .. } => expr.contains_window(),
            _ => false,
        }
    }

    /// Canonical display name for an unaliased select item.
    pub fn display_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => func.render_call(&a.display_name()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Func { name, .. } => name.clone(),
            other => format!("{other}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column {
                qualifier: Some(q),
                name,
            } => write!(f, "{q}.{name}"),
            Expr::Column {
                qualifier: None,
                name,
            } => write!(f, "{name}"),
            Expr::Literal(Literal::Number(n)) => write!(f, "{n}"),
            Expr::Literal(Literal::String(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Literal::Bool(b)) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Expr::Literal(Literal::Null) => write!(f, "NULL"),
            Expr::Binary { op, left, right } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "<>",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::Unary {
                op: UnOp::Neg,
                expr,
            } => write!(f, "(-{expr})"),
            Expr::Unary {
                op: UnOp::Not,
                expr,
            } => write!(f, "(NOT {expr})"),
            Expr::Func { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{}", func.render_call(&a.to_string())),
                None => write!(f, "{}(*)", func.name()),
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                write!(f, "CASE")?;
                if let Some(o) = operand {
                    write!(f, " {o}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, item) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{}')",
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Expr::Window {
                func,
                partition_by,
                order_by,
            } => {
                write!(f, "{} OVER (", func.display_head())?;
                let mut space = "";
                if !partition_by.is_empty() {
                    write!(f, "PARTITION BY ")?;
                    for (i, p) in partition_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    space = " ";
                }
                if !order_by.is_empty() {
                    write!(f, "{space}ORDER BY ")?;
                    for (i, o) in order_by.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{o}")?;
                    }
                }
                write!(f, ")")
            }
            Expr::ScalarSubquery(q) => write!(f, "({q})"),
            Expr::Param { idx } => write!(f, "${}", idx + 1),
            Expr::Star => write!(f, "*"),
        }
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

impl SelectItem {
    pub fn output_name(&self) -> String {
        self.alias
            .clone()
            .unwrap_or_else(|| self.expr.display_name())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// Join flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

/// FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table, with optional alias.
    Named { name: String, alias: Option<String> },
    /// Table-valued function over a table/subquery input:
    /// `FROM parse_mnist_grid(MNIST_Grid)`.
    Tvf {
        name: String,
        input: Box<TableRef>,
        alias: Option<String>,
    },
    /// Derived table.
    Subquery {
        query: Box<Query>,
        alias: Option<String>,
    },
    /// Binary join.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Named { name, alias } => {
                write!(f, "{name}")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Tvf { name, input, alias } => {
                write!(f, "{name}({input})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Subquery { query, alias } => {
                write!(f, "({query})")?;
                if let Some(a) = alias {
                    write!(f, " AS {a}")?;
                }
                Ok(())
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    JoinKind::Inner => "JOIN",
                    JoinKind::Left => "LEFT JOIN",
                };
                write!(f, "{left} {kw} {right}")?;
                if let Some(o) = on {
                    write!(f, " ON {o}")?;
                }
                Ok(())
            }
        }
    }
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub desc: bool,
}

impl fmt::Display for OrderItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.expr, if self.desc { " DESC" } else { "" })
    }
}

/// A LIMIT row count: a structural constant baked into the plan, or a
/// typed integer parameter slot (`LIMIT ?` / `LIMIT $n`) resolved from
/// the statement binding at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LimitCount {
    Const(u64),
    Param { idx: usize },
}

impl fmt::Display for LimitCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LimitCount::Const(n) => write!(f, "{n}"),
            LimitCount::Param { idx } => write!(f, "${}", idx + 1),
        }
    }
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT` deduplicates the projected rows.
    pub distinct: bool,
    pub select: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub where_clause: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<LimitCount>,
    /// `… UNION ALL <query>` — bag union with the next query in the chain.
    /// Dialect note: ORDER BY / LIMIT bind to their nearest SELECT, not to
    /// the union as a whole.
    pub union_all: Option<Box<Query>>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.where_clause {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{o}")?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(u) = &self.union_all {
            write!(f, " UNION ALL {u}")?;
        }
        Ok(())
    }
}

/// Index build method for `CREATE INDEX … USING <method>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMethod {
    /// Exact brute-force scan through the raw vectors (the default).
    Flat,
    /// IVF-Flat: k-means partition into `nlist` cells, probe the
    /// `nprobe` nearest at query time. Approximate — trades recall for
    /// scan fraction.
    Ivf { nlist: usize, nprobe: usize },
}

impl fmt::Display for IndexMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexMethod::Flat => write!(f, "flat"),
            IndexMethod::Ivf { nlist, nprobe } => {
                write!(f, "ivf(nlist={nlist}, nprobe={nprobe})")
            }
        }
    }
}

/// A top-level SQL statement: a query, or one of the small set of DDL
/// forms the engine accepts (vector-index management). DDL executes
/// eagerly against the catalog; only `Query` flows through the
/// plan/compile pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Query(Query),
    /// `CREATE INDEX name ON table (column) [USING flat | ivf(nlist, nprobe)]
    /// [WITH (metric = l2 | ip | cosine)]`-style index creation. The
    /// metric keyword is parsed here; interpretation lives in the engine.
    CreateIndex {
        name: String,
        table: String,
        column: String,
        method: IndexMethod,
        /// Lower-cased metric name when a `USING … (metric …)` or
        /// trailing metric ident was supplied; `None` = engine default.
        metric: Option<String>,
    },
    /// `DROP INDEX name`.
    DropIndex {
        name: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers() {
        let e = Expr::binary(BinOp::Gt, Expr::col("score"), Expr::num(0.8));
        assert_eq!(e.referenced_columns(), vec!["score"]);
        assert!(!e.contains_aggregate());
        let agg = Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
        };
        assert!(agg.contains_aggregate());
        assert_eq!(agg.display_name(), "COUNT(*)");
    }

    #[test]
    fn display_round_trips_shapes() {
        let e = Expr::binary(
            BinOp::And,
            Expr::binary(BinOp::GtEq, Expr::col("a"), Expr::num(1.0)),
            Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(Expr::col("b")),
            },
        );
        assert_eq!(format!("{e}"), "((a >= 1) AND (NOT b))");
    }

    #[test]
    fn string_literal_escaping() {
        let e = Expr::str_lit("it's");
        assert_eq!(format!("{e}"), "'it''s'");
    }

    #[test]
    fn select_item_naming() {
        let plain = SelectItem {
            expr: Expr::col("Digit"),
            alias: None,
        };
        assert_eq!(plain.output_name(), "Digit");
        let aliased = SelectItem {
            expr: Expr::Aggregate {
                func: AggFunc::Avg,
                arg: Some(Box::new(Expr::col("x"))),
            },
            alias: Some("mean_x".into()),
        };
        assert_eq!(aliased.output_name(), "mean_x");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Lt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Eq.is_logical());
    }
}
