//! Logical query plans and the AST → plan builder.

use std::fmt;

use crate::ast::{
    AggFunc, Expr, JoinKind, LimitCount, OrderItem, Query, SelectItem, TableRef, WindowFunc,
};
use crate::SqlError;

/// One aggregate computed by an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateExpr {
    pub func: AggFunc,
    /// `None` encodes `COUNT(*)`.
    pub arg: Option<Expr>,
    /// Output column name.
    pub output: String,
}

/// One window computation of a [`LogicalPlan::Window`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    pub func: WindowFunc,
    pub partition_by: Vec<Expr>,
    pub order_by: Vec<OrderItem>,
    /// Output column name.
    pub output: String,
}

/// Relational algebra tree. `tdp-exec` lowers each node onto tensor
/// kernels (and, in trainable mode, onto their differentiable twins).
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base table scan.
    Scan { table: String },
    /// Table-valued function applied to an input relation
    /// (`FROM parse_mnist_grid(MNIST_Grid)`).
    TvfScan {
        name: String,
        input: Box<LogicalPlan>,
    },
    /// Table-valued function in projection position
    /// (`SELECT extract_table(images) FROM …`): evaluates the TVF on the
    /// argument columns of each input row and emits the TVF's output table.
    TvfProject {
        name: String,
        args: Vec<Expr>,
        input: Box<LogicalPlan>,
    },
    /// Row filter.
    Filter {
        predicate: Expr,
        input: Box<LogicalPlan>,
    },
    /// Column projection / expression evaluation.
    Project {
        items: Vec<SelectItem>,
        input: Box<LogicalPlan>,
    },
    /// Grouped (or global, when `group_by` is empty) aggregation.
    Aggregate {
        group_by: Vec<Expr>,
        aggregates: Vec<AggregateExpr>,
        input: Box<LogicalPlan>,
    },
    /// Binary join.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        kind: JoinKind,
        on: Option<Expr>,
    },
    /// Sort by keys.
    Sort {
        keys: Vec<OrderItem>,
        input: Box<LogicalPlan>,
    },
    /// Row-count cap: a structural constant or a `LIMIT ?` parameter slot.
    Limit {
        n: LimitCount,
        input: Box<LogicalPlan>,
    },
    /// Window-function evaluation: appends one column per window
    /// expression, preserving row order and the input columns.
    Window {
        windows: Vec<WindowExpr>,
        input: Box<LogicalPlan>,
    },
    /// Fused `ORDER BY … LIMIT n`: partial top-k selection, produced by
    /// the optimizer from `Limit(Sort(…))`. Output order matches the full
    /// sort (ties broken by input position).
    TopK {
        keys: Vec<OrderItem>,
        n: LimitCount,
        input: Box<LogicalPlan>,
    },
    /// Row deduplication (`SELECT DISTINCT`).
    Distinct { input: Box<LogicalPlan> },
    /// Bag union of two relations with compatible schemas.
    UnionAll {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
    },
}

impl LogicalPlan {
    /// Children of this node (0, 1 or 2).
    pub fn inputs(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::TvfScan { input, .. }
            | LogicalPlan::TvfProject { input, .. }
            | LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Distinct { input } => vec![input],
            LogicalPlan::Join { left, right, .. } | LogicalPlan::UnionAll { left, right } => {
                vec![left, right]
            }
        }
    }

    /// Indented EXPLAIN-style rendering.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        match self {
            LogicalPlan::Scan { table } => out.push_str(&format!("Scan: {table}\n")),
            LogicalPlan::TvfScan { name, .. } => out.push_str(&format!("TvfScan: {name}\n")),
            LogicalPlan::TvfProject { name, args, .. } => {
                let rendered: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                out.push_str(&format!("TvfProject: {name}({})\n", rendered.join(", ")));
            }
            LogicalPlan::Filter { predicate, .. } => {
                out.push_str(&format!("Filter: {predicate}\n"))
            }
            LogicalPlan::Project { items, .. } => {
                let rendered: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                out.push_str(&format!("Project: {}\n", rendered.join(", ")));
            }
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                let keys: Vec<String> = group_by.iter().map(|g| g.to_string()).collect();
                let aggs: Vec<String> = aggregates
                    .iter()
                    .map(|a| match &a.arg {
                        Some(e) => format!("{}({e})", a.func.name()),
                        None => format!("{}(*)", a.func.name()),
                    })
                    .collect();
                out.push_str(&format!(
                    "Aggregate: keys=[{}] aggs=[{}]\n",
                    keys.join(", "),
                    aggs.join(", ")
                ));
            }
            LogicalPlan::Join { kind, on, .. } => {
                let on_txt = on.as_ref().map(|o| format!(" ON {o}")).unwrap_or_default();
                out.push_str(&format!("Join: {kind:?}{on_txt}\n"));
            }
            LogicalPlan::Sort { keys, .. } => {
                let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                out.push_str(&format!("Sort: {}\n", rendered.join(", ")));
            }
            LogicalPlan::Limit { n, .. } => out.push_str(&format!("Limit: {n}\n")),
            LogicalPlan::TopK { keys, n, .. } => {
                let rendered: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
                out.push_str(&format!("TopK: {} LIMIT {n}\n", rendered.join(", ")));
            }
            LogicalPlan::Window { windows, .. } => {
                let rendered: Vec<String> = windows
                    .iter()
                    .map(|w| {
                        Expr::Window {
                            func: w.func.clone(),
                            partition_by: w.partition_by.clone(),
                            order_by: w.order_by.clone(),
                        }
                        .to_string()
                    })
                    .collect();
                out.push_str(&format!("Window: {}\n", rendered.join(", ")));
            }
            LogicalPlan::Distinct { .. } => out.push_str("Distinct\n"),
            LogicalPlan::UnionAll { .. } => out.push_str("UnionAll\n"),
        }
        for child in self.inputs() {
            child.explain_into(out, depth + 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// Name-resolution hooks the planner needs from the session: which function
/// names denote table-valued functions (they change plan shape).
pub struct PlannerContext<'a> {
    pub is_tvf: &'a dyn Fn(&str) -> bool,
}

impl Default for PlannerContext<'static> {
    fn default() -> Self {
        PlannerContext { is_tvf: &|_| false }
    }
}

/// Build a logical plan from a parsed query.
pub fn build_plan(query: &Query, ctx: &PlannerContext<'_>) -> Result<LogicalPlan, SqlError> {
    let from = query
        .from
        .as_ref()
        .ok_or_else(|| SqlError::new("queries must have a FROM clause"))?;
    let mut plan = plan_table_ref(from, ctx)?;

    if let Some(pred) = &query.where_clause {
        if pred.contains_aggregate() {
            return Err(SqlError::new(
                "aggregates are not allowed in WHERE (use HAVING)",
            ));
        }
        if pred.contains_window() {
            return Err(SqlError::new("window functions are not allowed in WHERE"));
        }
        plan = LogicalPlan::Filter {
            predicate: pred.clone(),
            input: Box::new(plan),
        };
    }

    let has_window = query.select.iter().any(|i| i.expr.contains_window());
    if has_window
        && (!query.group_by.is_empty() || query.select.iter().any(|i| i.expr.contains_aggregate()))
    {
        return Err(SqlError::new(
            "window functions cannot be mixed with GROUP BY aggregation in this dialect              (window over an aggregated subquery instead)",
        ));
    }

    let needs_agg = !query.group_by.is_empty()
        || query.select.iter().any(|i| i.expr.contains_aggregate())
        || query.having.as_ref().is_some_and(Expr::contains_aggregate);

    if needs_agg {
        plan = plan_aggregate(query, plan)?;
    } else {
        if query.having.is_some() {
            return Err(SqlError::new("HAVING requires aggregation"));
        }
        if has_window {
            let mut windows = Vec::new();
            let items: Vec<SelectItem> = query
                .select
                .iter()
                .map(|i| SelectItem {
                    expr: extract_windows(&i.expr, &mut windows),
                    alias: i.alias.clone(),
                })
                .collect();
            plan = LogicalPlan::Window {
                windows,
                input: Box::new(plan),
            };
            plan = plan_projection(&items, plan, ctx)?;
        } else {
            plan = plan_projection(&query.select, plan, ctx)?;
        }
    }

    if query.distinct {
        plan = LogicalPlan::Distinct {
            input: Box::new(plan),
        };
    }

    if !query.order_by.is_empty() {
        // Above an aggregation, a sort key equal to a GROUP BY expression
        // must reference the key's output column — its input columns are
        // gone post-grouping.
        let order_by: Vec<OrderItem> = query
            .order_by
            .iter()
            .map(|o| OrderItem {
                expr: reference_group_keys(&o.expr, &query.group_by),
                desc: o.desc,
            })
            .collect();
        // ORDER BY may reference columns the projection drops (SQL scoping:
        // sort keys resolve against the FROM scope as well as aliases). If
        // any key is missing from the projection's output, sort *below* it.
        plan = match plan {
            LogicalPlan::Project { items, input }
                if sort_needs_input_columns(&order_by, &items) =>
            {
                LogicalPlan::Project {
                    items,
                    input: Box::new(LogicalPlan::Sort {
                        keys: order_by,
                        input,
                    }),
                }
            }
            other => LogicalPlan::Sort {
                keys: order_by,
                input: Box::new(other),
            },
        };
    }
    if let Some(n) = query.limit {
        plan = LogicalPlan::Limit {
            n,
            input: Box::new(plan),
        };
    }
    if let Some(next) = &query.union_all {
        plan = LogicalPlan::UnionAll {
            left: Box::new(plan),
            right: Box::new(build_plan(next, ctx)?),
        };
    }
    Ok(plan)
}

fn plan_table_ref(t: &TableRef, ctx: &PlannerContext<'_>) -> Result<LogicalPlan, SqlError> {
    match t {
        TableRef::Named { name, .. } => Ok(LogicalPlan::Scan {
            table: name.clone(),
        }),
        TableRef::Tvf { name, input, .. } => Ok(LogicalPlan::TvfScan {
            name: name.clone(),
            input: Box::new(plan_table_ref(input, ctx)?),
        }),
        TableRef::Subquery { query, .. } => build_plan(query, ctx),
        TableRef::Join {
            left,
            right,
            kind,
            on,
        } => Ok(LogicalPlan::Join {
            left: Box::new(plan_table_ref(left, ctx)?),
            right: Box::new(plan_table_ref(right, ctx)?),
            kind: *kind,
            on: on.clone(),
        }),
    }
}

fn plan_projection(
    items: &[SelectItem],
    input: LogicalPlan,
    ctx: &PlannerContext<'_>,
) -> Result<LogicalPlan, SqlError> {
    // `SELECT *` — no projection node needed.
    if items.len() == 1 && matches!(items[0].expr, Expr::Star) {
        return Ok(input);
    }
    // Table-valued function in projection position expands to a full table.
    if items.len() == 1 {
        if let Expr::Func { name, args } = &items[0].expr {
            if (ctx.is_tvf)(name) {
                return Ok(LogicalPlan::TvfProject {
                    name: name.clone(),
                    args: args.clone(),
                    input: Box::new(input),
                });
            }
        }
    }
    for item in items {
        if matches!(item.expr, Expr::Star) {
            return Err(SqlError::new(
                "'*' may not be mixed with other select items in this dialect",
            ));
        }
    }
    Ok(LogicalPlan::Project {
        items: items.to_vec(),
        input: Box::new(input),
    })
}

fn plan_aggregate(query: &Query, input: LogicalPlan) -> Result<LogicalPlan, SqlError> {
    let mut aggregates: Vec<AggregateExpr> = Vec::new();

    // Rewrite select/having expressions, pulling aggregate calls out into
    // Aggregate-node outputs referenced by name.
    let mut rewritten_select = Vec::with_capacity(query.select.len());
    for item in &query.select {
        let expr = extract_aggregates(&item.expr, &mut aggregates);
        rewritten_select.push(SelectItem {
            expr,
            alias: item.alias.clone(),
        });
    }
    let rewritten_having = query
        .having
        .as_ref()
        .map(|h| reference_group_keys(&extract_aggregates(h, &mut aggregates), &query.group_by));

    // Non-aggregate select expressions must be grouping keys.
    for (item, rewritten) in query.select.iter().zip(&mut rewritten_select) {
        if item.expr.contains_aggregate() {
            continue;
        }
        // Constants (inline or auto-parameterised) need no grouping key.
        if matches!(item.expr, Expr::Literal(_) | Expr::Param { .. }) {
            continue;
        }
        let is_key = query.group_by.contains(&item.expr);
        if !is_key {
            return Err(SqlError::new(format!(
                "select item '{}' must appear in GROUP BY or inside an aggregate",
                rewritten.expr
            )));
        }
        // Expression keys (`GROUP BY x + 1`) are computed by the
        // Aggregate node and exposed under their display name; the
        // projection above it must reference that output column, not
        // re-evaluate the expression (its inputs are gone post-grouping).
        if !matches!(item.expr, Expr::Column { .. }) {
            rewritten.expr = Expr::col(&item.expr.display_name());
        }
    }

    let mut plan = LogicalPlan::Aggregate {
        group_by: query.group_by.clone(),
        aggregates,
        input: Box::new(input),
    };
    if let Some(h) = rewritten_having {
        plan = LogicalPlan::Filter {
            predicate: h,
            input: Box::new(plan),
        };
    }

    // Final projection for ordering/aliasing. Skip when it is an identity
    // over the aggregate output (common fast path: SELECT keys, COUNT(*)).
    let trivial = rewritten_select
        .iter()
        .all(|i| matches!(&i.expr, Expr::Column { .. }) && i.alias.is_none());
    if trivial {
        Ok(plan)
    } else {
        Ok(LogicalPlan::Project {
            items: rewritten_select,
            input: Box::new(plan),
        })
    }
}

/// Replace every subexpression equal to a GROUP BY key with a column
/// reference to the key's aggregate output (named by its display text),
/// so expressions evaluated *above* the Aggregate node — sort keys,
/// HAVING residue — resolve against its schema instead of re-evaluating
/// an expression whose input columns are gone post-grouping. Plain
/// column keys need no rewrite (the key output keeps the column name);
/// aggregate arguments, windows and subqueries keep their own scopes.
fn reference_group_keys(expr: &Expr, keys: &[Expr]) -> Expr {
    if keys.is_empty() {
        return expr.clone();
    }
    if !matches!(
        expr,
        Expr::Column { .. } | Expr::Literal(_) | Expr::Param { .. }
    ) && keys.contains(expr)
    {
        return Expr::col(&expr.display_name());
    }
    match expr {
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(reference_group_keys(left, keys)),
            right: Box::new(reference_group_keys(right, keys)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(reference_group_keys(expr, keys)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| reference_group_keys(a, keys)).collect(),
        },
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(reference_group_keys(o, keys))),
            branches: branches
                .iter()
                .map(|(w, t)| (reference_group_keys(w, keys), reference_group_keys(t, keys)))
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|e| Box::new(reference_group_keys(e, keys))),
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Expr::InList {
            expr: Box::new(reference_group_keys(expr, keys)),
            list: list.iter().map(|i| reference_group_keys(i, keys)).collect(),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Expr::Like {
            expr: Box::new(reference_group_keys(expr, keys)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        // Aggregate arguments evaluate against the pre-grouping input;
        // windows and subqueries carry their own scopes.
        other => other.clone(),
    }
}

/// True when some ORDER BY key references a column that the projection
/// does not expose under that name (neither as a passthrough column nor as
/// an alias) — the sort must then run before the projection.
fn sort_needs_input_columns(keys: &[OrderItem], items: &[SelectItem]) -> bool {
    let outputs: Vec<String> = items.iter().map(|i| i.output_name()).collect();
    keys.iter().any(|k| {
        k.expr
            .referenced_columns()
            .iter()
            .any(|c| !outputs.iter().any(|o| o.eq_ignore_ascii_case(c)))
    })
}

/// Replace window calls with column references to the Window node's
/// outputs, registering each distinct window once.
fn extract_windows(expr: &Expr, out: &mut Vec<WindowExpr>) -> Expr {
    match expr {
        Expr::Window {
            func,
            partition_by,
            order_by,
        } => {
            let name = expr.to_string();
            if !out.iter().any(|w| w.output == name) {
                out.push(WindowExpr {
                    func: func.clone(),
                    partition_by: partition_by.clone(),
                    order_by: order_by.clone(),
                    output: name.clone(),
                });
            }
            Expr::Column {
                qualifier: None,
                name,
            }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(extract_windows(left, out)),
            right: Box::new(extract_windows(right, out)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(extract_windows(expr, out)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| extract_windows(a, out)).collect(),
        },
        other => other.clone(),
    }
}

/// Replace aggregate calls with column references to aggregate outputs,
/// registering each distinct aggregate once.
fn extract_aggregates(expr: &Expr, out: &mut Vec<AggregateExpr>) -> Expr {
    match expr {
        Expr::Aggregate { func, arg } => {
            let name = expr.display_name();
            if !out.iter().any(|a| a.output == name) {
                out.push(AggregateExpr {
                    func: *func,
                    arg: arg.as_deref().cloned(),
                    output: name.clone(),
                });
            }
            Expr::Column {
                qualifier: None,
                name,
            }
        }
        Expr::Binary { op, left, right } => Expr::Binary {
            op: *op,
            left: Box::new(extract_aggregates(left, out)),
            right: Box::new(extract_aggregates(right, out)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(extract_aggregates(expr, out)),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| extract_aggregates(a, out)).collect(),
        },
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn plan(sql: &str) -> LogicalPlan {
        build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap()
    }

    fn plan_with_tvf(sql: &str, tvfs: &[&str]) -> LogicalPlan {
        let names: Vec<String> = tvfs.iter().map(|s| s.to_string()).collect();
        let is_tvf = move |n: &str| names.iter().any(|t| t == n);
        build_plan(&parse(sql).unwrap(), &PlannerContext { is_tvf: &is_tvf }).unwrap()
    }

    #[test]
    fn scan_filter_project_shape() {
        let p = plan("SELECT a, b FROM t WHERE a > 1");
        match p {
            LogicalPlan::Project { items, input } => {
                assert_eq!(items.len(), 2);
                assert!(matches!(*input, LogicalPlan::Filter { .. }));
            }
            other => panic!("unexpected plan {other:?}"),
        }
    }

    #[test]
    fn select_star_elides_projection() {
        let p = plan("SELECT * FROM t WHERE x = 1");
        assert!(matches!(p, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn groupby_count_plan() {
        let p = plan("SELECT Digit, Size, COUNT(*) FROM g GROUP BY Digit, Size");
        match p {
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                ..
            } => {
                assert_eq!(group_by.len(), 2);
                assert_eq!(aggregates.len(), 1);
                assert_eq!(aggregates[0].output, "COUNT(*)");
                assert!(aggregates[0].arg.is_none());
            }
            other => panic!("expected bare aggregate (trivial projection), got {other:?}"),
        }
    }

    #[test]
    fn non_grouped_select_item_rejected() {
        let q = parse("SELECT a, COUNT(*) FROM t GROUP BY b").unwrap();
        let err = build_plan(&q, &PlannerContext::default()).unwrap_err();
        assert!(err.0.contains("GROUP BY"));
    }

    #[test]
    fn having_becomes_filter_over_aggregate() {
        let p = plan("SELECT d, COUNT(*) FROM t GROUP BY d HAVING COUNT(*) > 5");
        match p {
            LogicalPlan::Filter { predicate, input } => {
                assert!(format!("{predicate}").contains("COUNT(*)"));
                assert!(matches!(*input, LogicalPlan::Aggregate { .. }));
            }
            other => panic!("expected having-filter, got {other:?}"),
        }
    }

    #[test]
    fn tvf_in_from_plans_tvfscan() {
        let p = plan("SELECT Digit, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit");
        let mut node = &p;
        loop {
            match node {
                LogicalPlan::TvfScan { name, input } => {
                    assert_eq!(name, "parse_mnist_grid");
                    assert!(matches!(**input, LogicalPlan::Scan { .. }));
                    return;
                }
                other => {
                    let inputs = other.inputs();
                    assert!(!inputs.is_empty(), "TvfScan not found");
                    node = inputs[0];
                }
            }
        }
    }

    #[test]
    fn tvf_in_projection_expands() {
        let p = plan_with_tvf(
            "SELECT extract_table(images) FROM Document WHERE ts = 'x'",
            &["extract_table"],
        );
        match p {
            LogicalPlan::TvfProject { name, args, input } => {
                assert_eq!(name, "extract_table");
                assert_eq!(args.len(), 1);
                assert!(matches!(*input, LogicalPlan::Filter { .. }));
            }
            other => panic!("expected TvfProject, got {other:?}"),
        }
    }

    #[test]
    fn non_tvf_function_stays_scalar() {
        let p = plan("SELECT f(x) FROM t");
        assert!(matches!(p, LogicalPlan::Project { .. }));
    }

    #[test]
    fn order_limit_nest_on_top() {
        let p = plan("SELECT a FROM t ORDER BY a DESC LIMIT 3");
        match p {
            LogicalPlan::Limit {
                n: LimitCount::Const(3),
                input,
            } => match *input {
                LogicalPlan::Sort { ref keys, .. } => assert!(keys[0].desc),
                other => panic!("expected sort under limit, got {other:?}"),
            },
            other => panic!("expected limit on top, got {other:?}"),
        }
    }

    #[test]
    fn subquery_plans_recursively() {
        let p = plan("SELECT AVG(v) FROM (SELECT v FROM t WHERE k = 1)");
        match p {
            LogicalPlan::Aggregate { input, .. } => {
                assert!(matches!(*input, LogicalPlan::Project { .. }));
            }
            other => panic!("expected aggregate over subquery, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_aggregates_computed_once() {
        let p = plan("SELECT SUM(x), SUM(x) / COUNT(*) FROM t");
        fn find_agg(p: &LogicalPlan) -> Option<&Vec<AggregateExpr>> {
            match p {
                LogicalPlan::Aggregate { aggregates, .. } => Some(aggregates),
                _ => p.inputs().iter().find_map(|c| find_agg(c)),
            }
        }
        let aggs = find_agg(&p).expect("aggregate node");
        assert_eq!(aggs.len(), 2, "SUM(x) deduplicated, COUNT(*) added");
    }

    #[test]
    fn where_with_aggregate_rejected() {
        let q = parse("SELECT a FROM t WHERE COUNT(*) > 1").unwrap();
        assert!(build_plan(&q, &PlannerContext::default()).is_err());
    }

    #[test]
    fn explain_renders_tree() {
        let p = plan("SELECT a, COUNT(*) FROM t WHERE b > 0 GROUP BY a ORDER BY a LIMIT 1");
        let text = p.explain();
        for needle in ["Limit: 1", "Sort: a", "Aggregate:", "Filter:", "Scan: t"] {
            assert!(text.contains(needle), "explain missing {needle}:\n{text}");
        }
    }
}
