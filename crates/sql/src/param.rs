//! Statement parameters: counting explicit `?`/`$n` placeholders and
//! auto-parameterising literals for literal-invariant plan caching.
//!
//! Two SQL texts that differ only in constants ought to share one compiled
//! plan — the training-loop / REPL pattern of formatting a threshold into
//! the query text every iteration. [`parameterize_literals`] rewrites a
//! parsed [`Query`] so every inline number/string literal becomes an
//! [`Expr::Param`] slot appended *after* the statement's explicit
//! parameters, returning the extracted constants in slot order. The
//! rewritten AST renders to a normalized text (`… WHERE x > $1 …`) that
//! is identical for all literal choices and therefore usable as a cache
//! key; the extracted literals become implicit parameters bound
//! automatically at run time. Slots are assigned per *occurrence* (left
//! to right), never deduplicated by value, so the normalized key cannot
//! depend on which literals happen to coincide.
//!
//! Each root expression is constant-folded **before** extraction:
//! `x > 1 + 2` and `x > 3` normalize to the same shape, and fully
//! constant predicates collapse to a boolean before any slot is created.
//!
//! Three literal kinds stay inline:
//! * NULL — this dialect is NULL-free and the lowering rejects NULL with
//!   a targeted error that must keep firing at compile time;
//! * booleans — `TRUE`/`FALSE` (including folded-away predicates like
//!   `WHERE 1 < 2`) must stay visible to the optimizer so trivially-true
//!   filters are still removed, and a two-valued type cannot blow up the
//!   cache;
//! * LIKE patterns — structural, evaluated against dictionaries at most
//!   once per batch.

use crate::ast::{Expr, LimitCount, Literal, OrderItem, Query, SelectItem, TableRef, WindowFunc};
use crate::optimizer::fold_expr;

/// Number of explicit parameters a statement declares: one past the
/// highest `$n` (or `?`-assigned) index, 0 when the statement has none.
/// Unused lower indices still count — `$3` alone declares three slots.
/// `LIMIT ?` slots count like expression slots.
pub fn explicit_param_count(query: &Query) -> usize {
    let mut max: Option<usize> = None;
    let mut bump = |idx: usize| max = Some(max.map_or(idx, |m: usize| m.max(idx)));
    visit_query_exprs(query, &mut |e| {
        if let Expr::Param { idx } = e {
            bump(*idx);
        }
    });
    let mut limit_slots = Vec::new();
    collect_limit_params(query, &mut limit_slots);
    limit_slots.into_iter().for_each(bump);
    max.map_or(0, |m| m + 1)
}

/// Collect every `LIMIT ?` / `LIMIT $n` slot declared by `query` or any
/// nested query (derived tables, scalar subqueries, UNION ALL branches).
pub fn collect_limit_params(query: &Query, out: &mut Vec<usize>) {
    if let Some(LimitCount::Param { idx }) = query.limit {
        out.push(idx);
    }
    if let Some(from) = &query.from {
        collect_table_ref_limit_params(from, out);
    }
    // Scalar subqueries nest whole queries inside expressions.
    for root in query_root_exprs(query) {
        collect_expr_limit_params(root, out);
    }
    if let Some(u) = &query.union_all {
        collect_limit_params(u, out);
    }
}

/// This query's own expression roots (no recursion into subqueries).
fn query_root_exprs(query: &Query) -> Vec<&Expr> {
    let mut roots: Vec<&Expr> = query.select.iter().map(|i| &i.expr).collect();
    roots.extend(&query.where_clause);
    roots.extend(&query.group_by);
    roots.extend(&query.having);
    roots.extend(query.order_by.iter().map(|o| &o.expr));
    roots
}

fn collect_table_ref_limit_params(t: &TableRef, out: &mut Vec<usize>) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Tvf { input, .. } => collect_table_ref_limit_params(input, out),
        TableRef::Subquery { query, .. } => collect_limit_params(query, out),
        TableRef::Join { left, right, .. } => {
            collect_table_ref_limit_params(left, out);
            collect_table_ref_limit_params(right, out);
        }
    }
}

fn collect_expr_limit_params(e: &Expr, out: &mut Vec<usize>) {
    match e {
        Expr::ScalarSubquery(q) => collect_limit_params(q, out),
        Expr::Binary { left, right, .. } => {
            collect_expr_limit_params(left, out);
            collect_expr_limit_params(right, out);
        }
        Expr::Unary { expr, .. } => collect_expr_limit_params(expr, out),
        Expr::Func { args, .. } => args.iter().for_each(|a| collect_expr_limit_params(a, out)),
        Expr::Aggregate { arg: Some(a), .. } => collect_expr_limit_params(a, out),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_expr_limit_params(o, out);
            }
            for (w, t) in branches {
                collect_expr_limit_params(w, out);
                collect_expr_limit_params(t, out);
            }
            if let Some(el) = else_expr {
                collect_expr_limit_params(el, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_limit_params(expr, out);
            list.iter().for_each(|i| collect_expr_limit_params(i, out));
        }
        Expr::Like { expr, .. } => collect_expr_limit_params(expr, out),
        Expr::Window {
            func,
            partition_by,
            order_by,
        } => {
            if let WindowFunc::Agg { arg: Some(a), .. } = func {
                collect_expr_limit_params(a, out);
            }
            partition_by
                .iter()
                .for_each(|p| collect_expr_limit_params(p, out));
            order_by
                .iter()
                .for_each(|o| collect_expr_limit_params(&o.expr, out));
        }
        Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Aggregate { arg: None, .. }
        | Expr::Param { .. }
        | Expr::Star => {}
    }
}

/// Visit every expression node (recursively, including scalar subqueries
/// and nested SELECTs) of a query.
///
/// NOTE: [`collect_limit_params`] below walks the same shape to find
/// `LIMIT ?` slots (which are node-level, not expressions). A new `Expr`
/// or `TableRef` variant that nests a `Query` must be added to **both**
/// walks, or `explicit_param_count` will undercount LIMIT slots.
pub fn visit_query_exprs(query: &Query, f: &mut impl FnMut(&Expr)) {
    for item in &query.select {
        visit_expr(&item.expr, f);
    }
    if let Some(from) = &query.from {
        visit_table_ref_exprs(from, f);
    }
    if let Some(w) = &query.where_clause {
        visit_expr(w, f);
    }
    for g in &query.group_by {
        visit_expr(g, f);
    }
    if let Some(h) = &query.having {
        visit_expr(h, f);
    }
    for o in &query.order_by {
        visit_expr(&o.expr, f);
    }
    if let Some(u) = &query.union_all {
        visit_query_exprs(u, f);
    }
}

fn visit_table_ref_exprs(t: &TableRef, f: &mut impl FnMut(&Expr)) {
    match t {
        TableRef::Named { .. } => {}
        TableRef::Tvf { input, .. } => visit_table_ref_exprs(input, f),
        TableRef::Subquery { query, .. } => visit_query_exprs(query, f),
        TableRef::Join {
            left, right, on, ..
        } => {
            visit_table_ref_exprs(left, f);
            visit_table_ref_exprs(right, f);
            if let Some(on) = on {
                visit_expr(on, f);
            }
        }
    }
}

fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Binary { left, right, .. } => {
            visit_expr(left, f);
            visit_expr(right, f);
        }
        Expr::Unary { expr, .. } => visit_expr(expr, f),
        Expr::Func { args, .. } => args.iter().for_each(|a| visit_expr(a, f)),
        Expr::Aggregate { arg: Some(a), .. } => visit_expr(a, f),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                visit_expr(o, f);
            }
            for (w, t) in branches {
                visit_expr(w, f);
                visit_expr(t, f);
            }
            if let Some(el) = else_expr {
                visit_expr(el, f);
            }
        }
        Expr::InList { expr, list, .. } => {
            visit_expr(expr, f);
            list.iter().for_each(|i| visit_expr(i, f));
        }
        Expr::Like { expr, .. } => visit_expr(expr, f),
        Expr::Window {
            func,
            partition_by,
            order_by,
        } => {
            if let WindowFunc::Agg { arg: Some(a), .. } = func {
                visit_expr(a, f);
            }
            partition_by.iter().for_each(|p| visit_expr(p, f));
            order_by.iter().for_each(|o| visit_expr(&o.expr, f));
        }
        Expr::ScalarSubquery(q) => visit_query_exprs(q, f),
        Expr::Column { .. }
        | Expr::Literal(_)
        | Expr::Aggregate { arg: None, .. }
        | Expr::Param { .. }
        | Expr::Star => {}
    }
}

/// Replace every inline number/string literal with a parameter slot,
/// assigning slots from `first_idx` upward in occurrence order. Each root
/// expression is constant-folded first. Returns the rewritten query and
/// the extracted literals in slot order: slot `first_idx + i` must be
/// bound to `extracted[i]` at run time.
pub fn parameterize_literals(query: Query, first_idx: usize) -> (Query, Vec<Literal>) {
    let mut p = Parameterizer {
        first_idx,
        extracted: Vec::new(),
    };
    let q = p.rewrite_query(query, true);
    (q, p.extracted)
}

struct Parameterizer {
    first_idx: usize,
    extracted: Vec<Literal>,
}

impl Parameterizer {
    fn slot_for(&mut self, lit: Literal) -> Expr {
        self.extracted.push(lit);
        Expr::Param {
            idx: self.first_idx + self.extracted.len() - 1,
        }
    }

    /// Fold a root expression, then extract its literals. Folding first
    /// keeps the PR-1 optimizations alive (`x > 1 + 2` normalizes like
    /// `x > 3`; `1 < 2` collapses to `TRUE`, which stays inline and lets
    /// the optimizer drop the filter).
    fn rewrite_root(&mut self, e: Expr) -> Expr {
        self.rewrite_expr(fold_expr(e))
    }

    /// Fold a root, then extract its literals while substituting any
    /// subexpression equal to a GROUP BY key with the key's already
    /// rewritten form — HAVING residues and ORDER BY keys must keep
    /// matching the key (same parameter slots) after extraction, or the
    /// planner can no longer resolve them against the aggregate output.
    fn rewrite_keyed(&mut self, e: Expr, folded_keys: &[Expr], rewritten_keys: &[Expr]) -> Expr {
        let folded = fold_expr(e);
        self.substitute_or_rewrite(folded, folded_keys, rewritten_keys)
    }

    fn substitute_or_rewrite(
        &mut self,
        e: Expr,
        folded_keys: &[Expr],
        rewritten_keys: &[Expr],
    ) -> Expr {
        if let Some(pos) = folded_keys.iter().position(|k| *k == e) {
            return rewritten_keys[pos].clone();
        }
        match e {
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.substitute_or_rewrite(*left, folded_keys, rewritten_keys)),
                right: Box::new(self.substitute_or_rewrite(*right, folded_keys, rewritten_keys)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(self.substitute_or_rewrite(*expr, folded_keys, rewritten_keys)),
            },
            Expr::Func { name, args } => Expr::Func {
                name,
                args: args
                    .into_iter()
                    .map(|a| self.substitute_or_rewrite(a, folded_keys, rewritten_keys))
                    .collect(),
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: arg
                    .map(|a| Box::new(self.substitute_or_rewrite(*a, folded_keys, rewritten_keys))),
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand
                    .map(|o| Box::new(self.substitute_or_rewrite(*o, folded_keys, rewritten_keys))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| {
                        (
                            self.substitute_or_rewrite(w, folded_keys, rewritten_keys),
                            self.substitute_or_rewrite(t, folded_keys, rewritten_keys),
                        )
                    })
                    .collect(),
                else_expr: else_expr.map(|el| {
                    Box::new(self.substitute_or_rewrite(*el, folded_keys, rewritten_keys))
                }),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.substitute_or_rewrite(*expr, folded_keys, rewritten_keys)),
                list: list
                    .into_iter()
                    .map(|i| self.substitute_or_rewrite(i, folded_keys, rewritten_keys))
                    .collect(),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.substitute_or_rewrite(*expr, folded_keys, rewritten_keys)),
                pattern,
                negated,
            },
            // Everything else — literals, columns, params, windows,
            // scalar subqueries (their own scope) — takes the plain
            // extraction path.
            other => self.rewrite_expr(other),
        }
    }

    /// `preserve_names` is set wherever the select list's output names
    /// are observable — the top-level result set and derived tables
    /// (whose names flow out through `SELECT *`). Scalar subqueries are
    /// consumed positionally (1×1), so their items skip the aliasing and
    /// keep full literal-invariant sharing.
    fn rewrite_query(&mut self, q: Query, preserve_names: bool) -> Query {
        // GROUP BY keys rewrite first: a select item that textually
        // matches a key must keep matching after extraction (the planner
        // requires non-aggregate select items to appear in GROUP BY), so
        // matching items reuse the key's rewritten expression — and
        // therefore its parameter slots — instead of extracting fresh ones.
        let folded_keys: Vec<Expr> = q.group_by.into_iter().map(fold_expr).collect();
        let rewritten_keys: Vec<Expr> = folded_keys
            .iter()
            .map(|g| self.rewrite_expr(g.clone()))
            .collect();
        Query {
            distinct: q.distinct,
            select: q
                .select
                .into_iter()
                .map(|i| {
                    // Result columns are named after the select item, and
                    // `$n` must not leak into those names (`SELECT 5` and
                    // `SELECT 7` would both return a column called `$1`).
                    // An unaliased item that loses literals to extraction
                    // keeps its pre-rewrite text as an explicit alias; the
                    // alias carries the literal into the normalized text,
                    // so such statements simply don't share a cache entry.
                    let folded = fold_expr(i.expr);
                    if let Some(pos) = folded_keys.iter().position(|k| *k == folded) {
                        let expr = rewritten_keys[pos].clone();
                        let alias = i.alias.or_else(|| {
                            (preserve_names && expr != folded).then(|| folded.display_name())
                        });
                        return SelectItem { expr, alias };
                    }
                    let before = self.extracted.len();
                    let expr = self.rewrite_expr(folded.clone());
                    let alias = i.alias.or_else(|| {
                        (preserve_names && self.extracted.len() > before)
                            .then(|| folded.display_name())
                    });
                    SelectItem { expr, alias }
                })
                .collect(),
            from: q.from.map(|f| self.rewrite_table_ref(f)),
            where_clause: q.where_clause.map(|w| self.rewrite_root(w)),
            having: q
                .having
                .map(|h| self.rewrite_keyed(h, &folded_keys, &rewritten_keys)),
            order_by: q
                .order_by
                .into_iter()
                .map(|o| OrderItem {
                    expr: self.rewrite_keyed(o.expr, &folded_keys, &rewritten_keys),
                    desc: o.desc,
                })
                .collect(),
            group_by: rewritten_keys,
            limit: q.limit,
            union_all: q
                .union_all
                .map(|u| Box::new(self.rewrite_query(*u, preserve_names))),
        }
    }

    fn rewrite_table_ref(&mut self, t: TableRef) -> TableRef {
        match t {
            TableRef::Named { .. } => t,
            TableRef::Tvf { name, input, alias } => TableRef::Tvf {
                name,
                input: Box::new(self.rewrite_table_ref(*input)),
                alias,
            },
            // Derived-table names are observable (`SELECT *` re-exports
            // them), so name preservation applies inside.
            TableRef::Subquery { query, alias } => TableRef::Subquery {
                query: Box::new(self.rewrite_query(*query, true)),
                alias,
            },
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => TableRef::Join {
                left: Box::new(self.rewrite_table_ref(*left)),
                right: Box::new(self.rewrite_table_ref(*right)),
                kind,
                // ON clauses stay literal-free in the supported dialect
                // (conjunctions of column equalities); leave them alone.
                on,
            },
        }
    }

    fn rewrite_expr(&mut self, e: Expr) -> Expr {
        match e {
            Expr::Literal(Literal::Null) | Expr::Literal(Literal::Bool(_)) => e,
            Expr::Literal(lit) => self.slot_for(lit),
            Expr::Binary { op, left, right } => Expr::Binary {
                op,
                left: Box::new(self.rewrite_expr(*left)),
                right: Box::new(self.rewrite_expr(*right)),
            },
            Expr::Unary { op, expr } => Expr::Unary {
                op,
                expr: Box::new(self.rewrite_expr(*expr)),
            },
            Expr::Func { name, args } => Expr::Func {
                name,
                args: args.into_iter().map(|a| self.rewrite_expr(a)).collect(),
            },
            Expr::Aggregate { func, arg } => Expr::Aggregate {
                func,
                arg: arg.map(|a| Box::new(self.rewrite_expr(*a))),
            },
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => Expr::Case {
                operand: operand.map(|o| Box::new(self.rewrite_expr(*o))),
                branches: branches
                    .into_iter()
                    .map(|(w, t)| (self.rewrite_expr(w), self.rewrite_expr(t)))
                    .collect(),
                else_expr: else_expr.map(|el| Box::new(self.rewrite_expr(*el))),
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(self.rewrite_expr(*expr)),
                list: list.into_iter().map(|i| self.rewrite_expr(i)).collect(),
                negated,
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(self.rewrite_expr(*expr)),
                // LIKE patterns are structural: the dictionary fast path
                // evaluates them against the dict once, so they stay inline.
                pattern,
                negated,
            },
            Expr::Window {
                func,
                partition_by,
                order_by,
            } => Expr::Window {
                func: match func {
                    WindowFunc::Agg { func, arg } => WindowFunc::Agg {
                        func,
                        arg: arg.map(|a| Box::new(self.rewrite_expr(*a))),
                    },
                    other => other,
                },
                partition_by: partition_by
                    .into_iter()
                    .map(|p| self.rewrite_expr(p))
                    .collect(),
                order_by: order_by
                    .into_iter()
                    .map(|o| OrderItem {
                        expr: self.rewrite_expr(o.expr),
                        desc: o.desc,
                    })
                    .collect(),
            },
            // Scalar-subquery output names are never observed (the 1×1
            // result is consumed positionally): skip name preservation so
            // `(SELECT AVG(y) + 5 FROM u)` keeps sharing across literals.
            Expr::ScalarSubquery(q) => {
                Expr::ScalarSubquery(Box::new(self.rewrite_query(*q, false)))
            }
            Expr::Column { .. } | Expr::Param { .. } | Expr::Star => e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn normalize(sql: &str) -> (String, Vec<Literal>) {
        let q = parse(sql).unwrap();
        let explicit = explicit_param_count(&q);
        let (q, lits) = parameterize_literals(q, explicit);
        (format!("{q}"), lits)
    }

    #[test]
    fn literal_texts_normalize_identically() {
        let (a, la) = normalize("SELECT x FROM t WHERE x > 1.5 AND tag = 'a'");
        let (b, lb) = normalize("SELECT x FROM t WHERE x > 99 AND tag = 'zz'");
        assert_eq!(a, b, "texts differing only in literals share a shape");
        assert_eq!(la, vec![Literal::Number(1.5), Literal::String("a".into())]);
        assert_eq!(
            lb,
            vec![Literal::Number(99.0), Literal::String("zz".into())]
        );
    }

    #[test]
    fn explicit_params_keep_their_slots() {
        let q = parse("SELECT x FROM t WHERE x > ? AND y < 3").unwrap();
        assert_eq!(explicit_param_count(&q), 1);
        let (q, lits) = parameterize_literals(q, 1);
        assert_eq!(
            format!("{q}"),
            "SELECT x FROM t WHERE ((x > $1) AND (y < $2))"
        );
        assert_eq!(lits, vec![Literal::Number(3.0)]);
    }

    #[test]
    fn slots_are_per_occurrence_never_value_deduplicated() {
        // Coinciding literal values must not change the normalized shape —
        // otherwise the cache key would depend on the values themselves.
        let (a, la) = normalize("SELECT x FROM t WHERE x > 1 AND y < 1");
        let (b, lb) = normalize("SELECT x FROM t WHERE x > 1 AND y < 2");
        assert_eq!(a, b, "coinciding values must normalize like distinct ones");
        assert_eq!(la, vec![Literal::Number(1.0), Literal::Number(1.0)]);
        assert_eq!(lb, vec![Literal::Number(1.0), Literal::Number(2.0)]);
    }

    #[test]
    fn roots_fold_before_extraction() {
        // Arithmetic over literals folds, so equivalent spellings share a
        // normalized shape and a single slot.
        let (a, la) = normalize("SELECT x FROM t WHERE x > 1 + 2");
        let (b, lb) = normalize("SELECT x FROM t WHERE x > 3");
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert_eq!(la, vec![Literal::Number(3.0)]);
        // Fully constant predicates collapse to an inline boolean — no
        // slot — so the optimizer can still drop the filter.
        let (text, lits) = normalize("SELECT x FROM t WHERE 1 < 2");
        assert!(text.contains("WHERE TRUE"), "{text}");
        assert!(lits.is_empty(), "{lits:?}");
    }

    #[test]
    fn select_items_keep_display_names_through_extraction() {
        // Unaliased select items must not surface `$n` as a column name:
        // extraction adds the pre-rewrite text as an alias. Explicit
        // aliases are untouched.
        let (text, lits) = normalize("SELECT 5, price * 2, qty * 3 AS d FROM t");
        assert!(text.contains("$1 AS 5"), "{text}");
        assert!(text.contains("(price * $2) AS (price * 2)"), "{text}");
        assert!(text.contains("(qty * $3) AS d"), "{text}");
        assert_eq!(lits.len(), 3);
        // Literal-free items stay unaliased.
        let (text, _) = normalize("SELECT price FROM t WHERE qty > 4");
        assert!(text.contains("SELECT price FROM"), "{text}");
    }

    #[test]
    fn nulls_bools_and_patterns_stay_inline() {
        let (text, lits) = normalize("SELECT x FROM t WHERE name LIKE 'a%' AND x <> 2");
        assert!(text.contains("LIKE 'a%'"), "{text}");
        assert_eq!(lits, vec![Literal::Number(2.0)]);
        let q = parse("SELECT CASE WHEN x > 0 THEN NULL ELSE 1 END FROM t").unwrap();
        let (q, lits) = parameterize_literals(q, 0);
        assert!(format!("{q}").contains("NULL"), "{q}");
        assert_eq!(lits, vec![Literal::Number(0.0), Literal::Number(1.0)]);
        let (text, lits) = normalize("SELECT x FROM t WHERE flag = TRUE");
        assert!(text.contains("TRUE"), "{text}");
        assert!(lits.is_empty());
    }

    #[test]
    fn subqueries_and_unions_are_rewritten() {
        let (a, la) = normalize(
            "SELECT x FROM t WHERE x > (SELECT AVG(y) + 5 FROM u) \
             UNION ALL SELECT z FROM v WHERE z = 7",
        );
        let (b, lb) = normalize(
            "SELECT x FROM t WHERE x > (SELECT AVG(y) + 50 FROM u) \
             UNION ALL SELECT z FROM v WHERE z = 70",
        );
        assert_eq!(a, b);
        assert_eq!(la, vec![Literal::Number(5.0), Literal::Number(7.0)]);
        assert_eq!(lb, vec![Literal::Number(50.0), Literal::Number(70.0)]);
    }

    #[test]
    fn unused_explicit_indices_still_count() {
        let q = parse("SELECT x FROM t WHERE x > $3").unwrap();
        assert_eq!(explicit_param_count(&q), 3);
    }
}
