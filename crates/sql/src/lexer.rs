//! SQL tokenizer.

use crate::SqlError;

/// A lexical token. Keywords are case-insensitive and surfaced as
/// upper-cased [`Token::Keyword`]s; everything else identifier-like is an
/// [`Token::Ident`] preserving its original spelling.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Keyword(String),
    Ident(String),
    Number(f64),
    Str(String),
    Symbol(Sym),
    /// Statement parameter: `?` (positional, `None`) or `$n` (1-based
    /// explicit index, `Some(n)`, always ≥ 1).
    Param(Option<usize>),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

const KEYWORDS: &[&str] = &[
    "SELECT",
    "FROM",
    "WHERE",
    "GROUP",
    "BY",
    "HAVING",
    "ORDER",
    "LIMIT",
    "AS",
    "AND",
    "OR",
    "NOT",
    "ASC",
    "DESC",
    "JOIN",
    "INNER",
    "LEFT",
    "ON",
    "COUNT",
    "SUM",
    "AVG",
    "MIN",
    "MAX",
    "TRUE",
    "FALSE",
    "NULL",
    "BETWEEN",
    "IN",
    "DISTINCT",
    "CASE",
    "WHEN",
    "THEN",
    "ELSE",
    "END",
    "LIKE",
    "UNION",
    "ALL",
    "VARIANCE",
    "STDDEV",
    "OVER",
    "PARTITION",
];

/// Tokenize SQL text.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '.' if i + 1 >= chars.len() || !chars[i + 1].is_ascii_digit() => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            '+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            '-' => {
                // Line comment `--`.
                if chars.get(i + 1) == Some(&'-') {
                    while i < chars.len() && chars[i] != '\n' {
                        i += 1;
                    }
                } else {
                    tokens.push(Token::Symbol(Sym::Minus));
                    i += 1;
                }
            }
            '/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            '%' => {
                tokens.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            '?' => {
                tokens.push(Token::Param(None));
                i += 1;
            }
            '$' => {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                if j == start {
                    return Err(SqlError::new("expected parameter number after '$'"));
                }
                let text: String = chars[start..j].iter().collect();
                let n = text
                    .parse::<usize>()
                    .map_err(|_| SqlError::new(format!("bad parameter index '${text}'")))?;
                if n == 0 {
                    return Err(SqlError::new(
                        "parameter indices are 1-based; '$0' is invalid",
                    ));
                }
                tokens.push(Token::Param(Some(n)));
                i = j;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                tokens.push(Token::Symbol(Sym::NotEq));
                i += 2;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol(Sym::LtEq));
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Symbol(Sym::NotEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Symbol(Sym::GtEq));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        Some(&ch) if ch == quote => {
                            // Doubled quote = escaped quote.
                            if chars.get(i + 1) == Some(&quote) {
                                s.push(quote);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::new(format!(
                                "unterminated string literal starting with {quote}"
                            )))
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && matches!(chars.get(i - 1), Some('e') | Some('E'))))
                {
                    i += 1;
                }
                let text: String = chars[start..i].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| SqlError::new(format!("bad numeric literal '{text}'")))?;
                tokens.push(Token::Number(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word));
                }
            }
            other => {
                return Err(SqlError::new(format!("unexpected character '{other}'")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_case_insensitive() {
        let t = tokenize("select FROM Where").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Keyword("SELECT".into()),
                Token::Keyword("FROM".into()),
                Token::Keyword("WHERE".into()),
            ]
        );
    }

    #[test]
    fn identifiers_preserve_case() {
        let t = tokenize("Digit MNIST_Grid").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("Digit".into()),
                Token::Ident("MNIST_Grid".into())
            ]
        );
    }

    #[test]
    fn numbers_and_strings() {
        let t = tokenize("0.80 42 1e-3 'receipt' \"2022:08:10\"").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Number(0.80),
                Token::Number(42.0),
                Token::Number(1e-3),
                Token::Str("receipt".into()),
                Token::Str("2022:08:10".into()),
            ]
        );
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn operators() {
        let t = tokenize("a >= 1 <> 2 != 3 <= 4").unwrap();
        let syms: Vec<&Token> = t.iter().collect();
        assert!(matches!(syms[1], Token::Symbol(Sym::GtEq)));
        assert!(matches!(syms[3], Token::Symbol(Sym::NotEq)));
        assert!(matches!(syms[5], Token::Symbol(Sym::NotEq)));
        assert!(matches!(syms[7], Token::Symbol(Sym::LtEq)));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT -- everything\n1").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("#").is_err());
    }

    #[test]
    fn parameters_tokenize() {
        let t = tokenize("x > ? AND y < $2").unwrap();
        assert!(t.contains(&Token::Param(None)));
        assert!(t.contains(&Token::Param(Some(2))));
        assert!(tokenize("$").is_err(), "bare '$' is invalid");
        assert!(tokenize("$0").is_err(), "parameter indices are 1-based");
    }

    #[test]
    fn paper_query_tokenizes() {
        let q =
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size";
        let t = tokenize(q).unwrap();
        assert!(t.contains(&Token::Keyword("COUNT".into())));
        assert!(t.contains(&Token::Ident("parse_mnist_grid".into())));
    }
}
