//! # tdp-sql
//!
//! The SQL frontend of the platform: lexer, recursive-descent parser,
//! abstract syntax tree, logical plans and a rule-based optimizer.
//!
//! The paper delegates parsing/optimisation to external systems (Spark,
//! Substrait) and treats the planner as a pluggable box whose output is
//! compiled to tensor programs. We implement that box natively: SQL text is
//! parsed into a [`ast::Query`], planned into a [`plan::LogicalPlan`], and
//! optimised by [`optimizer::optimize`]; `tdp-exec` lowers the result onto
//! tensor kernels.
//!
//! Supported surface: `SELECT` lists with expressions/aliases/`*`,
//! arithmetic and boolean predicates, scalar-UDF calls, table-valued
//! functions in `FROM` (the ML entry point: `FROM parse_mnist_grid(grid)`),
//! TVF projection (`SELECT extract_table(images) FROM …`), `WHERE`,
//! `GROUP BY` + `HAVING` with `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`,
//! `ORDER BY … [ASC|DESC]`, `LIMIT`, inner/left joins, and subqueries in
//! `FROM`.
//!
//! ```
//! let q = tdp_sql::parse("SELECT Digit, COUNT(*) FROM parse(g) GROUP BY Digit").unwrap();
//! assert_eq!(q.group_by.len(), 1);
//! ```

pub mod ast;
pub mod lexer;
pub mod optimizer;
pub mod param;
pub mod parser;
pub mod plan;

pub use ast::{
    AggFunc, BinOp, Expr, IndexMethod, JoinKind, Literal, OrderItem, Query, SelectItem, Statement,
    TableRef, UnOp,
};
pub use param::{explicit_param_count, parameterize_literals};
pub use parser::{parse, parse_statement};
pub use plan::{build_plan, LogicalPlan, PlannerContext};

/// Errors produced anywhere in the SQL frontend.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlError(pub String);

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error: {}", self.0)
    }
}

impl std::error::Error for SqlError {}

impl SqlError {
    pub fn new(msg: impl Into<String>) -> SqlError {
        SqlError(msg.into())
    }
}
