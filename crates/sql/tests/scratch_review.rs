use tdp_sql::{parse, parameterize_literals, explicit_param_count};

#[test]
fn group_by_expr_with_literal() {
    let q = parse("SELECT x + 1, COUNT(*) FROM t GROUP BY x + 1").unwrap();
    let n = explicit_param_count(&q);
    let (q, lits) = parameterize_literals(q, n);
    println!("normalized: {q}");
    println!("lits: {lits:?}");
    let item = &q.select[0].expr;
    let key = &q.group_by[0];
    assert!(q.group_by.contains(item), "select item {item} vs group key {key}");
}
