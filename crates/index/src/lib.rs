//! # tdp-index
//!
//! Vector indexing for the Tensor Data Platform. The paper's §5.1 closes
//! with *"We are currently integrating approximate indexing \[Milvus\] into
//! TDP for speeding up top-k queries"* — this crate is that feature:
//!
//! * [`FlatIndex`] — exact brute-force top-k over an embedding matrix,
//!   expressed as tensor kernels (one matmul + top-k selection). This is
//!   what an un-indexed `ORDER BY score DESC LIMIT k` query executes.
//! * [`IvfFlatIndex`] — the classic IVF-Flat approximate index: k-means
//!   partitions the vectors into `nlist` cells; a query probes only the
//!   `nprobe` nearest cells, trading recall for latency.
//! * [`Metric`] — inner-product, cosine and (negated) Euclidean scoring.
//! * [`recall_at_k`] — evaluation helper comparing an approximate result
//!   list against exact ground truth.
//!
//! ```
//! use tdp_index::{FlatIndex, IvfFlatIndex, IvfParams, Metric};
//! use tdp_tensor::{Rng64, Tensor};
//!
//! let mut rng = Rng64::new(7);
//! let data = Tensor::<f32>::randn(&[256, 16], 0.0, 1.0, &mut rng);
//! let exact = FlatIndex::build(data.clone(), Metric::Cosine);
//! let ivf = IvfFlatIndex::train(data, Metric::Cosine, IvfParams::new(16), &mut rng);
//!
//! let q = Tensor::<f32>::randn(&[16], 0.0, 1.0, &mut rng);
//! let truth = exact.search(&q, 10);
//! let approx = ivf.search(&q, 10, 4);
//! assert!(tdp_index::recall_at_k(&truth, &approx) >= 0.5);
//! ```

mod flat;
mod ivf;
mod kmeans;
mod metric;

pub use flat::FlatIndex;
pub use ivf::{IvfFlatIndex, IvfParams};
pub use kmeans::{kmeans, KMeansResult};
pub use metric::Metric;

/// One search hit: the row id of the vector and its score under the
/// index's metric (higher is better for every metric — L2 is negated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub id: usize,
    pub score: f32,
}

/// Fraction of the exact top-k ids that the approximate result recovered.
///
/// The conventional recall@k of the ANN literature: order is ignored,
/// only membership counts. Returns 1.0 for two empty lists.
pub fn recall_at_k(exact: &[Hit], approx: &[Hit]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let found = exact
        .iter()
        .filter(|e| approx.iter().any(|a| a.id == e.id))
        .count();
    found as f64 / exact.len() as f64
}

/// Keep the k best hits (descending score, ties broken by id for
/// determinism). Shared by the flat and IVF search paths.
///
/// Uses partial selection rather than a full sort: only the k best hits
/// are moved to the front (O(n) expected), then just that prefix is
/// sorted. For top-k over a large candidate set this is the dominant
/// non-kernel cost, and k is typically orders of magnitude below n.
pub(crate) fn top_k(mut hits: Vec<Hit>, k: usize) -> Vec<Hit> {
    let cmp = |a: &Hit, b: &Hit| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    };
    if k == 0 {
        return Vec::new();
    }
    if k < hits.len() {
        hits.select_nth_unstable_by(k - 1, cmp);
        hits.truncate(k);
    }
    hits.sort_by(cmp);
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recall_of_identical_lists_is_one() {
        let hits = vec![Hit { id: 1, score: 0.9 }, Hit { id: 2, score: 0.5 }];
        assert_eq!(recall_at_k(&hits, &hits), 1.0);
    }

    #[test]
    fn recall_counts_membership_not_order() {
        let exact = vec![Hit { id: 1, score: 0.9 }, Hit { id: 2, score: 0.5 }];
        let approx = vec![Hit { id: 2, score: 0.4 }, Hit { id: 3, score: 0.3 }];
        assert_eq!(recall_at_k(&exact, &approx), 0.5);
    }

    #[test]
    fn recall_of_empty_truth_is_one() {
        assert_eq!(recall_at_k(&[], &[Hit { id: 0, score: 1.0 }]), 1.0);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let hits = vec![
            Hit { id: 0, score: 0.1 },
            Hit { id: 1, score: 0.9 },
            Hit { id: 2, score: 0.5 },
        ];
        let top = top_k(hits, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].id, 1);
        assert_eq!(top[1].id, 2);
    }

    #[test]
    fn top_k_breaks_score_ties_by_id() {
        let hits = vec![Hit { id: 5, score: 0.5 }, Hit { id: 2, score: 0.5 }];
        let top = top_k(hits, 2);
        assert_eq!(top[0].id, 2);
        assert_eq!(top[1].id, 5);
    }
}
