//! IVF-Flat: inverted-file index with flat (uncompressed) residuals.
//!
//! The approximate index of Milvus/FAISS lineage the paper names as its
//! in-progress top-k accelerator. Build: k-means over the vectors gives
//! `nlist` cells; each vector lands in the inverted list of its nearest
//! centroid. Search: score the query against the centroids, probe the
//! `nprobe` best cells, and run exact scoring only inside those lists.

use tdp_tensor::{F32Tensor, Rng64, Tensor};

use crate::kmeans::kmeans;
use crate::metric::normalize_rows;
use crate::{top_k, Hit, Metric};

/// Build-time parameters for [`IvfFlatIndex`].
#[derive(Debug, Clone, Copy)]
pub struct IvfParams {
    /// Number of k-means cells. Rule of thumb: `~sqrt(n)`.
    pub nlist: usize,
    /// Lloyd iterations for the coarse quantizer.
    pub train_iters: usize,
}

impl IvfParams {
    pub fn new(nlist: usize) -> IvfParams {
        IvfParams {
            nlist,
            train_iters: 20,
        }
    }

    pub fn train_iters(mut self, iters: usize) -> IvfParams {
        self.train_iters = iters;
        self
    }
}

/// The trained index. Immutable after construction (TDP is an analytical
/// engine; re-register + re-train to refresh).
#[derive(Debug, Clone)]
pub struct IvfFlatIndex {
    metric: Metric,
    /// `[nlist, d]` coarse centroids.
    centroids: F32Tensor,
    /// Per-cell row ids into the original data.
    lists: Vec<Vec<u32>>,
    /// Per-cell `[len, d]` vector slabs (normalised already for cosine).
    slabs: Vec<F32Tensor>,
    dim: usize,
    len: usize,
}

impl IvfFlatIndex {
    /// Train the coarse quantizer and build the inverted lists.
    pub fn train(
        data: F32Tensor,
        metric: Metric,
        params: IvfParams,
        rng: &mut Rng64,
    ) -> IvfFlatIndex {
        assert_eq!(data.ndim(), 2, "IvfFlatIndex expects [n, d] data");
        let n = data.shape()[0];
        let d = data.shape()[1];
        let nlist = params.nlist.clamp(1, n.max(1));

        let work = if metric.wants_normalized() {
            normalize_rows(&data)
        } else {
            data
        };
        let km = kmeans(&work, nlist, params.train_iters, Metric::L2, rng);

        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (row, &cell) in km.assignments.iter().enumerate() {
            lists[cell].push(row as u32);
        }
        let rows = work.data();
        let slabs = lists
            .iter()
            .map(|ids| {
                let mut buf = Vec::with_capacity(ids.len() * d);
                for &id in ids {
                    let id = id as usize;
                    buf.extend_from_slice(&rows[id * d..(id + 1) * d]);
                }
                Tensor::from_vec(buf, &[ids.len(), d])
            })
            .collect();

        IvfFlatIndex {
            metric,
            centroids: km.centroids,
            lists,
            slabs,
            dim: d,
            len: n,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Cell sizes — exposed for balance diagnostics and tests.
    pub fn list_sizes(&self) -> Vec<usize> {
        self.lists.iter().map(Vec::len).collect()
    }

    /// Approximate top-k probing the `nprobe` most promising cells.
    /// `nprobe >= nlist` degenerates to exact search.
    pub fn search(&self, query: &F32Tensor, k: usize, nprobe: usize) -> Vec<Hit> {
        assert_eq!(query.numel(), self.dim, "query dimensionality mismatch");
        let nprobe = nprobe.clamp(1, self.nlist());

        // The query is normalised once here for cosine; the slabs already
        // hold normalised vectors, so inner product below is cosine.
        let q = if self.metric.wants_normalized() {
            crate::metric::normalize_vec(query)
        } else {
            query.clone()
        };

        // Rank cells by centroid distance (L2 on the same space k-means ran
        // in — matching the build-side assignment rule).
        let cell_scores = Metric::L2.scores(&self.centroids, &q);
        let mut order: Vec<usize> = (0..self.nlist()).collect();
        order.sort_by(|&a, &b| {
            cell_scores.data()[b]
                .partial_cmp(&cell_scores.data()[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let scan_metric = match self.metric {
            Metric::Cosine => Metric::InnerProduct, // slabs pre-normalised
            m => m,
        };
        let mut hits = Vec::new();
        for &cell in order.iter().take(nprobe) {
            if self.lists[cell].is_empty() {
                continue;
            }
            let scores = scan_metric.scores(&self.slabs[cell], &q);
            hits.extend(
                scores
                    .data()
                    .iter()
                    .zip(&self.lists[cell])
                    .map(|(&score, &id)| Hit {
                        id: id as usize,
                        score,
                    }),
            );
        }
        top_k(hits, k)
    }

    /// Batch search: top-k per row of an `[m, d]` query matrix, each
    /// probing `nprobe` cells.
    pub fn search_batch(&self, queries: &F32Tensor, k: usize, nprobe: usize) -> Vec<Vec<Hit>> {
        assert_eq!(queries.ndim(), 2, "queries must be [m, d]");
        let d = queries.shape()[1];
        (0..queries.shape()[0])
            .map(|i| {
                let q = Tensor::from_vec(queries.data()[i * d..(i + 1) * d].to_vec(), &[d]);
                self.search(&q, k, nprobe)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{recall_at_k, FlatIndex};

    fn clustered_data(rng: &mut Rng64) -> F32Tensor {
        // 8 clusters of 32 points in 8-d.
        let mut v = Vec::new();
        for c in 0..8 {
            for _ in 0..32 {
                for j in 0..8 {
                    let center = if j == c { 5.0 } else { 0.0 };
                    v.push((center + rng.normal() * 0.2) as f32);
                }
            }
        }
        Tensor::from_vec(v, &[256, 8])
    }

    #[test]
    fn every_vector_lands_in_exactly_one_list() {
        let mut rng = Rng64::new(1);
        let data = clustered_data(&mut rng);
        let ivf = IvfFlatIndex::train(data, Metric::L2, IvfParams::new(8), &mut rng);
        let total: usize = ivf.list_sizes().iter().sum();
        assert_eq!(total, 256);
        let mut seen = vec![false; 256];
        for cell in 0..ivf.nlist() {
            for &id in &ivf.lists[cell] {
                assert!(!seen[id as usize], "row {id} in two lists");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn full_probe_matches_exact_search() {
        let mut rng = Rng64::new(2);
        let data = clustered_data(&mut rng);
        let flat = FlatIndex::build(data.clone(), Metric::L2);
        let ivf = IvfFlatIndex::train(data, Metric::L2, IvfParams::new(8), &mut rng);
        let q = F32Tensor::randn(&[8], 0.0, 2.0, &mut rng);
        let exact = flat.search(&q, 10);
        let approx = ivf.search(&q, 10, ivf.nlist());
        assert_eq!(
            exact.iter().map(|h| h.id).collect::<Vec<_>>(),
            approx.iter().map(|h| h.id).collect::<Vec<_>>()
        );
    }

    #[test]
    fn recall_improves_with_nprobe() {
        let mut rng = Rng64::new(3);
        let data = clustered_data(&mut rng);
        let flat = FlatIndex::build(data.clone(), Metric::Cosine);
        let ivf = IvfFlatIndex::train(data, Metric::Cosine, IvfParams::new(16), &mut rng);
        let mut r1_sum = 0.0;
        let mut r8_sum = 0.0;
        for i in 0..10 {
            let q = F32Tensor::randn(&[8], 0.0, 2.0, &mut Rng64::new(100 + i));
            let truth = flat.search(&q, 10);
            r1_sum += recall_at_k(&truth, &ivf.search(&q, 10, 1));
            r8_sum += recall_at_k(&truth, &ivf.search(&q, 10, 8));
        }
        assert!(
            r8_sum >= r1_sum,
            "recall@nprobe=8 {r8_sum} < recall@nprobe=1 {r1_sum}"
        );
        assert!(
            r8_sum / 10.0 > 0.8,
            "recall with 8 probes too low: {}",
            r8_sum / 10.0
        );
    }

    #[test]
    fn probing_one_cell_on_clustered_queries_finds_the_cluster() {
        let mut rng = Rng64::new(4);
        let data = clustered_data(&mut rng);
        let ivf = IvfFlatIndex::train(data, Metric::L2, IvfParams::new(8), &mut rng);
        // Query at a cluster center: the probed cell must contain the hits.
        let mut q = vec![0.0f32; 8];
        q[3] = 5.0;
        let hits = ivf.search(&Tensor::from_vec(q, &[8]), 5, 1);
        assert_eq!(hits.len(), 5);
        // All hits come from cluster 3's id range [96, 128).
        assert!(hits.iter().all(|h| (96..128).contains(&h.id)), "{hits:?}");
    }

    #[test]
    fn nlist_clamped_to_data_size() {
        let mut rng = Rng64::new(5);
        let data = F32Tensor::randn(&[4, 2], 0.0, 1.0, &mut rng);
        let ivf = IvfFlatIndex::train(data, Metric::L2, IvfParams::new(64), &mut rng);
        assert!(ivf.nlist() <= 4);
        let hits = ivf.search(&F32Tensor::zeros(&[2]), 2, 100);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn cosine_ivf_agrees_with_flat_on_direction() {
        let mut rng = Rng64::new(6);
        // Vectors of wildly different magnitude but two directions.
        let mut v = Vec::new();
        for i in 0..64 {
            let (x, y) = if i % 2 == 0 { (1.0, 0.05) } else { (0.05, 1.0) };
            let scale = 1.0 + (i as f32);
            v.push(x * scale);
            v.push(y * scale);
        }
        let data = Tensor::from_vec(v, &[64, 2]);
        let ivf = IvfFlatIndex::train(data, Metric::Cosine, IvfParams::new(2), &mut rng);
        let hits = ivf.search(&Tensor::from_vec(vec![1.0, 0.0], &[2]), 8, 2);
        assert!(
            hits.iter().all(|h| h.id % 2 == 0),
            "cosine ignored magnitude: {hits:?}"
        );
    }
}
