//! Similarity metrics for vector search.

use tdp_tensor::F32Tensor;

/// How query/vector similarity is scored. All metrics are oriented so that
/// **higher scores are better**, which keeps `ORDER BY score DESC LIMIT k`
/// semantics uniform across metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Raw dot product `x·q` — what CLIP-style logit scoring uses.
    InnerProduct,
    /// Dot product of L2-normalised vectors.
    Cosine,
    /// Negated squared Euclidean distance `-(‖x-q‖²)`.
    L2,
}

impl Metric {
    /// Score every row of `data` (`[n, d]`) against `query` (`[d]`),
    /// returning `[n]` scores. One matmul plus elementwise work — the
    /// same tensor-kernel lowering the rest of the platform uses.
    pub fn scores(self, data: &F32Tensor, query: &F32Tensor) -> F32Tensor {
        assert_eq!(data.ndim(), 2, "data must be [n, d]");
        assert_eq!(query.ndim(), 1, "query must be [d]");
        assert_eq!(data.shape()[1], query.numel(), "dimension mismatch");
        match self {
            Metric::InnerProduct => data.matvec(query),
            Metric::Cosine => {
                let dn = normalize_rows(data);
                let qn = normalize_vec(query);
                dn.matvec(&qn)
            }
            Metric::L2 => {
                // ‖x-q‖² = ‖x‖² − 2·x·q + ‖q‖²; score = −distance.
                let dots = data.matvec(query);
                let x2 = data.mul(data).sum_dim(1, false);
                let q2: f32 = query.data().iter().map(|v| v * v).sum();
                x2.sub(&dots.mul_scalar(2.0)).add_scalar(q2).neg()
            }
        }
    }

    /// Whether the metric scores through normalised vectors; IVF stores
    /// normalised copies up front for such metrics.
    pub(crate) fn wants_normalized(self) -> bool {
        matches!(self, Metric::Cosine)
    }
}

/// L2-normalise each row of a `[n, d]` matrix. Zero rows are left as-is.
pub(crate) fn normalize_rows(m: &F32Tensor) -> F32Tensor {
    let norms = m.mul(m).sum_dim(1, true).sqrt();
    // Guard zero rows: dividing by max(norm, eps) leaves them ~zero.
    let safe = norms.maximum(&F32Tensor::full(norms.shape(), 1e-12));
    m.div(&safe)
}

/// L2-normalise a single vector.
pub(crate) fn normalize_vec(v: &F32Tensor) -> F32Tensor {
    let n = (v.data().iter().map(|x| (x * x) as f64).sum::<f64>()).sqrt() as f32;
    if n <= 1e-12 {
        v.clone()
    } else {
        v.div_scalar(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    fn data() -> F32Tensor {
        Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2])
    }

    #[test]
    fn inner_product_scores() {
        let s = Metric::InnerProduct.scores(&data(), &Tensor::from_vec(vec![2.0, 1.0], &[2]));
        assert_eq!(s.to_vec(), vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let q1 = Tensor::from_vec(vec![1.0, 1.0], &[2]);
        let q2 = Tensor::from_vec(vec![10.0, 10.0], &[2]);
        let s1 = Metric::Cosine.scores(&data(), &q1);
        let s2 = Metric::Cosine.scores(&data(), &q2);
        assert!(s1.max_abs_diff(&s2) < 1e-6);
        // The parallel vector scores 1.
        assert!((s1.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn l2_score_is_negated_distance() {
        let q = Tensor::from_vec(vec![1.0, 0.0], &[2]);
        let s = Metric::L2.scores(&data(), &q);
        assert!((s.data()[0] - 0.0).abs() < 1e-6); // identical vector
        assert!((s.data()[1] + 2.0).abs() < 1e-6); // (1,0) vs (0,1): d² = 2
        assert!((s.data()[2] + 1.0).abs() < 1e-6); // (1,0) vs (1,1): d² = 1
    }

    #[test]
    fn normalize_rows_handles_zero_rows() {
        let m = Tensor::from_vec(vec![0.0, 0.0, 3.0, 4.0], &[2, 2]);
        let n = normalize_rows(&m);
        assert_eq!(&n.data()[..2], &[0.0, 0.0]);
        assert!((n.data()[2] - 0.6).abs() < 1e-6);
        assert!((n.data()[3] - 0.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        Metric::InnerProduct.scores(&data(), &Tensor::from_vec(vec![1.0], &[1]));
    }
}
