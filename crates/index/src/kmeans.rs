//! Lloyd's k-means over tensor rows — the coarse quantizer of IVF.

use tdp_tensor::{F32Tensor, Rng64, Tensor};

use crate::metric::normalize_rows;
use crate::Metric;

/// Output of [`kmeans`]: centroids plus the final assignment.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// `[k, d]` centroid matrix.
    pub centroids: F32Tensor,
    /// Cluster id per input row, `[n]`.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of rows to their centroid (inertia) at
    /// convergence — useful for picking `nlist`.
    pub inertia: f64,
    /// Iterations actually run (≤ `max_iters`; stops early on a fixed
    /// point).
    pub iterations: usize,
}

/// Lloyd's algorithm with k-means++-style seeding (first centroid uniform,
/// subsequent centroids sampled proportionally to squared distance).
///
/// `metric` only affects preprocessing: for [`Metric::Cosine`] the rows are
/// L2-normalised first (spherical k-means); clustering itself is Euclidean,
/// which is the standard IVF construction.
pub fn kmeans(
    data: &F32Tensor,
    k: usize,
    max_iters: usize,
    metric: Metric,
    rng: &mut Rng64,
) -> KMeansResult {
    assert_eq!(data.ndim(), 2, "kmeans expects [n, d] data");
    let n = data.shape()[0];
    let d = data.shape()[1];
    assert!(k >= 1, "k must be at least 1");
    assert!(n >= k, "cannot build {k} clusters from {n} rows");

    let work = if metric.wants_normalized() {
        normalize_rows(data)
    } else {
        data.clone()
    };
    let rows = work.data();

    // --- k-means++ seeding -------------------------------------------------
    let mut centroids: Vec<f32> = Vec::with_capacity(k * d);
    let first = rng.below(n);
    centroids.extend_from_slice(&rows[first * d..(first + 1) * d]);
    let mut min_d2 = vec![f64::INFINITY; n];
    for c in 1..k {
        // Update min distance to the newest centroid.
        let newest = &centroids[(c - 1) * d..c * d];
        for (i, md) in min_d2.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for j in 0..d {
                let diff = (rows[i * d + j] - newest[j]) as f64;
                acc += diff * diff;
            }
            if acc < *md {
                *md = acc;
            }
        }
        let total: f64 = min_d2.iter().sum();
        let pick = if total <= 0.0 {
            rng.below(n)
        } else {
            let mut target = rng.uniform() * total;
            let mut chosen = n - 1;
            for (i, &w) in min_d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            chosen
        };
        centroids.extend_from_slice(&rows[pick * d..(pick + 1) * d]);
    }

    // --- Lloyd iterations ---------------------------------------------------
    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iters.max(1) {
        iterations = it + 1;
        // Assign step.
        let mut changed = false;
        for i in 0..n {
            let row = &rows[i * d..(i + 1) * d];
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let cent = &centroids[c * d..(c + 1) * d];
                let mut acc = 0.0f64;
                for j in 0..d {
                    let diff = (row[j] - cent[j]) as f64;
                    acc += diff * diff;
                }
                if acc < best_d {
                    best_d = acc;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        // Update step. Empty clusters keep their previous centroid.
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            let c = assignments[i];
            counts[c] += 1;
            for j in 0..d {
                sums[c * d + j] += rows[i * d + j] as f64;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for j in 0..d {
                    centroids[c * d + j] = (sums[c * d + j] / counts[c] as f64) as f32;
                }
            }
        }
    }

    let mut inertia = 0.0f64;
    for i in 0..n {
        let c = assignments[i];
        for j in 0..d {
            let diff = (rows[i * d + j] - centroids[c * d + j]) as f64;
            inertia += diff * diff;
        }
    }

    KMeansResult {
        centroids: Tensor::from_vec(centroids, &[k, d]),
        assignments,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs around (0,0) and (10,10).
    fn blobs(rng: &mut Rng64) -> F32Tensor {
        let mut v = Vec::new();
        for i in 0..40 {
            let cx = if i < 20 { 0.0 } else { 10.0 };
            v.push((cx + rng.normal() * 0.3) as f32);
            v.push((cx + rng.normal() * 0.3) as f32);
        }
        Tensor::from_vec(v, &[40, 2])
    }

    #[test]
    fn separates_two_blobs() {
        let mut rng = Rng64::new(3);
        let data = blobs(&mut rng);
        let r = kmeans(&data, 2, 20, Metric::L2, &mut rng);
        assert_eq!(r.centroids.shape(), &[2, 2]);
        // All first-blob points share a cluster; all second-blob points the other.
        let first = r.assignments[0];
        assert!(r.assignments[..20].iter().all(|&a| a == first));
        assert!(r.assignments[20..].iter().all(|&a| a != first));
        // Centroids land near the blob centers.
        let c = r.centroids.data();
        let near_zero = c.chunks(2).any(|p| p[0].abs() < 1.0 && p[1].abs() < 1.0);
        let near_ten = c.chunks(2).any(|p| (p[0] - 10.0).abs() < 1.0);
        assert!(near_zero && near_ten, "centroids {c:?}");
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let mut rng = Rng64::new(11);
        let data = F32Tensor::randn(&[100, 4], 0.0, 1.0, &mut rng);
        let r2 = kmeans(&data, 2, 25, Metric::L2, &mut rng.fork());
        let r8 = kmeans(&data, 8, 25, Metric::L2, &mut rng.fork());
        assert!(r8.inertia < r2.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let mut rng = Rng64::new(5);
        let data = F32Tensor::randn(&[6, 3], 0.0, 1.0, &mut rng);
        let r = kmeans(&data, 6, 30, Metric::L2, &mut rng);
        assert!(r.inertia < 1e-6, "inertia {}", r.inertia);
    }

    #[test]
    fn deterministic_under_same_seed() {
        let mut r1 = Rng64::new(42);
        let mut r2 = Rng64::new(42);
        let data = F32Tensor::randn(&[50, 3], 0.0, 1.0, &mut Rng64::new(1));
        let a = kmeans(&data, 4, 15, Metric::L2, &mut r1);
        let b = kmeans(&data, 4, 15, Metric::L2, &mut r2);
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids.to_vec(), b.centroids.to_vec());
    }

    #[test]
    #[should_panic(expected = "cannot build")]
    fn more_clusters_than_rows_panics() {
        let data = F32Tensor::zeros(&[2, 2]);
        kmeans(&data, 3, 5, Metric::L2, &mut Rng64::new(0));
    }
}
