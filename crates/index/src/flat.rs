//! Exact brute-force search: the un-indexed baseline.

use tdp_tensor::F32Tensor;

use crate::{top_k, Hit, Metric};

/// An exact top-k index: scores every stored vector against the query with
/// one tensor kernel pass. This is precisely what the paper's multimodal
/// top-k query (`ORDER BY score DESC LIMIT 2`) executes without an index,
/// and it is the ground truth [`crate::IvfFlatIndex`] is measured against.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: F32Tensor,
    metric: Metric,
}

impl FlatIndex {
    /// Wrap an `[n, d]` embedding matrix.
    pub fn build(data: F32Tensor, metric: Metric) -> FlatIndex {
        assert_eq!(data.ndim(), 2, "FlatIndex expects [n, d] data");
        FlatIndex { data, metric }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.shape()[0]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.data.shape()[1]
    }

    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// Exact top-k: best `k` rows by metric score, descending.
    pub fn search(&self, query: &F32Tensor, k: usize) -> Vec<Hit> {
        let scores = self.metric.scores(&self.data, query);
        let hits = scores
            .data()
            .iter()
            .enumerate()
            .map(|(id, &score)| Hit { id, score })
            .collect();
        top_k(hits, k)
    }

    /// Scores for every stored vector (used by SQL execution when the full
    /// score column is projected rather than only the top-k rows).
    pub fn all_scores(&self, query: &F32Tensor) -> F32Tensor {
        self.metric.scores(&self.data, query)
    }

    /// Batch search: top-k per row of an `[m, d]` query matrix. The
    /// batched entry point SQL execution uses when a bound parameter
    /// carries multiple query vectors.
    pub fn search_batch(&self, queries: &F32Tensor, k: usize) -> Vec<Vec<Hit>> {
        assert_eq!(queries.ndim(), 2, "queries must be [m, d]");
        let d = queries.shape()[1];
        (0..queries.shape()[0])
            .map(|i| {
                let q =
                    tdp_tensor::Tensor::from_vec(queries.data()[i * d..(i + 1) * d].to_vec(), &[d]);
                self.search(&q, k)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::{Rng64, Tensor};

    fn index() -> FlatIndex {
        // Rows 0..4 along one axis with growing magnitude.
        let data = Tensor::from_vec(vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 0.0, 1.0], &[4, 2]);
        FlatIndex::build(data, Metric::InnerProduct)
    }

    #[test]
    fn exact_topk_orders_by_score() {
        let hits = index().search(&Tensor::from_vec(vec![1.0, 0.0], &[2]), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 2);
        assert_eq!(hits[0].score, 3.0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let hits = index().search(&Tensor::from_vec(vec![1.0, 0.0], &[2]), 10);
        assert_eq!(hits.len(), 4);
    }

    #[test]
    fn k_zero_returns_nothing() {
        let hits = index().search(&Tensor::from_vec(vec![1.0, 0.0], &[2]), 0);
        assert!(hits.is_empty());
    }

    #[test]
    fn l2_metric_prefers_nearest() {
        let data = Tensor::from_vec(vec![0.0, 0.0, 5.0, 5.0], &[2, 2]);
        let idx = FlatIndex::build(data, Metric::L2);
        let hits = idx.search(&Tensor::from_vec(vec![4.0, 4.0], &[2]), 1);
        assert_eq!(hits[0].id, 1);
    }

    #[test]
    fn all_scores_matches_search_order() {
        let mut rng = Rng64::new(9);
        let data = F32Tensor::randn(&[32, 8], 0.0, 1.0, &mut rng);
        let idx = FlatIndex::build(data, Metric::Cosine);
        let q = F32Tensor::randn(&[8], 0.0, 1.0, &mut rng);
        let scores = idx.all_scores(&q);
        let best = idx.search(&q, 1)[0];
        let argmax = scores
            .data()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(best.id, argmax);
    }
}
