//! Elementwise kernels: broadcast binary arithmetic, comparisons, unary maps.

use crate::element::{Element, Float, Num};
use crate::shape::{broadcast_shapes, Shape};
use crate::tensor::Tensor;

/// Core broadcast combinator: apply `f` elementwise over the broadcast of
/// `a` and `b`. Output element type is chosen by the closure.
pub fn broadcast_zip<A, B, O, F>(a: &Tensor<A>, b: &Tensor<B>, f: F) -> Tensor<O>
where
    A: Element,
    B: Element,
    O: Element,
    F: Fn(A, B) -> O + Sync,
{
    let device = a.device().combine(b.device());
    let out_dims = broadcast_shapes(a.shape(), b.shape()).unwrap_or_else(|| {
        panic!(
            "shapes {} and {} are not broadcastable",
            Shape::new(a.shape()),
            Shape::new(b.shape())
        )
    });

    // Fast path: identical shapes, no index arithmetic.
    if a.shape() == b.shape() {
        let ad = a.data();
        let bd = b.data();
        let mut out = vec![O::default(); ad.len()];
        device.fill_indexed(&mut out, |i| f(ad[i], bd[i]));
        return Tensor::from_vec(out, a.shape()).to(device);
    }

    // Fast path: right operand is a scalar (or 1-element).
    if b.numel() == 1 {
        let bv = b.at(0);
        let ad = a.data();
        let mut out = vec![O::default(); ad.len()];
        device.fill_indexed(&mut out, |i| f(ad[i], bv));
        return Tensor::from_vec(out, a.shape()).to(device);
    }
    if a.numel() == 1 {
        let av = a.at(0);
        let bd = b.data();
        let mut out = vec![O::default(); bd.len()];
        device.fill_indexed(&mut out, |i| f(av, bd[i]));
        return Tensor::from_vec(out, b.shape()).to(device);
    }

    // General case: compute per-output-dim effective strides for both sides.
    let out_shape = Shape::new(&out_dims);
    let out_strides = out_shape.strides();
    let eff = |t_dims: &[usize], t_strides: &[usize]| -> Vec<usize> {
        let pad = out_dims.len() - t_dims.len();
        (0..out_dims.len())
            .map(|d| {
                if d < pad || t_dims[d - pad] == 1 {
                    0
                } else {
                    t_strides[d - pad]
                }
            })
            .collect()
    };
    let ea = eff(a.shape(), &a.shape_obj().strides());
    let eb = eff(b.shape(), &b.shape_obj().strides());
    let ad = a.data();
    let bd = b.data();
    let mut out = vec![O::default(); out_shape.numel()];
    device.fill_indexed(&mut out, |flat| {
        let mut rem = flat;
        let mut ia = 0usize;
        let mut ib = 0usize;
        for d in 0..out_dims.len() {
            let i = rem / out_strides[d];
            rem %= out_strides[d];
            ia += i * ea[d];
            ib += i * eb[d];
        }
        f(ad[ia], bd[ib])
    });
    Tensor::from_vec(out, &out_dims).to(device)
}

impl<T: Num> Tensor<T> {
    pub fn add(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| a + b)
    }

    pub fn sub(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| a - b)
    }

    pub fn mul(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| a * b)
    }

    pub fn div(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| a / b)
    }

    /// Elementwise maximum with broadcasting.
    pub fn maximum(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| if a > b { a } else { b })
    }

    /// Elementwise minimum with broadcasting.
    pub fn minimum(&self, other: &Tensor<T>) -> Tensor<T> {
        broadcast_zip(self, other, |a, b| if a < b { a } else { b })
    }

    pub fn add_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x + v)
    }

    pub fn sub_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x - v)
    }

    pub fn mul_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x * v)
    }

    pub fn div_scalar(&self, v: T) -> Tensor<T> {
        self.map(move |x| x / v)
    }

    pub fn neg(&self) -> Tensor<T> {
        self.map(|x| -x)
    }

    /// In-place accumulate `other` (same shape) into `self`. Used by
    /// gradient accumulation and optimizers, where allocation churn matters.
    pub fn add_assign(&mut self, other: &Tensor<T>) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        let o = other.data().to_vec(); // detach in case buffers are shared
        for (d, s) in self.data_mut().iter_mut().zip(o) {
            *d += s;
        }
    }

    /// Clamp every element into `[lo, hi]`.
    pub fn clamp(&self, lo: T, hi: T) -> Tensor<T> {
        self.map(move |x| {
            if x < lo {
                lo
            } else if x > hi {
                hi
            } else {
                x
            }
        })
    }
}

// Comparison kernels produce boolean masks — the substrate of WHERE.
impl<T: Element> Tensor<T> {
    pub fn eq_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a == b)
    }

    pub fn ne_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a != b)
    }

    pub fn lt_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a < b)
    }

    pub fn le_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a <= b)
    }

    pub fn gt_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a > b)
    }

    pub fn ge_t(&self, other: &Tensor<T>) -> Tensor<bool> {
        broadcast_zip(self, other, |a, b| a >= b)
    }

    pub fn eq_scalar(&self, v: T) -> Tensor<bool> {
        self.map(move |x| x == v)
    }

    pub fn gt_scalar(&self, v: T) -> Tensor<bool> {
        self.map(move |x| x > v)
    }

    pub fn ge_scalar(&self, v: T) -> Tensor<bool> {
        self.map(move |x| x >= v)
    }

    pub fn lt_scalar(&self, v: T) -> Tensor<bool> {
        self.map(move |x| x < v)
    }

    pub fn le_scalar(&self, v: T) -> Tensor<bool> {
        self.map(move |x| x <= v)
    }
}

impl<T: Float> Tensor<T> {
    pub fn exp(&self) -> Tensor<T> {
        self.map(|x| x.exp())
    }

    pub fn ln(&self) -> Tensor<T> {
        self.map(|x| x.ln())
    }

    pub fn sqrt(&self) -> Tensor<T> {
        self.map(|x| x.sqrt())
    }

    pub fn abs(&self) -> Tensor<T> {
        self.map(|x| x.abs())
    }

    pub fn tanh_t(&self) -> Tensor<T> {
        self.map(|x| x.tanh())
    }

    pub fn powf_scalar(&self, e: T) -> Tensor<T> {
        self.map(move |x| x.powf(e))
    }

    /// Numerically-stable logistic function.
    pub fn sigmoid(&self) -> Tensor<T> {
        self.map(|x| {
            if x.to_f64() >= 0.0 {
                let z = (-x).exp();
                T::one() / (T::one() + z)
            } else {
                let z = x.exp();
                z / (T::one() + z)
            }
        })
    }

    pub fn relu(&self) -> Tensor<T> {
        self.map(|x| if x > T::zero() { x } else { T::zero() })
    }

    pub fn recip(&self) -> Tensor<T> {
        self.map(|x| T::one() / x)
    }

    /// Maximum absolute difference against another tensor of the same shape.
    /// Test helper for approximate comparisons.
    pub fn max_abs_diff(&self, other: &Tensor<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| (a - b).abs().to_f64())
            .fold(0.0, f64::max)
    }

    /// `true` when elementwise within `tol` of `other`.
    pub fn allclose(&self, other: &Tensor<T>, tol: f64) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

// Operator sugar on references: `&a + &b`, `&a * &b`, etc.
macro_rules! impl_binop {
    ($trait:ident, $method:ident, $kernel:ident) => {
        impl<'a, T: Num> std::ops::$trait<&'a Tensor<T>> for &'a Tensor<T> {
            type Output = Tensor<T>;
            fn $method(self, rhs: &'a Tensor<T>) -> Tensor<T> {
                self.$kernel(rhs)
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);
impl_binop!(Div, div, div);

impl<T: Num> std::ops::Neg for &Tensor<T> {
    type Output = Tensor<T>;
    fn neg(self) -> Tensor<T> {
        Tensor::neg(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn same_shape_arithmetic() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let b = t(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(a.add(&b).to_vec(), vec![11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).to_vec(), vec![9.0, 18.0, 27.0]);
        assert_eq!(a.mul(&b).to_vec(), vec![10.0, 40.0, 90.0]);
        assert_eq!(b.div(&a).to_vec(), vec![10.0, 10.0, 10.0]);
        assert_eq!((&a + &b).to_vec(), vec![11.0, 22.0, 33.0]);
        assert_eq!((-&a).to_vec(), vec![-1.0, -2.0, -3.0]);
    }

    #[test]
    fn scalar_broadcast() {
        let a = t(vec![1.0, 2.0], &[2]);
        let s = Tensor::scalar(10.0f32);
        assert_eq!(a.add(&s).to_vec(), vec![11.0, 12.0]);
        assert_eq!(s.sub(&a).to_vec(), vec![9.0, 8.0]);
        assert_eq!(a.mul_scalar(3.0).to_vec(), vec![3.0, 6.0]);
    }

    #[test]
    fn row_and_column_broadcast() {
        let m = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        let col = t(vec![100.0, 200.0], &[2, 1]);
        assert_eq!(
            m.add(&row).to_vec(),
            vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]
        );
        assert_eq!(
            m.add(&col).to_vec(),
            vec![101.0, 102.0, 103.0, 204.0, 205.0, 206.0]
        );
        // Outer broadcast: [2,1] vs [1,3] -> [2,3]
        let a = t(vec![1.0, 2.0], &[2, 1]);
        let b = t(vec![10.0, 20.0, 30.0], &[1, 3]);
        assert_eq!(a.mul(&b).to_vec(), vec![10.0, 20.0, 30.0, 20.0, 40.0, 60.0]);
    }

    #[test]
    #[should_panic(expected = "not broadcastable")]
    fn incompatible_shapes_panic() {
        t(vec![0.0; 6], &[2, 3]).add(&t(vec![0.0; 8], &[2, 4]));
    }

    #[test]
    fn comparisons_produce_masks() {
        let a = t(vec![1.0, 5.0, 3.0], &[3]);
        let b = t(vec![2.0, 5.0, 1.0], &[3]);
        assert_eq!(a.lt_t(&b).to_vec(), vec![true, false, false]);
        assert_eq!(a.eq_t(&b).to_vec(), vec![false, true, false]);
        assert_eq!(a.ge_t(&b).to_vec(), vec![false, true, true]);
        assert_eq!(a.gt_scalar(2.0).to_vec(), vec![false, true, true]);
        assert_eq!(a.le_scalar(3.0).to_vec(), vec![true, false, true]);
    }

    #[test]
    fn unary_float_kernels() {
        let a = t(vec![-1.0, 0.0, 2.0], &[3]);
        assert_eq!(a.relu().to_vec(), vec![0.0, 0.0, 2.0]);
        assert_eq!(a.abs().to_vec(), vec![1.0, 0.0, 2.0]);
        let s = a.sigmoid();
        assert!((s.at(1) - 0.5).abs() < 1e-6);
        assert!(s.at(0) < 0.5 && s.at(2) > 0.5);
        assert!(a.clamp(-0.5, 1.0).to_vec() == vec![-0.5, 0.0, 1.0]);
        let e = t(vec![0.0, 1.0], &[2]).exp();
        assert!((e.at(1) - std::f32::consts::E).abs() < 1e-5);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        let a = t(vec![-100.0, 100.0], &[2]).sigmoid();
        assert!(a.at(0) >= 0.0 && a.at(0) < 1e-20);
        assert!((a.at(1) - 1.0).abs() < 1e-6);
        assert!(a.all_finite());
    }

    #[test]
    fn min_max_elementwise() {
        let a = t(vec![1.0, 5.0], &[2]);
        let b = t(vec![3.0, 2.0], &[2]);
        assert_eq!(a.maximum(&b).to_vec(), vec![3.0, 5.0]);
        assert_eq!(a.minimum(&b).to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = t(vec![1.0, 2.0], &[2]);
        let b = a.clone(); // shares the buffer — COW must kick in
        a.add_assign(&b);
        assert_eq!(a.to_vec(), vec![2.0, 4.0]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0]);
    }

    #[test]
    fn device_propagates_through_ops() {
        let a = t(vec![1.0, 2.0], &[2]).to(Device::Accel(2));
        let b = t(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).device(), Device::Accel(2));
        assert_eq!(b.add(&a).device(), Device::Accel(2));
        assert_eq!(b.exp().device(), Device::Cpu);
    }

    #[test]
    fn large_parallel_kernel_matches_serial() {
        let n = 70_000;
        let v: Vec<f32> = (0..n).map(|i| (i % 97) as f32).collect();
        let cpu = t(v.clone(), &[n]);
        let acc = cpu.to(Device::Accel(4));
        let r1 = cpu.mul(&cpu).add_scalar(1.0);
        let r2 = acc.mul(&acc).add_scalar(1.0);
        assert_eq!(r1.to_vec(), r2.to_vec());
    }

    #[test]
    fn allclose_tolerance() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0 + 1e-7, 2.0], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-9));
    }
}
