//! Execution devices.
//!
//! The paper runs compiled queries unchanged on CPU or GPU by virtue of
//! PyTorch's device abstraction. We reproduce the *abstraction* (placement,
//! `.to(device)`, device-aware kernel dispatch) with a simulated accelerator:
//! [`Device::accel`] executes large kernels data-parallel across worker
//! threads, while [`Device::Cpu`] stays single-threaded. The relative shape
//! of CPU-vs-accelerator results in the Figure 2 experiment comes from this
//! parallelism, standing in for the V100 the authors used.

use std::thread;

/// Minimum number of scalar operations before a kernel is worth
/// parallelising on the simulated accelerator. Below this the thread spawn
/// overhead dominates.
pub const PAR_THRESHOLD: usize = 16 * 1024;

/// Where a tensor lives and where kernels operating on it execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Device {
    /// Single-threaded host execution.
    #[default]
    Cpu,
    /// Simulated accelerator with the given degree of data parallelism.
    Accel(usize),
}

impl Device {
    /// A simulated accelerator sized to the host's available parallelism.
    pub fn accel() -> Device {
        let n = thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Device::Accel(n.max(2))
    }

    /// Number of worker lanes used for kernels on this device.
    pub fn lanes(self) -> usize {
        match self {
            Device::Cpu => 1,
            Device::Accel(n) => n.max(1),
        }
    }

    /// Whether the device is the simulated accelerator.
    pub fn is_accel(self) -> bool {
        matches!(self, Device::Accel(_))
    }

    /// Device that results from combining operands placed on `self` and
    /// `other`. Mirrors PyTorch's rule of refusing silent cross-device
    /// compute — except we promote instead of erroring, because our devices
    /// share one address space; promotion keeps the API ergonomic while
    /// preserving placement semantics for the benchmarks.
    pub fn combine(self, other: Device) -> Device {
        match (self, other) {
            (Device::Accel(a), Device::Accel(b)) => Device::Accel(a.max(b)),
            (Device::Accel(a), _) | (_, Device::Accel(a)) => Device::Accel(a),
            _ => Device::Cpu,
        }
    }

    /// Run `f(chunk_index, range)` over `len` items, split across the
    /// device's lanes when profitable. `f` must be safe to run concurrently
    /// on disjoint ranges.
    pub fn for_each_chunk<F>(self, len: usize, f: F)
    where
        F: Fn(usize, std::ops::Range<usize>) + Sync,
    {
        let lanes = self.lanes();
        if lanes <= 1 || len < PAR_THRESHOLD {
            f(0, 0..len);
            return;
        }
        let chunk = len.div_ceil(lanes);
        thread::scope(|s| {
            for lane in 0..lanes {
                let start = lane * chunk;
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                let f = &f;
                s.spawn(move || f(lane, start..end));
            }
        });
    }

    /// Run `f(i)` for every index in `0..len`, always splitting across the
    /// device's lanes (no size threshold). For coarse-grained work — whole
    /// images, model invocations — where each item is expensive even though
    /// `len` is small.
    pub fn for_each_heavy<F>(self, len: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let lanes = self.lanes().min(len.max(1));
        if lanes <= 1 {
            for i in 0..len {
                f(i);
            }
            return;
        }
        let chunk = len.div_ceil(lanes);
        thread::scope(|s| {
            for lane in 0..lanes {
                let start = lane * chunk;
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                let f = &f;
                s.spawn(move || {
                    for i in start..end {
                        f(i);
                    }
                });
            }
        });
    }

    /// Fill `out` by evaluating `f(i)` for every index, in parallel on the
    /// accelerator.
    pub fn fill_indexed<T: Send, F>(self, out: &mut [T], f: F)
    where
        F: Fn(usize) -> T + Sync,
    {
        let lanes = self.lanes();
        let len = out.len();
        if lanes <= 1 || len < PAR_THRESHOLD {
            for (i, o) in out.iter_mut().enumerate() {
                *o = f(i);
            }
            return;
        }
        let chunk = len.div_ceil(lanes);
        thread::scope(|s| {
            for (lane, piece) in out.chunks_mut(chunk).enumerate() {
                let f = &f;
                let base = lane * chunk;
                s.spawn(move || {
                    for (j, o) in piece.iter_mut().enumerate() {
                        *o = f(base + j);
                    }
                });
            }
        });
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Cpu => write!(f, "cpu"),
            Device::Accel(n) => write!(f, "accel:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_and_flags() {
        assert_eq!(Device::Cpu.lanes(), 1);
        assert_eq!(Device::Accel(8).lanes(), 8);
        assert!(Device::accel().is_accel());
        assert!(!Device::Cpu.is_accel());
    }

    #[test]
    fn combine_promotes_to_accelerator() {
        assert_eq!(Device::Cpu.combine(Device::Cpu), Device::Cpu);
        assert_eq!(Device::Cpu.combine(Device::Accel(4)), Device::Accel(4));
        assert_eq!(Device::Accel(2).combine(Device::Accel(6)), Device::Accel(6));
    }

    #[test]
    fn fill_indexed_parallel_matches_serial() {
        let n = PAR_THRESHOLD * 2 + 17;
        let mut par = vec![0usize; n];
        let mut ser = vec![0usize; n];
        Device::Accel(4).fill_indexed(&mut par, |i| i * 3 + 1);
        Device::Cpu.fill_indexed(&mut ser, |i| i * 3 + 1);
        assert_eq!(par, ser);
    }

    #[test]
    fn for_each_chunk_covers_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = PAR_THRESHOLD + 3;
        let total = AtomicUsize::new(0);
        Device::Accel(3).for_each_chunk(n, |_, r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n);
    }

    #[test]
    fn display_format() {
        assert_eq!(Device::Cpu.to_string(), "cpu");
        assert_eq!(Device::Accel(4).to_string(), "accel:4");
    }
}
