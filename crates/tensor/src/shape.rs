//! Shapes, strides and broadcasting.
//!
//! Shapes are row-major. Broadcasting follows NumPy/PyTorch rules: shapes
//! are right-aligned, and each dimension pair must be equal or contain a 1.

/// The extents of a tensor. A scalar has an empty shape.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    pub fn new(dims: &[usize]) -> Shape {
        Shape(dims.to_vec())
    }

    pub fn ndim(&self) -> usize {
        self.0.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides (in elements).
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            s[i] = s[i + 1] * self.0[i + 1];
        }
        s
    }

    /// Flat offset of a multi-index. Panics if out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0usize;
        let mut stride = 1usize;
        for d in (0..self.0.len()).rev() {
            assert!(
                idx[d] < self.0[d],
                "index {} out of bounds for dim {} of size {}",
                idx[d],
                d,
                self.0[d]
            );
            off += idx[d] * stride;
            stride *= self.0[d];
        }
        off
    }

    /// Multi-index of a flat offset.
    pub fn unravel(&self, mut flat: usize) -> Vec<usize> {
        let mut idx = vec![0usize; self.0.len()];
        for d in (0..self.0.len()).rev() {
            let sz = self.0[d];
            idx[d] = flat % sz;
            flat /= sz;
        }
        idx
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Shape {
        Shape(d.to_vec())
    }
}

impl From<Vec<usize>> for Shape {
    fn from(d: Vec<usize>) -> Shape {
        Shape(d)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Broadcast two shapes together, or `None` if they are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let ndim = a.len().max(b.len());
    let mut out = vec![0usize; ndim];
    for i in 0..ndim {
        let da = if i < ndim - a.len() {
            1
        } else {
            a[i - (ndim - a.len())]
        };
        let db = if i < ndim - b.len() {
            1
        } else {
            b[i - (ndim - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Iterator over all multi-indices of a shape in row-major order.
pub struct IndexIter {
    shape: Vec<usize>,
    next: Option<Vec<usize>>,
}

impl IndexIter {
    pub fn new(shape: &[usize]) -> IndexIter {
        let next = if shape.contains(&0) {
            None
        } else {
            Some(vec![0usize; shape.len()])
        };
        IndexIter {
            shape: shape.to_vec(),
            next,
        }
    }
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        let cur = self.next.clone()?;
        // Advance odometer-style.
        let mut idx = cur.clone();
        let mut d = self.shape.len();
        loop {
            if d == 0 {
                self.next = None;
                break;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < self.shape[d] {
                self.next = Some(idx);
                break;
            }
            idx[d] = 0;
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::new(&[]).strides().is_empty());
    }

    #[test]
    fn offset_unravel_round_trip() {
        let s = Shape::new(&[3, 4, 5]);
        for flat in 0..s.numel() {
            let idx = s.unravel(flat);
            assert_eq!(s.offset(&idx), flat);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    fn broadcast_rules() {
        assert_eq!(broadcast_shapes(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shapes(&[4, 1], &[1, 5]), Some(vec![4, 5]));
        assert_eq!(broadcast_shapes(&[2], &[]), Some(vec![2]));
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 4]), None);
        assert_eq!(broadcast_shapes(&[1], &[7]), Some(vec![7]));
    }

    #[test]
    fn index_iter_enumerates_in_row_major_order() {
        let idxs: Vec<_> = IndexIter::new(&[2, 2]).collect();
        assert_eq!(idxs, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(IndexIter::new(&[0, 3]).count(), 0);
        assert_eq!(IndexIter::new(&[]).count(), 1); // one scalar index
    }
}
