//! Scalar element traits.
//!
//! Tensors are generic over their element type. Three capability levels are
//! distinguished: [`Element`] (anything storable), [`Num`] (arithmetic), and
//! [`Float`] (transcendental functions needed by ML kernels).

use std::fmt::Debug;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Any scalar that can live inside a [`crate::Tensor`].
pub trait Element:
    Copy + Clone + Send + Sync + Debug + Default + PartialEq + PartialOrd + 'static
{
    /// Human-readable name of the element type ("f32", "i64", ...).
    const DTYPE: &'static str;
}

/// Numeric elements supporting ring arithmetic and f64 round-trips.
pub trait Num:
    Element
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + AddAssign
    + Neg<Output = Self>
{
    fn zero() -> Self;
    fn one() -> Self;
    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    /// Smallest representable value (used as the identity of `max` folds).
    fn min_value() -> Self;
    /// Largest representable value (used as the identity of `min` folds).
    fn max_value() -> Self;
}

/// Floating-point elements with the transcendental kernel surface.
pub trait Float: Num {
    fn exp(self) -> Self;
    fn ln(self) -> Self;
    fn sqrt(self) -> Self;
    fn powf(self, e: Self) -> Self;
    fn abs(self) -> Self;
    fn tanh(self) -> Self;
    fn is_nan(self) -> bool;
    fn is_finite(self) -> bool;
}

macro_rules! impl_element {
    ($t:ty, $name:literal) => {
        impl Element for $t {
            const DTYPE: &'static str = $name;
        }
    };
}

impl_element!(f32, "f32");
impl_element!(f64, "f64");
impl_element!(i64, "i64");
impl_element!(i32, "i32");
impl_element!(u8, "u8");
impl_element!(bool, "bool");

macro_rules! impl_num_float {
    ($t:ty) => {
        impl Num for $t {
            #[inline]
            fn zero() -> Self {
                0.0
            }
            #[inline]
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn min_value() -> Self {
                <$t>::NEG_INFINITY
            }
            #[inline]
            fn max_value() -> Self {
                <$t>::INFINITY
            }
        }
        impl Float for $t {
            #[inline]
            fn exp(self) -> Self {
                self.exp()
            }
            #[inline]
            fn ln(self) -> Self {
                self.ln()
            }
            #[inline]
            fn sqrt(self) -> Self {
                self.sqrt()
            }
            #[inline]
            fn powf(self, e: Self) -> Self {
                self.powf(e)
            }
            #[inline]
            fn abs(self) -> Self {
                self.abs()
            }
            #[inline]
            fn tanh(self) -> Self {
                self.tanh()
            }
            #[inline]
            fn is_nan(self) -> bool {
                self.is_nan()
            }
            #[inline]
            fn is_finite(self) -> bool {
                self.is_finite()
            }
        }
    };
}

impl_num_float!(f32);
impl_num_float!(f64);

macro_rules! impl_num_int {
    ($t:ty) => {
        impl Num for $t {
            #[inline]
            fn zero() -> Self {
                0
            }
            #[inline]
            fn one() -> Self {
                1
            }
            #[inline]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline]
            fn min_value() -> Self {
                <$t>::MIN
            }
            #[inline]
            fn max_value() -> Self {
                <$t>::MAX
            }
        }
    };
}

impl_num_int!(i64);
impl_num_int!(i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names() {
        assert_eq!(f32::DTYPE, "f32");
        assert_eq!(i64::DTYPE, "i64");
        assert_eq!(bool::DTYPE, "bool");
    }

    #[test]
    fn num_round_trips() {
        assert_eq!(f32::from_f64(2.5).to_f64(), 2.5);
        assert_eq!(i64::from_f64(3.9), 3);
        assert_eq!(f64::zero() + f64::one(), 1.0);
    }

    #[test]
    fn fold_identities() {
        assert!(<f32 as Num>::min_value() < -1e30);
        assert_eq!(<i64 as Num>::max_value(), i64::MAX);
    }

    #[test]
    fn float_surface() {
        assert!((2.0f32.ln().exp() - 2.0).abs() < 1e-6);
        assert!(f32::NAN.is_nan());
        assert!(0.5f64.tanh() < 0.5);
    }
}
