//! Convolution and pooling kernels (im2col lowering).
//!
//! `conv2d` follows PyTorch's convention (cross-correlation, NCHW layout)
//! and is lowered to matmul through [`im2col`]; the autodiff crate reuses
//! [`col2im`] for the input gradient. `correlate2d` is the template-matching
//! primitive behind the OCR pipeline of §5.2.

use crate::element::Float;
use crate::tensor::Tensor;

/// Spatial geometry of a convolution/pooling op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dGeom {
    pub kh: usize,
    pub kw: usize,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2dGeom {
    pub fn new(kh: usize, kw: usize, stride: usize, pad: usize) -> Conv2dGeom {
        assert!(stride > 0, "stride must be positive");
        Conv2dGeom {
            kh,
            kw,
            stride,
            pad,
        }
    }

    /// Output spatial size for an input of `h x w`.
    pub fn out_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad)
            .checked_sub(self.kh)
            .map(|v| v / self.stride + 1);
        let ow = (w + 2 * self.pad)
            .checked_sub(self.kw)
            .map(|v| v / self.stride + 1);
        match (oh, ow) {
            (Some(oh), Some(ow)) => (oh, ow),
            _ => panic!(
                "kernel {}x{} larger than padded input {}x{}",
                self.kh,
                self.kw,
                h + 2 * self.pad,
                w + 2 * self.pad
            ),
        }
    }
}

/// Unfold `[n, c, h, w]` into columns `[n * oh * ow, c * kh * kw]`.
pub fn im2col<T: Float>(input: &Tensor<T>, g: Conv2dGeom) -> Tensor<T> {
    assert_eq!(
        input.ndim(),
        4,
        "im2col expects NCHW, got {:?}",
        input.shape()
    );
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (oh, ow) = g.out_size(h, w);
    let cols_w = c * g.kh * g.kw;
    let data = input.data();
    let out = vec![T::zero(); n * oh * ow * cols_w];
    input.device().for_each_chunk(n * oh * ow, |_, range| {
        let out_ptr = SendPtr(out.as_ptr() as *mut T);
        for patch in range {
            let b = patch / (oh * ow);
            let oy = (patch / ow) % oh;
            let ox = patch % ow;
            let row =
                unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(patch * cols_w), cols_w) };
            let mut col = 0usize;
            for ch in 0..c {
                for ky in 0..g.kh {
                    let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                    for kx in 0..g.kw {
                        let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                        row[col] = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                            data[((b * c + ch) * h + iy as usize) * w + ix as usize]
                        } else {
                            T::zero()
                        };
                        col += 1;
                    }
                }
            }
        }
    });
    Tensor::from_vec(out, &[n * oh * ow, cols_w]).to(input.device())
}

/// Fold columns back into an image, accumulating overlaps — the adjoint of
/// [`im2col`], used for conv2d input gradients.
pub fn col2im<T: Float>(
    cols: &Tensor<T>,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    g: Conv2dGeom,
) -> Tensor<T> {
    let (oh, ow) = g.out_size(h, w);
    let cols_w = c * g.kh * g.kw;
    assert_eq!(
        cols.shape(),
        &[n * oh * ow, cols_w],
        "col2im shape mismatch"
    );
    let data = cols.data();
    let mut out = vec![T::zero(); n * c * h * w];
    for patch in 0..n * oh * ow {
        let b = patch / (oh * ow);
        let oy = (patch / ow) % oh;
        let ox = patch % ow;
        let row = &data[patch * cols_w..(patch + 1) * cols_w];
        let mut col = 0usize;
        for ch in 0..c {
            for ky in 0..g.kh {
                let iy = (oy * g.stride + ky) as isize - g.pad as isize;
                for kx in 0..g.kw {
                    let ix = (ox * g.stride + kx) as isize - g.pad as isize;
                    if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                        out[((b * c + ch) * h + iy as usize) * w + ix as usize] += row[col];
                    }
                    col += 1;
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w]).to(cols.device())
}

impl<T: Float> Tensor<T> {
    /// 2-d convolution (cross-correlation). `self` is `[n, c, h, w]`,
    /// `weight` is `[o, c, kh, kw]`, optional `bias` is `[o]`.
    pub fn conv2d(
        &self,
        weight: &Tensor<T>,
        bias: Option<&Tensor<T>>,
        stride: usize,
        pad: usize,
    ) -> Tensor<T> {
        assert_eq!(self.ndim(), 4, "conv2d input must be NCHW");
        assert_eq!(weight.ndim(), 4, "conv2d weight must be OCKK");
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let (o, wc, kh, kw) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        assert_eq!(c, wc, "conv2d channel mismatch: input {c} vs weight {wc}");
        let g = Conv2dGeom::new(kh, kw, stride, pad);
        let (oh, ow) = g.out_size(h, w);

        // cols: [n*oh*ow, c*kh*kw]; weight as [c*kh*kw, o]
        let cols = im2col(self, g);
        let wmat = weight.reshape(&[o, c * kh * kw]).transpose();
        let mut out = cols.matmul(&wmat); // [n*oh*ow, o]
        if let Some(b) = bias {
            assert_eq!(b.shape(), &[o], "conv2d bias must be [out_channels]");
            out = out.add(&b.reshape(&[1, o]));
        }
        // [n*oh*ow, o] -> [n, oh, ow, o] -> [n, o, oh, ow]
        out.reshape(&[n, oh, ow, o]).permute(&[0, 3, 1, 2])
    }

    /// Max pooling with argmax indices (flat over the input HxW plane per
    /// (n, c)). Returns `(pooled [n,c,oh,ow], indices i64 [n,c,oh,ow])`.
    pub fn max_pool2d(&self, k: usize, stride: usize) -> (Tensor<T>, Tensor<i64>) {
        assert_eq!(self.ndim(), 4, "max_pool2d input must be NCHW");
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let g = Conv2dGeom::new(k, k, stride, 0);
        let (oh, ow) = g.out_size(h, w);
        let data = self.data();
        let mut vals = vec![T::zero(); n * c * oh * ow];
        let mut idxs = vec![0i64; n * c * oh * ow];
        for b in 0..n {
            for ch in 0..c {
                let plane = &data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = T::min_value();
                        let mut best_i = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = oy * stride + ky;
                                let ix = ox * stride + kx;
                                let v = plane[iy * w + ix];
                                if v > best {
                                    best = v;
                                    best_i = iy * w + ix;
                                }
                            }
                        }
                        let oi = ((b * c + ch) * oh + oy) * ow + ox;
                        vals[oi] = best;
                        idxs[oi] = best_i as i64;
                    }
                }
            }
        }
        (
            Tensor::from_vec(vals, &[n, c, oh, ow]).to(self.device()),
            Tensor::from_vec(idxs, &[n, c, oh, ow]).to(self.device()),
        )
    }

    /// Average pooling.
    pub fn avg_pool2d(&self, k: usize, stride: usize) -> Tensor<T> {
        assert_eq!(self.ndim(), 4, "avg_pool2d input must be NCHW");
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        let g = Conv2dGeom::new(k, k, stride, 0);
        let (oh, ow) = g.out_size(h, w);
        let data = self.data();
        let inv = T::from_f64(1.0 / (k * k) as f64);
        let mut out = vec![T::zero(); n * c * oh * ow];
        for b in 0..n {
            for ch in 0..c {
                let plane = &data[(b * c + ch) * h * w..(b * c + ch + 1) * h * w];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = T::zero();
                        for ky in 0..k {
                            for kx in 0..k {
                                acc += plane[(oy * stride + ky) * w + ox * stride + kx];
                            }
                        }
                        out[((b * c + ch) * oh + oy) * ow + ox] = acc * inv;
                    }
                }
            }
        }
        Tensor::from_vec(out, &[n, c, oh, ow]).to(self.device())
    }

    /// Global average pooling `[n, c, h, w] -> [n, c]`.
    pub fn global_avg_pool(&self) -> Tensor<T> {
        assert_eq!(self.ndim(), 4, "global_avg_pool input must be NCHW");
        let (n, c, h, w) = (
            self.shape()[0],
            self.shape()[1],
            self.shape()[2],
            self.shape()[3],
        );
        self.reshape(&[n, c, h * w]).mean_dim(2, false)
    }

    /// Valid-mode 2-d cross-correlation of a single-channel image `[h, w]`
    /// with a template `[kh, kw]`. The OCR character recogniser slides a
    /// glyph atlas over document images with this kernel.
    pub fn correlate2d(&self, template: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.ndim(), 2, "correlate2d image must be 2-d");
        assert_eq!(template.ndim(), 2, "correlate2d template must be 2-d");
        let img = self.reshape(&[1, 1, self.shape()[0], self.shape()[1]]);
        let ker = template.reshape(&[1, 1, template.shape()[0], template.shape()[1]]);
        let out = img.conv2d(&ker, None, 1, 0);
        let (oh, ow) = (out.shape()[2], out.shape()[3]);
        out.reshape(&[oh, ow])
    }
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn geom_output_sizes() {
        assert_eq!(Conv2dGeom::new(3, 3, 1, 0).out_size(5, 5), (3, 3));
        assert_eq!(Conv2dGeom::new(3, 3, 1, 1).out_size(5, 5), (5, 5));
        assert_eq!(Conv2dGeom::new(2, 2, 2, 0).out_size(4, 4), (2, 2));
    }

    #[test]
    fn conv2d_identity_kernel() {
        let img = t((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let ident = t(vec![1.0], &[1, 1, 1, 1]);
        let out = img.conv2d(&ident, None, 1, 0);
        assert_eq!(out.to_vec(), img.to_vec());
    }

    #[test]
    fn conv2d_box_filter_hand_checked() {
        let img = t(
            vec![
                1.0, 2.0, 3.0, //
                4.0, 5.0, 6.0, //
                7.0, 8.0, 9.0,
            ],
            &[1, 1, 3, 3],
        );
        let box2 = t(vec![1.0; 4], &[1, 1, 2, 2]);
        let out = img.conv2d(&box2, None, 1, 0);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.to_vec(), vec![12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_padding_and_bias() {
        let img = t(vec![1.0; 9], &[1, 1, 3, 3]);
        let k = t(vec![1.0; 9], &[1, 1, 3, 3]);
        let bias = t(vec![0.5], &[1]);
        let out = img.conv2d(&k, Some(&bias), 1, 1);
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        // Centre sees all 9 ones; corner sees 4.
        assert_eq!(out.get(&[0, 0, 1, 1]), 9.5);
        assert_eq!(out.get(&[0, 0, 0, 0]), 4.5);
    }

    #[test]
    fn conv2d_multi_channel() {
        // Two input channels, kernel sums them.
        let img = t(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0],
            &[1, 2, 2, 2],
        );
        let k = t(vec![1.0, 1.0], &[1, 2, 1, 1]);
        let out = img.conv2d(&k, None, 1, 0);
        assert_eq!(out.to_vec(), vec![11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn conv2d_stride() {
        let img = t((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let ident = t(vec![1.0], &[1, 1, 1, 1]);
        let out = img.conv2d(&ident, None, 2, 0);
        assert_eq!(out.shape(), &[1, 1, 2, 2]);
        assert_eq!(out.to_vec(), vec![0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn im2col_col2im_adjoint_shape() {
        let g = Conv2dGeom::new(2, 2, 1, 0);
        let img = t((0..9).map(|i| i as f32).collect(), &[1, 1, 3, 3]);
        let cols = im2col(&img, g);
        assert_eq!(cols.shape(), &[4, 4]);
        let back = col2im(&cols, 1, 1, 3, 3, g);
        assert_eq!(back.shape(), &[1, 1, 3, 3]);
        // Centre pixel participates in all 4 patches -> accumulated 4x.
        assert_eq!(back.get(&[0, 0, 1, 1]), 4.0 * img.get(&[0, 0, 1, 1]));
        // Corner participates once.
        assert_eq!(back.get(&[0, 0, 0, 0]), img.get(&[0, 0, 0, 0]));
    }

    #[test]
    fn max_pool_values_and_indices() {
        let img = t(
            vec![
                1.0, 3.0, 2.0, 4.0, //
                5.0, 6.0, 8.0, 7.0, //
                9.0, 2.0, 1.0, 0.0, //
                3.0, 4.0, 5.0, 6.0,
            ],
            &[1, 1, 4, 4],
        );
        let (vals, idx) = img.max_pool2d(2, 2);
        assert_eq!(vals.to_vec(), vec![6.0, 8.0, 9.0, 6.0]);
        assert_eq!(idx.to_vec(), vec![5, 6, 8, 15]);
    }

    #[test]
    fn avg_and_global_pool() {
        let img = t(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        assert_eq!(img.avg_pool2d(2, 2).to_vec(), vec![2.5]);
        let two_ch = t(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 10.0],
            &[1, 2, 2, 2],
        );
        assert_eq!(two_ch.global_avg_pool().to_vec(), vec![2.5, 10.0]);
    }

    #[test]
    fn correlate2d_peaks_at_template_location() {
        // Embed a distinctive 2x2 pattern at (1,2) of a 4x5 image.
        let mut img = Tensor::<f32>::zeros(&[4, 5]);
        let pat = [[3.0f32, 1.0], [1.0, 3.0]];
        for (dy, row) in pat.iter().enumerate() {
            for (dx, &v) in row.iter().enumerate() {
                img.set(&[1 + dy, 2 + dx], v);
            }
        }
        let template = t(vec![3.0, 1.0, 1.0, 3.0], &[2, 2]);
        let score = img.correlate2d(&template);
        assert_eq!(score.shape(), &[3, 4]);
        let best = score.argmax_flat();
        assert_eq!((best / 4, best % 4), (1, 2));
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_panics() {
        t(vec![0.0; 4], &[1, 1, 2, 2]).conv2d(&t(vec![0.0; 9], &[1, 1, 3, 3]), None, 1, 0);
    }
}
