//! The core dense tensor type.

use std::sync::Arc;

use crate::device::Device;
use crate::element::{Element, Float, Num};
use crate::rng::Rng64;
use crate::shape::Shape;

/// A dense, contiguous, row-major n-dimensional array.
///
/// Cloning is O(1) (the buffer is shared behind an [`Arc`]); mutation goes
/// through copy-on-write. A scalar is a tensor with an empty shape.
#[derive(Clone)]
pub struct Tensor<T: Element> {
    data: Arc<Vec<T>>,
    shape: Shape,
    device: Device,
}

impl<T: Element> Tensor<T> {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Build a tensor from a flat row-major buffer.
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(data: Vec<T>, shape: &[usize]) -> Tensor<T> {
        let sh = Shape::new(shape);
        assert_eq!(
            data.len(),
            sh.numel(),
            "buffer of {} elements cannot form shape {}",
            data.len(),
            sh
        );
        Tensor {
            data: Arc::new(data),
            shape: sh,
            device: Device::Cpu,
        }
    }

    /// A 0-dimensional (scalar) tensor.
    pub fn scalar(v: T) -> Tensor<T> {
        Tensor::from_vec(vec![v], &[])
    }

    /// A tensor filled with one value.
    pub fn full(shape: &[usize], v: T) -> Tensor<T> {
        let n = shape.iter().product();
        Tensor::from_vec(vec![v; n], shape)
    }

    /// Tensor of default values (zero for numeric types).
    pub fn empty(shape: &[usize]) -> Tensor<T> {
        Tensor::full(shape, T::default())
    }

    // ------------------------------------------------------------------
    // Metadata
    // ------------------------------------------------------------------

    /// Extents of each dimension.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Shape object (strides, offsets).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions. Scalars have 0.
    pub fn ndim(&self) -> usize {
        self.shape.ndim()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Size of the leading dimension — the row count of a column tensor.
    /// Scalars report 1.
    pub fn rows(&self) -> usize {
        self.shape.dims().first().copied().unwrap_or(1)
    }

    /// Device the tensor is placed on.
    pub fn device(&self) -> Device {
        self.device
    }

    /// `true` when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.numel() == 0
    }

    /// Borrow the flat row-major buffer.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Copy out the flat buffer.
    pub fn to_vec(&self) -> Vec<T> {
        self.data.as_ref().clone()
    }

    /// Mutable access to the buffer (copy-on-write if shared).
    pub fn data_mut(&mut self) -> &mut [T] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Element at a multi-index.
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.shape.offset(idx)]
    }

    /// Set the element at a multi-index (copy-on-write).
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.shape.offset(idx);
        self.data_mut()[off] = v;
    }

    /// Element at a flat offset.
    pub fn at(&self, flat: usize) -> T {
        self.data[flat]
    }

    /// The single element of a scalar or 1-element tensor.
    pub fn item(&self) -> T {
        assert_eq!(
            self.numel(),
            1,
            "item() on tensor of {} elements",
            self.numel()
        );
        self.data[0]
    }

    // ------------------------------------------------------------------
    // Device movement
    // ------------------------------------------------------------------

    /// Move the tensor to a device. Data is shared (our simulated devices
    /// live in one address space); only kernel dispatch changes.
    pub fn to(&self, device: Device) -> Tensor<T> {
        let mut t = self.clone();
        t.device = device;
        t
    }

    pub(crate) fn with_device(mut self, device: Device) -> Tensor<T> {
        self.device = device;
        self
    }

    // ------------------------------------------------------------------
    // Shape manipulation (all O(1) on data; reshape-family shares buffers)
    // ------------------------------------------------------------------

    /// View with a new shape of equal element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor<T> {
        let sh = Shape::new(shape);
        assert_eq!(
            sh.numel(),
            self.numel(),
            "cannot reshape {} elements into {}",
            self.numel(),
            sh
        );
        Tensor {
            data: Arc::clone(&self.data),
            shape: sh,
            device: self.device,
        }
    }

    /// Flatten into 1-d.
    pub fn flatten(&self) -> Tensor<T> {
        self.reshape(&[self.numel()])
    }

    /// Insert a size-1 dimension at `dim`.
    pub fn unsqueeze(&self, dim: usize) -> Tensor<T> {
        assert!(dim <= self.ndim(), "unsqueeze dim {dim} out of range");
        let mut dims = self.shape.dims().to_vec();
        dims.insert(dim, 1);
        self.reshape(&dims)
    }

    /// Remove a size-1 dimension at `dim`.
    pub fn squeeze(&self, dim: usize) -> Tensor<T> {
        assert!(
            self.shape.dims().get(dim) == Some(&1),
            "squeeze dim {dim} of shape {} is not 1",
            self.shape
        );
        let mut dims = self.shape.dims().to_vec();
        dims.remove(dim);
        self.reshape(&dims)
    }

    /// Materialised broadcast of this tensor to a larger shape.
    pub fn broadcast_to(&self, shape: &[usize]) -> Tensor<T> {
        let target = Shape::new(shape);
        if self.shape.dims() == shape {
            return self.clone();
        }
        let out_n = target.numel();
        let src_dims = self.shape.dims();
        let src_strides = self.shape.strides();
        let pad = shape.len() - src_dims.len();
        // Effective stride per output dim: 0 where the source broadcasts.
        let mut eff = vec![0usize; shape.len()];
        for (d, &dim) in shape.iter().enumerate() {
            if d >= pad {
                let sd = src_dims[d - pad];
                assert!(
                    sd == dim || sd == 1,
                    "cannot broadcast {} to {}",
                    self.shape,
                    target
                );
                eff[d] = if sd == 1 { 0 } else { src_strides[d - pad] };
            }
        }
        let data = &self.data;
        let mut out = vec![T::default(); out_n];
        let target_strides = target.strides();
        self.device.fill_indexed(&mut out, |flat| {
            let mut rem = flat;
            let mut src = 0usize;
            for d in 0..shape.len() {
                let i = rem / target_strides[d];
                rem %= target_strides[d];
                src += i * eff[d];
            }
            data[src]
        });
        Tensor::from_vec(out, shape).with_device(self.device)
    }

    /// Permute dimensions (generalised transpose). Materialises the data.
    pub fn permute(&self, dims: &[usize]) -> Tensor<T> {
        assert_eq!(dims.len(), self.ndim(), "permute rank mismatch");
        let mut seen = vec![false; dims.len()];
        for &d in dims {
            assert!(d < dims.len() && !seen[d], "invalid permutation {dims:?}");
            seen[d] = true;
        }
        let src_strides = self.shape.strides();
        let new_dims: Vec<usize> = dims.iter().map(|&d| self.shape.dims()[d]).collect();
        let out_shape = Shape::new(&new_dims);
        let out_strides = out_shape.strides();
        let data = &self.data;
        let mut out = vec![T::default(); self.numel()];
        self.device.fill_indexed(&mut out, |flat| {
            let mut rem = flat;
            let mut src = 0usize;
            for d in 0..new_dims.len() {
                let i = rem / out_strides[d];
                rem %= out_strides[d];
                src += i * src_strides[dims[d]];
            }
            data[src]
        });
        Tensor::from_vec(out, &new_dims).with_device(self.device)
    }

    /// 2-d transpose.
    pub fn transpose(&self) -> Tensor<T> {
        assert_eq!(
            self.ndim(),
            2,
            "transpose() requires a matrix, got {}",
            self.shape
        );
        self.permute(&[1, 0])
    }

    /// Repeat the whole tensor `n` times along a new leading dimension.
    pub fn repeat_rows(&self, n: usize) -> Tensor<T> {
        let mut out = Vec::with_capacity(self.numel() * n);
        for _ in 0..n {
            out.extend_from_slice(&self.data);
        }
        let mut dims = vec![n];
        dims.extend_from_slice(self.shape.dims());
        Tensor::from_vec(out, &dims).with_device(self.device)
    }

    /// Apply `f` to every element.
    pub fn map<U: Element>(&self, f: impl Fn(T) -> U + Sync) -> Tensor<U> {
        let data = &self.data;
        let mut out = vec![U::default(); self.numel()];
        self.device.fill_indexed(&mut out, |i| f(data[i]));
        Tensor::from_vec(out, self.shape.dims()).with_device(self.device)
    }

    /// First `n` rows as a contiguous prefix slice (clamped to the row
    /// count). One memcpy — no index materialisation or gather.
    pub fn head_rows(&self, n: usize) -> Tensor<T> {
        assert!(self.ndim() >= 1, "head_rows() on a scalar");
        let n = n.min(self.rows());
        let stride: usize = self.shape.dims()[1..].iter().product();
        let mut shape = self.shape.dims().to_vec();
        shape[0] = n;
        Tensor::from_vec(self.data[..n * stride].to_vec(), &shape).with_device(self.device)
    }

    /// Rows `start..end` as a contiguous range slice (bounds clamped to
    /// the row count). Like [`Tensor::head_rows`], a single memcpy of the
    /// underlying buffer — no index materialisation or gather — which is
    /// what makes morsel partitioning cheap.
    pub fn slice_rows(&self, start: usize, end: usize) -> Tensor<T> {
        assert!(self.ndim() >= 1, "slice_rows() on a scalar");
        let rows = self.rows();
        let end = end.min(rows);
        let start = start.min(end);
        let stride: usize = self.shape.dims()[1..].iter().product();
        let mut shape = self.shape.dims().to_vec();
        shape[0] = end - start;
        Tensor::from_vec(self.data[start * stride..end * stride].to_vec(), &shape)
            .with_device(self.device)
    }

    /// Row `i` of a tensor with ndim >= 1, as a tensor of one lower rank.
    pub fn row(&self, i: usize) -> Tensor<T> {
        assert!(self.ndim() >= 1, "row() on a scalar");
        let n = self.rows();
        assert!(i < n, "row {i} out of bounds for {n} rows");
        let stride: usize = self.shape.dims()[1..].iter().product();
        let data = self.data[i * stride..(i + 1) * stride].to_vec();
        Tensor::from_vec(data, &self.shape.dims()[1..]).with_device(self.device)
    }
}

impl<T: Num> Tensor<T> {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Tensor<T> {
        Tensor::full(shape, T::zero())
    }

    /// One-filled tensor.
    pub fn ones(shape: &[usize]) -> Tensor<T> {
        Tensor::full(shape, T::one())
    }

    /// Zero tensor with the same shape/device as `other`.
    pub fn zeros_like(other: &Tensor<T>) -> Tensor<T> {
        Tensor::zeros(other.shape()).with_device(other.device())
    }

    /// `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Tensor<T> {
        Tensor::from_vec((0..n).map(|i| T::from_f64(i as f64)).collect(), &[n])
    }

    /// `n` evenly spaced points from `lo` to `hi` inclusive.
    pub fn linspace(lo: f64, hi: f64, n: usize) -> Tensor<T> {
        assert!(n >= 2, "linspace needs at least two points");
        let step = (hi - lo) / (n - 1) as f64;
        Tensor::from_vec(
            (0..n).map(|i| T::from_f64(lo + step * i as f64)).collect(),
            &[n],
        )
    }

    /// Identity matrix.
    pub fn eye(n: usize) -> Tensor<T> {
        let mut data = vec![T::zero(); n * n];
        for i in 0..n {
            data[i * n + i] = T::one();
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f64, hi: f64, rng: &mut Rng64) -> Tensor<T> {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|_| T::from_f64(rng.uniform_range(lo, hi)))
                .collect(),
            shape,
        )
    }

    /// Normal random tensor.
    pub fn randn(shape: &[usize], mean: f64, std: f64, rng: &mut Rng64) -> Tensor<T> {
        let n: usize = shape.iter().product();
        Tensor::from_vec(
            (0..n)
                .map(|_| T::from_f64(rng.normal_with(mean, std)))
                .collect(),
            shape,
        )
    }

    /// Cast to another numeric element type.
    pub fn cast<U: Num>(&self) -> Tensor<U> {
        self.map(|v| U::from_f64(v.to_f64()))
    }

    /// Convenience casts used throughout the engine.
    pub fn to_f32(&self) -> Tensor<f32> {
        self.cast()
    }

    pub fn to_f64_t(&self) -> Tensor<f64> {
        self.cast()
    }

    pub fn to_i64(&self) -> Tensor<i64> {
        self.cast()
    }
}

impl Tensor<bool> {
    /// Convert a mask to 0/1 floats (soft-operator inputs).
    pub fn to_f32_mask(&self) -> Tensor<f32> {
        self.map(|b| if b { 1.0f32 } else { 0.0 })
    }

    /// Convert a mask to 0/1 integers.
    pub fn to_i64_mask(&self) -> Tensor<i64> {
        self.map(i64::from)
    }

    /// Number of `true` entries.
    pub fn count_true(&self) -> usize {
        self.data().iter().filter(|&&b| b).count()
    }

    /// Elementwise logical and/or/not with broadcasting.
    pub fn and(&self, other: &Tensor<bool>) -> Tensor<bool> {
        crate::ops::broadcast_zip(self, other, |a, b| a && b)
    }

    pub fn or(&self, other: &Tensor<bool>) -> Tensor<bool> {
        crate::ops::broadcast_zip(self, other, |a, b| a || b)
    }

    pub fn not(&self) -> Tensor<bool> {
        self.map(|b| !b)
    }

    /// `true` if any element is set.
    pub fn any(&self) -> bool {
        self.data().iter().any(|&b| b)
    }

    /// `true` if all elements are set.
    pub fn all(&self) -> bool {
        self.data().iter().all(|&b| b)
    }
}

impl<T: Float> Tensor<T> {
    /// Kaiming/He-style fan-in scaled initialisation for layer weights.
    pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut Rng64) -> Tensor<T> {
        let std = (2.0 / fan_in.max(1) as f64).sqrt();
        Tensor::randn(shape, 0.0, std, rng)
    }

    /// `true` if every element is finite (NaN/Inf guard for training loops).
    pub fn all_finite(&self) -> bool {
        self.data().iter().all(|v| v.is_finite())
    }
}

impl<T: Element> std::fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor<{}>({}, {}", T::DTYPE, self.shape, self.device)?;
        let n = self.numel();
        if n <= 16 {
            write!(f, ", {:?})", self.data())
        } else {
            write!(f, ", [{:?}, {:?}, ... ; {n}])", self.data[0], self.data[1])
        }
    }
}

impl<T: Element> PartialEq for Tensor<T> {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data() == other.data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.ndim(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.at(3), 4.0);
    }

    #[test]
    #[should_panic(expected = "cannot form shape")]
    fn bad_shape_panics() {
        Tensor::from_vec(vec![1.0f32; 5], &[2, 3]);
    }

    #[test]
    fn scalar_semantics() {
        let s = Tensor::scalar(5i64);
        assert_eq!(s.ndim(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.item(), 5);
        assert_eq!(s.rows(), 1);
    }

    #[test]
    fn cow_clone_isolation() {
        let a = Tensor::from_vec(vec![1i64, 2, 3], &[3]);
        let mut b = a.clone();
        b.set(&[0], 99);
        assert_eq!(a.at(0), 1, "original must be untouched by COW write");
        assert_eq!(b.at(0), 99);
    }

    #[test]
    fn reshape_shares_data() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let b = a.reshape(&[3, 2]);
        assert_eq!(b.get(&[2, 1]), 5.0);
        assert_eq!(b.flatten().shape(), &[6]);
    }

    #[test]
    fn squeeze_unsqueeze() {
        let a = Tensor::<f32>::zeros(&[3]);
        let b = a.unsqueeze(0).unsqueeze(2);
        assert_eq!(b.shape(), &[1, 3, 1]);
        assert_eq!(b.squeeze(0).squeeze(1).shape(), &[3]);
    }

    #[test]
    fn broadcast_to_materialises() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2, 1]);
        let b = a.broadcast_to(&[2, 3]);
        assert_eq!(b.to_vec(), vec![1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);
        let c = Tensor::scalar(7.0f32).broadcast_to(&[2, 2]);
        assert_eq!(c.to_vec(), vec![7.0; 4]);
    }

    #[test]
    fn permute_and_transpose() {
        let a = Tensor::from_vec((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.get(&[2, 1]), a.get(&[1, 2]));
        let p =
            Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]).permute(&[2, 0, 1]);
        assert_eq!(p.shape(), &[4, 2, 3]);
        assert_eq!(p.get(&[3, 1, 2]), 23.0);
    }

    #[test]
    fn arange_linspace_eye() {
        assert_eq!(Tensor::<i64>::arange(4).to_vec(), vec![0, 1, 2, 3]);
        let l = Tensor::<f32>::linspace(0.0, 1.0, 5);
        assert_eq!(l.to_vec(), vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        assert_eq!(Tensor::<f32>::eye(2).to_vec(), vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn device_round_trip() {
        let a = Tensor::<f32>::ones(&[4]);
        assert_eq!(a.device(), Device::Cpu);
        let b = a.to(Device::Accel(4));
        assert_eq!(b.device(), Device::Accel(4));
        assert_eq!(b.to_vec(), a.to_vec(), "placement must not alter data");
    }

    #[test]
    fn map_and_cast() {
        let a = Tensor::from_vec(vec![1i64, -2, 3], &[3]);
        let b: Tensor<f32> = a.map(|v| v as f32 * 2.0);
        assert_eq!(b.to_vec(), vec![2.0, -4.0, 6.0]);
        assert_eq!(a.to_f32().to_vec(), vec![1.0, -2.0, 3.0]);
        assert_eq!(b.to_i64().to_vec(), vec![2, -4, 6]);
    }

    #[test]
    fn bool_mask_helpers() {
        let m = Tensor::from_vec(vec![true, false, true], &[3]);
        assert_eq!(m.count_true(), 2);
        assert_eq!(m.to_f32_mask().to_vec(), vec![1.0, 0.0, 1.0]);
        assert!(m.any());
        assert!(!m.all());
        assert_eq!(m.not().to_i64_mask().to_vec(), vec![0, 1, 0]);
        let n = Tensor::from_vec(vec![true, true, false], &[3]);
        assert_eq!(m.and(&n).count_true(), 1);
        assert_eq!(m.or(&n).count_true(), 3);
    }

    #[test]
    fn row_extraction() {
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let r = a.row(1);
        assert_eq!(r.shape(), &[4]);
        assert_eq!(r.to_vec(), vec![4.0, 5.0, 6.0, 7.0]);
        let img = Tensor::<f32>::zeros(&[2, 1, 3, 3]);
        assert_eq!(img.row(0).shape(), &[1, 3, 3]);
    }

    #[test]
    fn repeat_rows_tiles() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        let b = a.repeat_rows(3);
        assert_eq!(b.shape(), &[3, 2]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn randn_is_seeded() {
        let mut r1 = Rng64::new(3);
        let mut r2 = Rng64::new(3);
        let a = Tensor::<f32>::randn(&[16], 0.0, 1.0, &mut r1);
        let b = Tensor::<f32>::randn(&[16], 0.0, 1.0, &mut r2);
        assert_eq!(a.to_vec(), b.to_vec());
    }

    #[test]
    fn all_finite_guard() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], &[2]);
        assert!(a.all_finite());
        let b = Tensor::from_vec(vec![1.0f32, f32::NAN], &[2]);
        assert!(!b.all_finite());
    }
}
