//! Sorting, ranking and distinct-value kernels.
//!
//! ORDER BY, sort-based GROUP BY and top-k all lower to these primitives,
//! mirroring how TQP expresses relational operators as tensor programs.

use crate::element::Element;
use crate::tensor::Tensor;

impl<T: Element> Tensor<T> {
    /// Indices that sort a 1-d tensor ascending (stable).
    pub fn argsort(&self) -> Tensor<i64> {
        assert_eq!(self.ndim(), 1, "argsort expects a 1-d tensor");
        let d = self.data();
        let mut idx: Vec<i64> = (0..d.len() as i64).collect();
        idx.sort_by(|&a, &b| {
            d[a as usize]
                .partial_cmp(&d[b as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n = idx.len();
        Tensor::from_vec(idx, &[n]).to(self.device())
    }

    /// Indices that sort descending (stable).
    pub fn argsort_desc(&self) -> Tensor<i64> {
        assert_eq!(self.ndim(), 1, "argsort expects a 1-d tensor");
        let d = self.data();
        let mut idx: Vec<i64> = (0..d.len() as i64).collect();
        idx.sort_by(|&a, &b| {
            d[b as usize]
                .partial_cmp(&d[a as usize])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let n = idx.len();
        Tensor::from_vec(idx, &[n]).to(self.device())
    }

    /// Sorted copy of a 1-d tensor.
    pub fn sorted(&self) -> Tensor<T> {
        self.select_rows(&self.argsort())
    }

    /// Indices of the `k` largest entries, in descending order.
    pub fn topk_indices(&self, k: usize) -> Tensor<i64> {
        assert_eq!(self.ndim(), 1, "topk expects a 1-d tensor");
        let order = self.argsort_desc();
        order.narrow(0, 0, k.min(order.numel()))
    }
}

/// Stable lexicographic argsort over several equal-length key columns
/// (most-significant key first). The substrate of multi-column ORDER BY and
/// sort-based GROUP BY.
pub fn lexsort_i64(keys: &[&Tensor<i64>]) -> Tensor<i64> {
    assert!(!keys.is_empty(), "lexsort needs at least one key");
    let n = keys[0].numel();
    for k in keys {
        assert_eq!(k.ndim(), 1, "lexsort keys must be 1-d");
        assert_eq!(k.numel(), n, "lexsort keys must have equal length");
    }
    let mut idx: Vec<i64> = (0..n as i64).collect();
    idx.sort_by(|&a, &b| {
        for k in keys {
            let (ka, kb) = (k.at(a as usize), k.at(b as usize));
            match ka.cmp(&kb) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    Tensor::from_vec(idx, &[n])
}

/// Result of [`unique_i64`]: distinct values and supporting indexes.
#[derive(Debug, Clone)]
pub struct Unique {
    /// Distinct values in ascending order.
    pub values: Tensor<i64>,
    /// For each input position, the index of its value within `values`.
    pub inverse: Tensor<i64>,
    /// Multiplicity of each distinct value.
    pub counts: Tensor<i64>,
}

/// Distinct values of a 1-d i64 tensor with inverse mapping and counts —
/// the core of GROUP BY key resolution.
pub fn unique_i64(t: &Tensor<i64>) -> Unique {
    assert_eq!(t.ndim(), 1, "unique expects a 1-d tensor");
    let n = t.numel();
    let order = t.argsort();
    let d = t.data();
    let mut values = Vec::new();
    let mut counts: Vec<i64> = Vec::new();
    let mut inverse = vec![0i64; n];
    for &pos in order.data() {
        let v = d[pos as usize];
        if values.last() != Some(&v) {
            values.push(v);
            counts.push(0);
        }
        let g = values.len() - 1;
        counts[g] += 1;
        inverse[pos as usize] = g as i64;
    }
    let k = values.len();
    Unique {
        values: Tensor::from_vec(values, &[k]),
        inverse: Tensor::from_vec(inverse, &[n]),
        counts: Tensor::from_vec(counts, &[k]),
    }
}

/// Compose several i64 key columns into one group id per row plus the
/// distinct key tuples (row-major `[num_groups, num_keys]`), ordered
/// lexicographically. Used by multi-key GROUP BY.
pub fn group_ids(keys: &[&Tensor<i64>]) -> (Tensor<i64>, Tensor<i64>) {
    assert!(!keys.is_empty(), "group_ids needs at least one key");
    let n = keys[0].numel();
    let order = lexsort_i64(keys);
    let mut ids = vec![0i64; n];
    let mut distinct: Vec<i64> = Vec::new();
    let mut current = -1i64;
    let mut prev: Option<Vec<i64>> = None;
    for &pos in order.data() {
        let tuple: Vec<i64> = keys.iter().map(|k| k.at(pos as usize)).collect();
        if prev.as_ref() != Some(&tuple) {
            distinct.extend_from_slice(&tuple);
            current += 1;
            prev = Some(tuple);
        }
        ids[pos as usize] = current;
    }
    let groups = (current + 1) as usize;
    (
        Tensor::from_vec(ids, &[n]),
        Tensor::from_vec(distinct, &[groups, keys.len()]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ti(v: Vec<i64>) -> Tensor<i64> {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }

    #[test]
    fn argsort_ascending_and_descending() {
        let t = Tensor::from_vec(vec![3.0f32, 1.0, 2.0], &[3]);
        assert_eq!(t.argsort().to_vec(), vec![1, 2, 0]);
        assert_eq!(t.argsort_desc().to_vec(), vec![0, 2, 1]);
        assert_eq!(t.sorted().to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn argsort_is_stable() {
        let t = ti(vec![1, 0, 1, 0]);
        assert_eq!(t.argsort().to_vec(), vec![1, 3, 0, 2]);
    }

    #[test]
    fn topk_descending() {
        let t = Tensor::from_vec(vec![0.1f32, 0.9, 0.5, 0.7], &[4]);
        assert_eq!(t.topk_indices(2).to_vec(), vec![1, 3]);
        assert_eq!(t.topk_indices(10).numel(), 4, "k is clamped to n");
    }

    #[test]
    fn lexsort_two_keys() {
        let a = ti(vec![1, 0, 1, 0]);
        let b = ti(vec![5, 9, 3, 7]);
        // Sort by (a, b): (0,7)@3, (0,9)@1, (1,3)@2, (1,5)@0
        assert_eq!(lexsort_i64(&[&a, &b]).to_vec(), vec![3, 1, 2, 0]);
    }

    #[test]
    fn unique_counts_and_inverse() {
        let t = ti(vec![4, 2, 4, 4, 1]);
        let u = unique_i64(&t);
        assert_eq!(u.values.to_vec(), vec![1, 2, 4]);
        assert_eq!(u.counts.to_vec(), vec![1, 1, 3]);
        assert_eq!(u.inverse.to_vec(), vec![2, 1, 2, 2, 0]);
        // Invariant: counts sum to n.
        assert_eq!(u.counts.sum(), 5);
        // Invariant: values[inverse[i]] == t[i].
        let recon = u.values.select_rows(&u.inverse);
        assert_eq!(recon.to_vec(), t.to_vec());
    }

    #[test]
    fn group_ids_multi_key() {
        let digit = ti(vec![3, 3, 5, 3]);
        let size = ti(vec![0, 1, 0, 0]);
        let (ids, distinct) = group_ids(&[&digit, &size]);
        // Lexicographic distinct tuples: (3,0), (3,1), (5,0)
        assert_eq!(distinct.shape(), &[3, 2]);
        assert_eq!(distinct.to_vec(), vec![3, 0, 3, 1, 5, 0]);
        assert_eq!(ids.to_vec(), vec![0, 1, 2, 0]);
    }

    #[test]
    fn group_ids_single_key_matches_unique() {
        let t = ti(vec![7, 7, 2]);
        let (ids, distinct) = group_ids(&[&t]);
        assert_eq!(distinct.to_vec(), vec![2, 7]);
        assert_eq!(ids.to_vec(), vec![1, 1, 0]);
    }
}
