//! Indexing, selection and assembly kernels.
//!
//! These are the tensor lowerings of relational data movement: `WHERE`
//! becomes [`Tensor::filter_rows`], joins and sorts shuffle rows with
//! [`Tensor::select_rows`], gradient scatter uses [`Tensor::scatter_add_rows`],
//! and operators that assemble batches use [`concat_rows`]/[`stack`].

use crate::element::{Element, Num};
use crate::tensor::Tensor;

impl<T: Element> Tensor<T> {
    /// Gather whole rows (leading-dimension entries) by index, with
    /// repetition allowed. `idx` entries must be in `[0, rows)`.
    pub fn select_rows(&self, idx: &Tensor<i64>) -> Tensor<T> {
        assert!(self.ndim() >= 1, "select_rows on a scalar");
        assert_eq!(idx.ndim(), 1, "row index tensor must be 1-d");
        let n = self.rows();
        let stride: usize = self.shape()[1..].iter().product();
        let data = self.data();
        let ids = idx.data();
        let out = vec![T::default(); ids.len() * stride];
        self.device().for_each_chunk(ids.len(), |_, range| {
            let out_ptr = SendPtr(out.as_ptr() as *mut T);
            for i in range {
                let src = ids[i];
                assert!(
                    src >= 0 && (src as usize) < n,
                    "row index {src} out of bounds for {n} rows"
                );
                let dst =
                    unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(i * stride), stride) };
                dst.copy_from_slice(&data[src as usize * stride..(src as usize + 1) * stride]);
            }
        });
        let mut dims = self.shape().to_vec();
        dims[0] = ids.len();
        Tensor::from_vec(out, &dims).to(self.device())
    }

    /// Keep the rows where `mask` is true. `mask` must be 1-d with one entry
    /// per row. This is the exact (non-differentiable) filter operator.
    pub fn filter_rows(&self, mask: &Tensor<bool>) -> Tensor<T> {
        assert_eq!(mask.ndim(), 1, "filter mask must be 1-d");
        assert_eq!(
            mask.numel(),
            self.rows(),
            "mask of {} entries cannot filter {} rows",
            mask.numel(),
            self.rows()
        );
        let idx: Vec<i64> = mask
            .data()
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i as i64))
            .collect();
        let n = idx.len();
        self.select_rows(&Tensor::from_vec(idx, &[n]))
    }

    /// Contiguous sub-range along a dimension.
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Tensor<T> {
        assert!(dim < self.ndim(), "narrow dim {dim} out of range");
        let dims = self.shape();
        assert!(
            start + len <= dims[dim],
            "narrow [{start}, {start}+{len}) exceeds dim {dim} of size {}",
            dims[dim]
        );
        let outer: usize = dims[..dim].iter().product();
        let inner: usize = dims[dim + 1..].iter().product();
        let d = self.data();
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let base = (o * dims[dim] + start) * inner;
            out.extend_from_slice(&d[base..base + len * inner]);
        }
        let mut new_dims = dims.to_vec();
        new_dims[dim] = len;
        Tensor::from_vec(out, &new_dims).to(self.device())
    }

    /// Gather along `dim`: `out[i][j] = self[index[i][j]][j]` (for dim 0),
    /// with `index` shaped like the output.
    pub fn gather(&self, dim: usize, index: &Tensor<i64>) -> Tensor<T> {
        assert_eq!(self.ndim(), index.ndim(), "gather rank mismatch");
        assert!(dim < self.ndim(), "gather dim out of range");
        let out_shape = index.shape().to_vec();
        let self_strides = self.shape_obj().strides();
        let out_sh = crate::shape::Shape::new(&out_shape);
        let out_strides = out_sh.strides();
        let d = self.data();
        let ix = index.data();
        let dim_size = self.shape()[dim];
        let mut out = vec![T::default(); out_sh.numel()];
        for (flat, o) in out.iter_mut().enumerate() {
            let mut rem = flat;
            let mut src = 0usize;
            for dd in 0..out_shape.len() {
                let i = rem / out_strides[dd];
                rem %= out_strides[dd];
                let pos = if dd == dim {
                    let g = ix[flat];
                    assert!(
                        g >= 0 && (g as usize) < dim_size,
                        "gather index {g} out of bounds for dim of {dim_size}"
                    );
                    g as usize
                } else {
                    i
                };
                src += pos * self_strides[dd];
            }
            *o = d[src];
        }
        Tensor::from_vec(out, &out_shape).to(self.device())
    }
}

impl<T: Num> Tensor<T> {
    /// Scatter-add rows of `src` into `self` at row positions `idx`:
    /// `out[idx[i]] += src[i]`. Duplicates accumulate — the adjoint of
    /// [`Tensor::select_rows`].
    pub fn scatter_add_rows(&self, idx: &Tensor<i64>, src: &Tensor<T>) -> Tensor<T> {
        assert_eq!(idx.ndim(), 1, "scatter index must be 1-d");
        assert_eq!(idx.numel(), src.rows(), "index count must match src rows");
        assert_eq!(
            self.shape()[1..],
            src.shape()[1..],
            "scatter row shapes differ"
        );
        let stride: usize = self.shape()[1..].iter().product();
        let n = self.rows();
        let mut out = self.to_vec();
        let s = src.data();
        for (i, &target) in idx.data().iter().enumerate() {
            assert!(
                target >= 0 && (target as usize) < n,
                "scatter index {target} out of bounds for {n} rows"
            );
            let base = target as usize * stride;
            for j in 0..stride {
                out[base + j] += s[i * stride + j];
            }
        }
        Tensor::from_vec(out, self.shape()).to(self.device())
    }

    /// Segmented sum: rows of `self` sharing the same `segment` id are
    /// added together, producing `num_segments` rows. Segment ids must be in
    /// `[0, num_segments)`. This is the tensor lowering of grouped SUM.
    pub fn segment_sum(&self, segments: &Tensor<i64>, num_segments: usize) -> Tensor<T> {
        assert_eq!(segments.numel(), self.rows(), "one segment id per row");
        let mut dims = self.shape().to_vec();
        if dims.is_empty() {
            dims = vec![1];
        }
        dims[0] = num_segments;
        Tensor::<T>::zeros(&dims)
            .to(self.device())
            .scatter_add_rows(segments, self)
    }
}

/// Concatenate tensors along the leading dimension. Trailing dims must match.
pub fn concat_rows<T: Element>(parts: &[&Tensor<T>]) -> Tensor<T> {
    assert!(!parts.is_empty(), "concat of zero tensors");
    let tail = &parts[0].shape()[1..];
    let mut total = 0usize;
    for p in parts {
        assert_eq!(&p.shape()[1..], tail, "concat_rows trailing shape mismatch");
        total += p.rows();
    }
    let mut out = Vec::with_capacity(total * tail.iter().product::<usize>().max(1));
    for p in parts {
        out.extend_from_slice(p.data());
    }
    let mut dims = vec![total];
    dims.extend_from_slice(tail);
    Tensor::from_vec(out, &dims).to(parts[0].device())
}

/// Concatenate along an arbitrary dimension.
pub fn concat<T: Element>(parts: &[&Tensor<T>], dim: usize) -> Tensor<T> {
    assert!(!parts.is_empty(), "concat of zero tensors");
    if dim == 0 {
        return concat_rows(parts);
    }
    let rank = parts[0].ndim();
    assert!(dim < rank, "concat dim out of range");
    for p in parts {
        assert_eq!(p.ndim(), rank, "concat rank mismatch");
        for d in 0..rank {
            if d != dim {
                assert_eq!(
                    p.shape()[d],
                    parts[0].shape()[d],
                    "concat non-target dims must match"
                );
            }
        }
    }
    let outer: usize = parts[0].shape()[..dim].iter().product();
    let inner: usize = parts[0].shape()[dim + 1..].iter().product();
    let total_dim: usize = parts.iter().map(|p| p.shape()[dim]).sum();
    let mut out = Vec::with_capacity(outer * total_dim * inner);
    for o in 0..outer {
        for p in parts {
            let pd = p.shape()[dim];
            let d = p.data();
            out.extend_from_slice(&d[o * pd * inner..(o + 1) * pd * inner]);
        }
    }
    let mut dims = parts[0].shape().to_vec();
    dims[dim] = total_dim;
    Tensor::from_vec(out, &dims).to(parts[0].device())
}

/// Stack equally-shaped tensors along a new leading dimension.
pub fn stack<T: Element>(parts: &[&Tensor<T>]) -> Tensor<T> {
    assert!(!parts.is_empty(), "stack of zero tensors");
    let shape = parts[0].shape();
    let mut out = Vec::with_capacity(parts.len() * parts[0].numel());
    for p in parts {
        assert_eq!(p.shape(), shape, "stack shape mismatch");
        out.extend_from_slice(p.data());
    }
    let mut dims = vec![parts.len()];
    dims.extend_from_slice(shape);
    Tensor::from_vec(out, &dims).to(parts[0].device())
}

/// One-hot encode class ids into a `[n, num_classes]` f32 matrix.
pub fn one_hot(ids: &Tensor<i64>, num_classes: usize) -> Tensor<f32> {
    assert_eq!(ids.ndim(), 1, "one_hot expects 1-d class ids");
    let n = ids.numel();
    let mut out = vec![0.0f32; n * num_classes];
    for (i, &c) in ids.data().iter().enumerate() {
        assert!(
            c >= 0 && (c as usize) < num_classes,
            "class id {c} out of range 0..{num_classes}"
        );
        out[i * num_classes + c as usize] = 1.0;
    }
    Tensor::from_vec(out, &[n, num_classes]).to(ids.device())
}

struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v, s)
    }

    fn idx(v: Vec<i64>) -> Tensor<i64> {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }

    #[test]
    fn select_rows_with_repeats() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let s = a.select_rows(&idx(vec![2, 0, 2]));
        assert_eq!(s.shape(), &[3, 2]);
        assert_eq!(s.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn select_rows_bounds_checked() {
        t(vec![1.0, 2.0], &[2, 1]).select_rows(&idx(vec![5]));
    }

    #[test]
    fn filter_rows_mask() {
        let a = t(vec![10.0, 20.0, 30.0, 40.0], &[4]);
        let m = Tensor::from_vec(vec![true, false, true, false], &[4]);
        assert_eq!(a.filter_rows(&m).to_vec(), vec![10.0, 30.0]);
        let none = Tensor::from_vec(vec![false; 4], &[4]);
        assert_eq!(a.filter_rows(&none).numel(), 0);
    }

    #[test]
    fn filter_rows_keeps_row_payloads() {
        // Filtering a [n, 2, 2] image column keeps whole images.
        let imgs = t((0..12).map(|i| i as f32).collect(), &[3, 2, 2]);
        let m = Tensor::from_vec(vec![false, true, false], &[3]);
        let f = imgs.filter_rows(&m);
        assert_eq!(f.shape(), &[1, 2, 2]);
        assert_eq!(f.to_vec(), vec![4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    fn narrow_middle_dim() {
        let a = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let n = a.narrow(1, 1, 2);
        assert_eq!(n.shape(), &[2, 2, 4]);
        assert_eq!(n.get(&[0, 0, 0]), a.get(&[0, 1, 0]));
        assert_eq!(n.get(&[1, 1, 3]), a.get(&[1, 2, 3]));
    }

    #[test]
    fn gather_dim1() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let ix = Tensor::from_vec(vec![2i64, 0, 1, 1], &[2, 2]);
        let g = a.gather(1, &ix);
        assert_eq!(g.to_vec(), vec![3.0, 1.0, 5.0, 5.0]);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let base = Tensor::<f32>::zeros(&[3, 2]);
        let src = t(vec![1.0, 1.0, 2.0, 2.0, 4.0, 4.0], &[3, 2]);
        let out = base.scatter_add_rows(&idx(vec![1, 1, 0]), &src);
        assert_eq!(out.to_vec(), vec![4.0, 4.0, 3.0, 3.0, 0.0, 0.0]);
    }

    #[test]
    fn segment_sum_grouped_totals() {
        let vals = t(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[5]);
        let segs = idx(vec![0, 1, 0, 2, 1]);
        let out = vals.segment_sum(&segs, 3);
        assert_eq!(out.to_vec(), vec![4.0, 7.0, 4.0]);
    }

    #[test]
    fn concat_and_stack() {
        let a = t(vec![1.0, 2.0], &[1, 2]);
        let b = t(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.to_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);

        let x = t(vec![1.0, 2.0], &[2]);
        let y = t(vec![3.0, 4.0], &[2]);
        let s = stack(&[&x, &y]);
        assert_eq!(s.shape(), &[2, 2]);

        let m1 = t(vec![1.0, 2.0], &[2, 1]);
        let m2 = t(vec![3.0, 4.0], &[2, 1]);
        let cc = concat(&[&m1, &m2], 1);
        assert_eq!(cc.shape(), &[2, 2]);
        assert_eq!(cc.to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn one_hot_rows() {
        let oh = one_hot(&idx(vec![1, 0, 2]), 3);
        assert_eq!(oh.shape(), &[3, 3]);
        assert_eq!(
            oh.to_vec(),
            vec![0.0, 1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 1.0]
        );
        // one-hot PE columns are exactly the bridge between exact and soft
        // group-by; each row must be a valid distribution.
        assert_eq!(oh.sum_dim(1, false).to_vec(), vec![1.0; 3]);
    }
}
