//! einops-style tensor rearrangement.
//!
//! Listing 4 of the TDP paper splits an MNISTGrid image into tiles with
//! `einops.rearrange(grid, "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2", h1=3, w1=3)`.
//! This module implements the einops pattern mini-language over [`Tensor`]:
//!
//! * [`rearrange`] — reshape + transpose + reshape, driven by a pattern,
//! * [`reduce`] — rearrange where axes missing on the right are reduced,
//! * [`repeat`] — rearrange where axes new on the right are broadcast.
//!
//! A pattern is `LEFT -> RIGHT`, each side a space-separated list of axes:
//! a bare name (`h`), the unit literal `1`, or a parenthesised composition
//! (`(h w)`). Unknown axis extents are inferred from the input shape; at
//! most one axis per composition may be unknown. Extents can also be pinned
//! explicitly via the `sizes` argument (the `h1=3, w1=3` of the listing).
//!
//! ```
//! use tdp_tensor::{einops, Tensor};
//!
//! // Listing 4: one 6×6 "grid" of 2×2 tiles -> batch of 9 tiles.
//! let grid = Tensor::from_vec((0..36).map(|v| v as f32).collect(), &[1, 6, 6]);
//! let tiles = einops::rearrange(
//!     &grid,
//!     "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2",
//!     &[("h1", 3), ("w1", 3)],
//! )
//! .unwrap();
//! assert_eq!(tiles.shape(), &[9, 1, 2, 2]);
//! // Tile (0,0) is the top-left 2×2 block of the grid.
//! assert_eq!(&tiles.data()[..4], &[0.0, 1.0, 6.0, 7.0]);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::element::{Element, Num};
use crate::tensor::Tensor;

/// Reduction applied by [`reduce`] to axes that vanish from the pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Mean,
    Max,
    Min,
}

/// Errors from pattern parsing or shape resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EinopsError {
    /// The pattern text is malformed (missing `->`, unbalanced parens, …).
    Parse(String),
    /// The pattern does not fit the tensor (rank or extent mismatch,
    /// non-divisible composition, unknown or duplicate axis…).
    Shape(String),
}

impl fmt::Display for EinopsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EinopsError::Parse(m) => write!(f, "einops pattern error: {m}"),
            EinopsError::Shape(m) => write!(f, "einops shape error: {m}"),
        }
    }
}

impl std::error::Error for EinopsError {}

/// One elementary axis inside a composite group.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Atom {
    /// Named axis.
    Name(String),
    /// The `1` literal: an anonymous unit axis.
    Unit,
}

/// One top-level item of a pattern side: a composition of elementary axes.
/// Bare names parse as singleton groups.
type Group = Vec<Atom>;

fn parse_side(side: &str) -> Result<Vec<Group>, EinopsError> {
    let mut groups: Vec<Group> = Vec::new();
    let mut current: Option<Group> = None; // Some(..) while inside parens
    for tok in tokenize_side(side)? {
        match tok.as_str() {
            "(" => {
                if current.is_some() {
                    return Err(EinopsError::Parse("nested parentheses".into()));
                }
                current = Some(Vec::new());
            }
            ")" => match current.take() {
                Some(g) => groups.push(g),
                None => return Err(EinopsError::Parse("unbalanced ')'".into())),
            },
            name => {
                let atom = if name == "1" {
                    Atom::Unit
                } else if name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
                    && name
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
                {
                    Atom::Name(name.to_owned())
                } else {
                    return Err(EinopsError::Parse(format!("bad axis name '{name}'")));
                };
                match &mut current {
                    Some(g) => g.push(atom),
                    None => groups.push(vec![atom]),
                }
            }
        }
    }
    if current.is_some() {
        return Err(EinopsError::Parse("unbalanced '('".into()));
    }
    Ok(groups)
}

fn tokenize_side(side: &str) -> Result<Vec<String>, EinopsError> {
    let mut toks = Vec::new();
    let mut word = String::new();
    for c in side.chars() {
        match c {
            '(' | ')' => {
                if !word.is_empty() {
                    toks.push(std::mem::take(&mut word));
                }
                toks.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !word.is_empty() {
                    toks.push(std::mem::take(&mut word));
                }
            }
            c => word.push(c),
        }
    }
    if !word.is_empty() {
        toks.push(word);
    }
    if toks.is_empty() {
        return Err(EinopsError::Parse("empty pattern side".into()));
    }
    Ok(toks)
}

/// A parsed `LEFT -> RIGHT` pattern.
#[derive(Debug, Clone)]
struct Pattern {
    left: Vec<Group>,
    right: Vec<Group>,
}

fn parse_pattern(pattern: &str) -> Result<Pattern, EinopsError> {
    let (l, r) = pattern
        .split_once("->")
        .ok_or_else(|| EinopsError::Parse("pattern must contain '->'".into()))?;
    let left = parse_side(l)?;
    let right = parse_side(r)?;
    for (side, name) in [(&left, "left"), (&right, "right")] {
        let mut seen = Vec::new();
        for g in side.iter() {
            for a in g {
                if let Atom::Name(n) = a {
                    if seen.contains(&n) {
                        return Err(EinopsError::Parse(format!(
                            "axis '{n}' appears twice on the {name} side"
                        )));
                    }
                    seen.push(n);
                }
            }
        }
    }
    Ok(Pattern { left, right })
}

/// Resolve every elementary axis extent on the left side against the input
/// shape. Returns the map of name → extent and the fully decomposed shape
/// (one entry per elementary axis, including anonymous units).
fn resolve_left(
    left: &[Group],
    shape: &[usize],
    sizes: &HashMap<&str, usize>,
) -> Result<(HashMap<String, usize>, Vec<usize>), EinopsError> {
    if left.len() != shape.len() {
        return Err(EinopsError::Shape(format!(
            "pattern has {} axes but tensor has {} dimensions",
            left.len(),
            shape.len()
        )));
    }
    let mut extents: HashMap<String, usize> = HashMap::new();
    for (&name, &sz) in sizes {
        extents.insert(name.to_owned(), sz);
    }
    let mut decomposed = Vec::new();
    for (group, &dim) in left.iter().zip(shape) {
        let mut known: usize = 1;
        let mut unknown: Option<&str> = None;
        for atom in group {
            match atom {
                Atom::Unit => {}
                Atom::Name(n) => match extents.get(n) {
                    Some(&sz) => known *= sz,
                    None => {
                        if unknown.replace(n).is_some() {
                            return Err(EinopsError::Shape(format!(
                                "composition {group:?} has more than one unknown axis"
                            )));
                        }
                    }
                },
            }
        }
        if dim % known != 0 {
            return Err(EinopsError::Shape(format!(
                "dimension {dim} not divisible by known axis product {known}"
            )));
        }
        match unknown {
            Some(n) => {
                extents.insert(n.to_owned(), dim / known);
            }
            None if known != dim => {
                return Err(EinopsError::Shape(format!(
                    "composition resolves to {known} but dimension is {dim}"
                )));
            }
            None => {}
        }
        for atom in group {
            decomposed.push(match atom {
                Atom::Unit => 1,
                Atom::Name(n) => extents[n],
            });
        }
    }
    Ok((extents, decomposed))
}

/// Names in left-to-right elementary order, with `None` for unit axes.
fn elementary_names(side: &[Group]) -> Vec<Option<String>> {
    side.iter()
        .flat_map(|g| {
            g.iter().map(|a| match a {
                Atom::Unit => None,
                Atom::Name(n) => Some(n.clone()),
            })
        })
        .collect()
}

fn sizes_map<'a>(sizes: &'a [(&'a str, usize)]) -> HashMap<&'a str, usize> {
    sizes.iter().copied().collect()
}

/// Rearrange dimensions of `t` according to an einops `pattern`.
///
/// Every named axis on the left must appear on the right and vice versa;
/// use [`reduce`] to drop axes and [`repeat`] to introduce them. `sizes`
/// pins axis extents that cannot be inferred (e.g. `h1` in Listing 4).
pub fn rearrange<T: Element>(
    t: &Tensor<T>,
    pattern: &str,
    sizes: &[(&str, usize)],
) -> Result<Tensor<T>, EinopsError> {
    let pat = parse_pattern(pattern)?;
    let sizes = sizes_map(sizes);
    let (extents, decomposed) = resolve_left(&pat.left, t.shape(), &sizes)?;

    let left_names = elementary_names(&pat.left);
    let right_names = elementary_names(&pat.right);
    let left_set: Vec<&String> = left_names.iter().flatten().collect();
    let right_set: Vec<&String> = right_names.iter().flatten().collect();
    for n in &right_set {
        if !left_set.contains(n) {
            return Err(EinopsError::Shape(format!(
                "axis '{n}' on the right side is not present on the left (use repeat)"
            )));
        }
    }
    for n in &left_set {
        if !right_set.contains(n) {
            return Err(EinopsError::Shape(format!(
                "axis '{n}' dropped from the right side (use reduce)"
            )));
        }
    }

    // Decompose, permute named axes into right order (dropping left unit
    // axes), then compose the right side.
    let dec = t.reshape(&decomposed);
    let (perm, perm_shape) = named_permutation(&left_names, &right_set, &decomposed);
    let permuted = dec.reshape(&perm_shape.pre).permute(&perm);
    let composed = compose_shape(&pat.right, &extents)?;
    Ok(permuted.reshape(&composed))
}

/// Rearrange + reduction: named axes present on the left but absent from
/// the right are reduced with `op`. Unit (`1`) axes may be dropped freely.
pub fn reduce<T: Num>(
    t: &Tensor<T>,
    pattern: &str,
    op: ReduceOp,
    sizes: &[(&str, usize)],
) -> Result<Tensor<T>, EinopsError> {
    let pat = parse_pattern(pattern)?;
    let sizes = sizes_map(sizes);
    let (extents, decomposed) = resolve_left(&pat.left, t.shape(), &sizes)?;

    let left_names = elementary_names(&pat.left);
    let right_names = elementary_names(&pat.right);
    let right_set: Vec<&String> = right_names.iter().flatten().collect();
    for n in &right_set {
        if !left_names.iter().flatten().any(|l| l == *n) {
            return Err(EinopsError::Shape(format!(
                "axis '{n}' on the right side is not present on the left"
            )));
        }
    }
    let reduced: Vec<&String> = left_names
        .iter()
        .flatten()
        .filter(|l| !right_set.contains(l))
        .collect();

    // Permute to [kept axes in right order, reduced axes], then fold the
    // trailing reduced axes one reduction at a time.
    let mut order: Vec<&String> = right_set.clone();
    order.extend(reduced.iter().copied());
    let (perm, perm_shape) = named_permutation(&left_names, &order, &decomposed);
    let mut out = t
        .reshape(&decomposed)
        .reshape(&perm_shape.pre)
        .permute(&perm);
    for _ in 0..reduced.len() {
        let last = out.ndim() - 1;
        out = match op {
            ReduceOp::Sum => out.sum_dim(last, false),
            ReduceOp::Mean => out.mean_dim(last, false),
            ReduceOp::Max => out.max_dim(last, false),
            ReduceOp::Min => out.min_dim(last, false),
        };
    }
    let composed = compose_shape(&pat.right, &extents)?;
    Ok(out.reshape(&composed))
}

/// Rearrange + broadcast: named axes new on the right are tiled to the
/// extent given in `sizes` (each new axis must be pinned there).
pub fn repeat<T: Element>(
    t: &Tensor<T>,
    pattern: &str,
    sizes: &[(&str, usize)],
) -> Result<Tensor<T>, EinopsError> {
    let pat = parse_pattern(pattern)?;
    let sizes = sizes_map(sizes);
    let (mut extents, decomposed) = resolve_left(&pat.left, t.shape(), &sizes)?;

    let left_names = elementary_names(&pat.left);
    let right_names = elementary_names(&pat.right);
    let left_set: Vec<&String> = left_names.iter().flatten().collect();
    for n in &left_set {
        if !right_names.iter().flatten().any(|r| r == *n) {
            return Err(EinopsError::Shape(format!(
                "axis '{n}' dropped from the right side (use reduce)"
            )));
        }
    }
    // New axes must have a pinned extent.
    let mut new_axes = Vec::new();
    for n in right_names.iter().flatten() {
        if !left_set.contains(&n) {
            let sz = *sizes.get(n.as_str()).ok_or_else(|| {
                EinopsError::Shape(format!("new axis '{n}' needs an explicit size"))
            })?;
            extents.insert(n.clone(), sz);
            new_axes.push(n.clone());
        }
    }

    // Permute existing axes into the order they appear on the right, with
    // unit slots where new axes go, then broadcast and compose.
    let kept_order: Vec<&String> = right_names
        .iter()
        .flatten()
        .filter(|n| left_set.contains(n))
        .collect();
    let (perm, perm_shape) = named_permutation(&left_names, &kept_order, &decomposed);
    let mut out = t
        .reshape(&decomposed)
        .reshape(&perm_shape.pre)
        .permute(&perm);

    // Insert unit dims for new/unit axes, walking the right side.
    let mut with_units = Vec::new();
    let mut broadcast = Vec::new();
    let mut kept_iter = out.shape().to_vec().into_iter();
    for name in &right_names {
        match name {
            None => {
                with_units.push(1);
                broadcast.push(1);
            }
            Some(n) if new_axes.contains(n) => {
                with_units.push(1);
                broadcast.push(extents[n]);
            }
            Some(_) => {
                let d = kept_iter.next().expect("kept axis count mismatch");
                with_units.push(d);
                broadcast.push(d);
            }
        }
    }
    out = out.reshape(&with_units).broadcast_to(&broadcast);
    let composed = compose_shape(&pat.right, &extents)?;
    Ok(out.reshape(&composed))
}

/// Shape bookkeeping for [`named_permutation`].
struct PermShape {
    /// Decomposed shape with left unit axes removed — what the tensor must
    /// be reshaped to before applying the permutation.
    pre: Vec<usize>,
}

/// Build the permutation taking the left side's named elementary axes
/// (unit axes squeezed out) into `target` order.
fn named_permutation(
    left_names: &[Option<String>],
    target: &[&String],
    decomposed: &[usize],
) -> (Vec<usize>, PermShape) {
    let mut pre = Vec::new();
    let mut named_pos: Vec<&String> = Vec::new();
    for (name, &d) in left_names.iter().zip(decomposed) {
        match name {
            Some(n) => {
                named_pos.push(n);
                pre.push(d);
            }
            None => {
                debug_assert_eq!(d, 1, "unit axis with extent != 1");
            }
        }
    }
    let perm: Vec<usize> = target
        .iter()
        .map(|t| {
            named_pos
                .iter()
                .position(|n| n == t)
                .expect("axis resolved earlier")
        })
        .collect();
    (perm, PermShape { pre })
}

fn compose_shape(
    side: &[Group],
    extents: &HashMap<String, usize>,
) -> Result<Vec<usize>, EinopsError> {
    side.iter()
        .map(|group| {
            let mut d = 1usize;
            for atom in group {
                if let Atom::Name(n) = atom {
                    d *= *extents.get(n).ok_or_else(|| {
                        EinopsError::Shape(format!("axis '{n}' has no resolved extent"))
                    })?;
                }
            }
            Ok(d)
        })
        .collect()
}

impl<T: Element> Tensor<T> {
    /// [`rearrange`] as a method: `t.rearrange("a b -> b a", &[])`.
    pub fn rearrange(&self, pattern: &str, sizes: &[(&str, usize)]) -> Tensor<T> {
        rearrange(self, pattern, sizes).unwrap_or_else(|e| panic!("rearrange('{pattern}'): {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iota(shape: &[usize]) -> Tensor<f32> {
        let n: usize = shape.iter().product();
        Tensor::from_vec((0..n).map(|v| v as f32).collect(), shape)
    }

    #[test]
    fn transpose_via_pattern() {
        let t = iota(&[2, 3]);
        let r = rearrange(&t, "a b -> b a", &[]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
    }

    #[test]
    fn flatten_and_split() {
        let t = iota(&[2, 3, 4]);
        let flat = rearrange(&t, "a b c -> (a b c)", &[]).unwrap();
        assert_eq!(flat.shape(), &[24]);
        assert_eq!(flat.to_vec(), t.to_vec());
        let back = rearrange(&flat, "(a b c) -> a b c", &[("a", 2), ("b", 3)]).unwrap();
        assert_eq!(back.shape(), &[2, 3, 4]);
        assert_eq!(back.to_vec(), t.to_vec());
    }

    #[test]
    fn listing4_tile_split() {
        // 1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2 with h1 = w1 = 3.
        let grid = iota(&[1, 6, 6]);
        let tiles = rearrange(
            &grid,
            "1 (h1 h2) (w1 w2) -> (h1 w1) 1 h2 w2",
            &[("h1", 3), ("w1", 3)],
        )
        .unwrap();
        assert_eq!(tiles.shape(), &[9, 1, 2, 2]);
        // Tile row-major ordering: tile (r, c) starts at grid[2r][2c].
        for r in 0..3 {
            for c in 0..3 {
                let t0 = tiles.get(&[r * 3 + c, 0, 0, 0]);
                assert_eq!(t0, (2 * r * 6 + 2 * c) as f32);
            }
        }
    }

    #[test]
    fn unit_axes_insert_and_drop() {
        let t = iota(&[3, 4]);
        let r = rearrange(&t, "a b -> a 1 b 1", &[]).unwrap();
        assert_eq!(r.shape(), &[3, 1, 4, 1]);
        let back = rearrange(&r, "a 1 b 1 -> a b", &[]).unwrap();
        assert_eq!(back.to_vec(), t.to_vec());
    }

    #[test]
    fn reduce_mean_over_axis() {
        let t = iota(&[2, 3]);
        let r = reduce(&t, "a b -> a", ReduceOp::Mean, &[]).unwrap();
        assert_eq!(r.shape(), &[2]);
        assert_eq!(r.to_vec(), vec![1.0, 4.0]);
    }

    #[test]
    fn reduce_max_pool_2x2() {
        // einops-style pooling: "(h h2) (w w2) -> h w" with max.
        let t = iota(&[4, 4]);
        let r = reduce(
            &t,
            "(h h2) (w w2) -> h w",
            ReduceOp::Max,
            &[("h2", 2), ("w2", 2)],
        )
        .unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert_eq!(r.to_vec(), vec![5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn reduce_sum_all() {
        let t = iota(&[2, 2]);
        let r = reduce(&t, "a b -> 1", ReduceOp::Sum, &[]).unwrap();
        assert_eq!(r.shape(), &[1]);
        assert_eq!(r.to_vec(), vec![6.0]);
    }

    #[test]
    fn repeat_new_axis() {
        let t = iota(&[3]);
        let r = repeat(&t, "a -> a r", &[("r", 2)]).unwrap();
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.to_vec(), vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
        let r2 = repeat(&t, "a -> r a", &[("r", 2)]).unwrap();
        assert_eq!(r2.to_vec(), vec![0.0, 1.0, 2.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn repeat_into_composition() {
        let t = iota(&[2]);
        let r = repeat(&t, "a -> (a r)", &[("r", 3)]).unwrap();
        assert_eq!(r.shape(), &[6]);
        assert_eq!(r.to_vec(), vec![0.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn inference_of_one_unknown_per_group() {
        let t = iota(&[12]);
        let r = rearrange(&t, "(a b) -> a b", &[("a", 3)]).unwrap();
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    fn error_two_unknowns() {
        let t = iota(&[12]);
        let e = rearrange(&t, "(a b) -> a b", &[]).unwrap_err();
        assert!(matches!(e, EinopsError::Shape(_)), "{e}");
    }

    #[test]
    fn error_rank_mismatch() {
        let t = iota(&[2, 3]);
        let e = rearrange(&t, "a -> a", &[]).unwrap_err();
        assert!(matches!(e, EinopsError::Shape(_)));
    }

    #[test]
    fn error_not_divisible() {
        let t = iota(&[7]);
        let e = rearrange(&t, "(a b) -> a b", &[("a", 2)]).unwrap_err();
        assert!(matches!(e, EinopsError::Shape(_)));
    }

    #[test]
    fn error_dangling_axis() {
        let t = iota(&[2, 3]);
        let e = rearrange(&t, "a b -> a", &[]).unwrap_err();
        assert!(matches!(e, EinopsError::Shape(_)));
        let e = rearrange(&t, "a b -> a b c", &[("c", 2)]).unwrap_err();
        assert!(matches!(e, EinopsError::Shape(_)));
    }

    #[test]
    fn error_parse() {
        let t = iota(&[2]);
        assert!(matches!(
            rearrange(&t, "a a -> a", &[]),
            Err(EinopsError::Parse(_))
        ));
        assert!(matches!(
            rearrange(&t, "a", &[]),
            Err(EinopsError::Parse(_))
        ));
        assert!(matches!(
            rearrange(&t, "(a -> a", &[]),
            Err(EinopsError::Parse(_))
        ));
        assert!(matches!(
            rearrange(&t, "((a)) -> a", &[]),
            Err(EinopsError::Parse(_))
        ));
    }

    #[test]
    fn method_form_panics_with_context() {
        let t = iota(&[2, 2]);
        let r = t.rearrange("a b -> (b a)", &[]);
        assert_eq!(r.shape(), &[4]);
    }

    #[test]
    fn rearrange_is_involutive_on_transpose() {
        let t = iota(&[3, 5, 2]);
        let fwd = rearrange(&t, "a b c -> c b a", &[]).unwrap();
        let back = rearrange(&fwd, "c b a -> a b c", &[]).unwrap();
        assert_eq!(back.to_vec(), t.to_vec());
        assert_eq!(back.shape(), t.shape());
    }

    #[test]
    fn batched_listing4_pattern() {
        // The batched variant used by the MNISTGrid TVF.
        let grids = iota(&[2, 1, 6, 6]);
        let tiles = rearrange(
            &grids,
            "n 1 (h1 h2) (w1 w2) -> (n h1 w1) 1 h2 w2",
            &[("h1", 3), ("w1", 3)],
        )
        .unwrap();
        assert_eq!(tiles.shape(), &[18, 1, 2, 2]);
        // Second grid's first tile starts at offset 36.
        assert_eq!(tiles.get(&[9, 0, 0, 0]), 36.0);
    }
}
