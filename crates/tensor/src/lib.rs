//! # tdp-tensor
//!
//! A dense, n-dimensional tensor runtime written in safe Rust. This crate is
//! the Tensor Computation Runtime (TCR) substrate of `tdp-rs`, playing the
//! role PyTorch plays in the Tensor Data Platform paper (CIDR 2023): every
//! relational operator, encoding, neural network and differentiable query in
//! the upper layers is expressed in terms of the kernels defined here.
//!
//! ## Design
//!
//! * [`Tensor<T>`] is a contiguous, row-major buffer (`Arc<Vec<T>>`) plus a
//!   shape and a [`Device`] tag. Clones are O(1); mutation is copy-on-write.
//! * Broadcasting follows NumPy semantics (trailing-dimension alignment).
//! * [`Device::Cpu`] executes kernels on the calling thread.
//!   [`Device::accel()`] simulates a hardware accelerator by running large
//!   kernels data-parallel across a set of worker threads; this reproduces
//!   the *device portability* story of the paper (the same compiled query
//!   runs unchanged on CPU or "GPU") without requiring GPU hardware.
//! * Kernels are organised by module: elementwise ([`ops`]), reductions
//!   ([`reduce`]), linear algebra ([`linalg`]), convolution ([`conv`]),
//!   indexing/selection ([`index`]) and sorting ([`sort`]).
//!
//! ## Quick start
//!
//! ```
//! use tdp_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::full(&[2, 2], 10.0f32);
//! let c = a.add(&b).matmul(&Tensor::eye(2));
//! assert_eq!(c.to_vec(), vec![11.0, 12.0, 13.0, 14.0]);
//! ```

pub mod conv;
pub mod device;
pub mod einops;
pub mod element;
pub mod index;
pub mod linalg;
pub mod ops;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod sort;
pub mod tensor;

pub use device::Device;
pub use element::{Element, Float, Num};
pub use rng::Rng64;
pub use shape::{broadcast_shapes, Shape};
pub use tensor::Tensor;

/// Tensor of 32-bit floats — the workhorse type of the platform.
pub type F32Tensor = Tensor<f32>;
/// Tensor of 64-bit floats, used where numeric robustness matters.
pub type F64Tensor = Tensor<f64>;
/// Tensor of 64-bit signed integers (dictionary codes, indices, counts).
pub type I64Tensor = Tensor<i64>;
/// Tensor of booleans (selection masks, comparison results).
pub type BoolTensor = Tensor<bool>;
