//! Reduction kernels: full and per-dimension sums, means, extrema, argmax.

use crate::element::{Element, Float, Num};
use crate::tensor::Tensor;

impl<T: Num> Tensor<T> {
    /// Sum of all elements.
    pub fn sum(&self) -> T {
        let mut acc = T::zero();
        for &v in self.data() {
            acc += v;
        }
        acc
    }

    /// Mean of all elements (in f64 to avoid f32 drift on large tensors).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return f64::NAN;
        }
        self.data().iter().map(|v| v.to_f64()).sum::<f64>() / self.numel() as f64
    }

    /// Largest element. Panics on an empty tensor.
    pub fn max_all(&self) -> T {
        assert!(!self.is_empty(), "max of empty tensor");
        let mut m = T::min_value();
        for &v in self.data() {
            if v > m {
                m = v;
            }
        }
        m
    }

    /// Smallest element. Panics on an empty tensor.
    pub fn min_all(&self) -> T {
        assert!(!self.is_empty(), "min of empty tensor");
        let mut m = T::max_value();
        for &v in self.data() {
            if v < m {
                m = v;
            }
        }
        m
    }

    /// Flat index of the largest element.
    pub fn argmax_flat(&self) -> usize {
        assert!(!self.is_empty(), "argmax of empty tensor");
        let mut best = 0usize;
        let d = self.data();
        for i in 1..d.len() {
            if d[i] > d[best] {
                best = i;
            }
        }
        best
    }

    /// Reduce one dimension with `+`. `keepdim` keeps a size-1 axis.
    pub fn sum_dim(&self, dim: usize, keepdim: bool) -> Tensor<T> {
        self.reduce_dim(dim, keepdim, T::zero(), |acc, v| acc + v)
    }

    /// Mean along one dimension.
    pub fn mean_dim(&self, dim: usize, keepdim: bool) -> Tensor<T> {
        let n = self.shape()[dim];
        let s = self.sum_dim(dim, keepdim);
        s.map(move |v| T::from_f64(v.to_f64() / n as f64))
    }

    /// Maximum along one dimension.
    pub fn max_dim(&self, dim: usize, keepdim: bool) -> Tensor<T> {
        self.reduce_dim(
            dim,
            keepdim,
            T::min_value(),
            |acc, v| if v > acc { v } else { acc },
        )
    }

    /// Minimum along one dimension.
    pub fn min_dim(&self, dim: usize, keepdim: bool) -> Tensor<T> {
        self.reduce_dim(
            dim,
            keepdim,
            T::max_value(),
            |acc, v| if v < acc { v } else { acc },
        )
    }

    /// Index of the maximum along one dimension.
    pub fn argmax_dim(&self, dim: usize) -> Tensor<i64> {
        let (outer, reduce, inner) = self.split_at_dim(dim);
        let d = self.data();
        let mut out = vec![0i64; outer * inner];
        for o in 0..outer {
            for i in 0..inner {
                let mut best = 0usize;
                let mut best_v = d[o * reduce * inner + i];
                for r in 1..reduce {
                    let v = d[(o * reduce + r) * inner + i];
                    if v > best_v {
                        best_v = v;
                        best = r;
                    }
                }
                out[o * inner + i] = best as i64;
            }
        }
        let mut dims = self.shape().to_vec();
        dims.remove(dim);
        Tensor::from_vec(out, &dims).to(self.device())
    }

    /// Cumulative sum along one dimension.
    pub fn cumsum(&self, dim: usize) -> Tensor<T> {
        let (outer, reduce, inner) = self.split_at_dim(dim);
        let d = self.data();
        let mut out = vec![T::zero(); d.len()];
        for o in 0..outer {
            for i in 0..inner {
                let mut acc = T::zero();
                for r in 0..reduce {
                    let idx = (o * reduce + r) * inner + i;
                    acc += d[idx];
                    out[idx] = acc;
                }
            }
        }
        Tensor::from_vec(out, self.shape()).to(self.device())
    }

    fn reduce_dim(
        &self,
        dim: usize,
        keepdim: bool,
        init: T,
        f: impl Fn(T, T) -> T + Sync,
    ) -> Tensor<T> {
        let (outer, reduce, inner) = self.split_at_dim(dim);
        let d = self.data();
        let mut out = vec![init; outer * inner];
        self.device().fill_indexed(&mut out, |flat| {
            let o = flat / inner;
            let i = flat % inner;
            let mut acc = init;
            for r in 0..reduce {
                acc = f(acc, d[(o * reduce + r) * inner + i]);
            }
            acc
        });
        let mut dims = self.shape().to_vec();
        if keepdim {
            dims[dim] = 1;
        } else {
            dims.remove(dim);
        }
        Tensor::from_vec(out, &dims).to(self.device())
    }

    /// Decompose the shape around `dim` as (outer, len(dim), inner).
    fn split_at_dim(&self, dim: usize) -> (usize, usize, usize) {
        assert!(
            dim < self.ndim(),
            "reduce dim {dim} out of range for rank {}",
            self.ndim()
        );
        let dims = self.shape();
        let outer: usize = dims[..dim].iter().product();
        let inner: usize = dims[dim + 1..].iter().product();
        (outer, dims[dim], inner)
    }
}

impl<T: Float> Tensor<T> {
    /// Numerically-stable softmax along `dim`.
    pub fn softmax(&self, dim: usize) -> Tensor<T> {
        let max = self.max_dim(dim, true);
        let shifted = self.sub(&max);
        let e = shifted.exp();
        let denom = e.sum_dim(dim, true);
        e.div(&denom)
    }

    /// Numerically-stable log-softmax along `dim`.
    pub fn log_softmax(&self, dim: usize) -> Tensor<T> {
        let max = self.max_dim(dim, true);
        let shifted = self.sub(&max);
        let lse = shifted.exp().sum_dim(dim, true).ln();
        shifted.sub(&lse)
    }

    /// Euclidean (L2) norm of the whole tensor.
    pub fn norm(&self) -> f64 {
        self.data()
            .iter()
            .map(|v| v.to_f64() * v.to_f64())
            .sum::<f64>()
            .sqrt()
    }
}

impl<T: Element> Tensor<T> {
    /// Count of elements equal to `v`.
    pub fn count_eq(&self, v: T) -> usize {
        self.data().iter().filter(|&&x| x == v).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn full_reductions() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max_all(), 4.0);
        assert_eq!(a.min_all(), 1.0);
        assert_eq!(a.argmax_flat(), 3);
    }

    #[test]
    fn sum_dim_matrix() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(a.sum_dim(0, false).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.sum_dim(1, false).to_vec(), vec![6.0, 15.0]);
        assert_eq!(a.sum_dim(1, true).shape(), &[2, 1]);
        assert_eq!(a.mean_dim(1, false).to_vec(), vec![2.0, 5.0]);
    }

    #[test]
    fn sum_dim_3d_middle() {
        let a = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let s = a.sum_dim(1, false);
        assert_eq!(s.shape(), &[2, 4]);
        // Element (0,0) = a[0,0,0]+a[0,1,0]+a[0,2,0] = 0+4+8
        assert_eq!(s.get(&[0, 0]), 12.0);
        assert_eq!(s.get(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn extrema_dims_and_argmax() {
        let a = t(vec![1.0, 9.0, 3.0, 7.0, 5.0, 2.0], &[2, 3]);
        assert_eq!(a.max_dim(1, false).to_vec(), vec![9.0, 7.0]);
        assert_eq!(a.min_dim(0, false).to_vec(), vec![1.0, 5.0, 2.0]);
        assert_eq!(a.argmax_dim(1).to_vec(), vec![1, 0]);
        assert_eq!(a.argmax_dim(0).to_vec(), vec![1, 0, 0]);
    }

    #[test]
    fn cumsum_rows() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(a.cumsum(1).to_vec(), vec![1.0, 3.0, 3.0, 7.0]);
        assert_eq!(a.cumsum(0).to_vec(), vec![1.0, 2.0, 4.0, 6.0]);
    }

    #[test]
    fn softmax_rows_are_distributions() {
        let a = t(vec![1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = a.softmax(1);
        for r in 0..2 {
            let row_sum: f32 = (0..3).map(|c| s.get(&[r, c])).sum();
            assert!((row_sum - 1.0).abs() < 1e-5, "row {r} sums to {row_sum}");
        }
        assert!(s.all_finite(), "softmax must be stable for large inputs");
        assert!(s.get(&[0, 2]) > s.get(&[0, 0]));
    }

    #[test]
    fn log_softmax_matches_ln_of_softmax() {
        let a = t(vec![0.5, -1.0, 2.0], &[1, 3]);
        let ls = a.log_softmax(1);
        let ref_ = a.softmax(1).ln();
        assert!(ls.allclose(&ref_, 1e-5));
    }

    #[test]
    fn norm_and_counts() {
        let a = t(vec![3.0, 4.0], &[2]);
        assert!((a.norm() - 5.0).abs() < 1e-9);
        let m = Tensor::from_vec(vec![1i64, 2, 2, 3], &[4]);
        assert_eq!(m.count_eq(2), 2);
    }

    #[test]
    fn integer_reductions() {
        let a = Tensor::from_vec(vec![5i64, -2, 7], &[3]);
        assert_eq!(a.sum(), 10);
        assert_eq!(a.max_all(), 7);
        assert_eq!(a.min_all(), -2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reduce_bad_dim_panics() {
        t(vec![0.0; 4], &[2, 2]).sum_dim(2, false);
    }
}
