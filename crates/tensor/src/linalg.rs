//! Dense linear algebra: matmul, batched matmul, dot products.
//!
//! The matmul kernel is the hot path of the whole platform — group-by over
//! probability-encoded columns, dense layers, im2col convolution and the
//! CLIP-sim similarity kernel all lower to it. The implementation uses the
//! i-k-j loop order (unit-stride inner loop) and parallelises over row
//! blocks on the simulated accelerator.

use crate::element::Float;
use crate::tensor::Tensor;

impl<T: Float> Tensor<T> {
    /// Matrix product. `self` is `[m, k]`, `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor<T>) -> Tensor<T> {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-d, got {:?}",
            self.shape()
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-d, got {:?}",
            other.shape()
        );
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "matmul inner dims: [{m},{k}] x [{k2},{n}]");

        let device = self.device().combine(other.device());
        let a = self.data();
        let b = other.data();
        let out = vec![T::zero(); m * n];

        device.for_each_chunk(m, |_, rows| {
            // SAFETY-free parallelism: each lane owns a disjoint row range of
            // `out`; we recreate the slice through a raw pointer wrapper to
            // avoid Mutex traffic.
            let out_ptr = SendPtr(out.as_ptr() as *mut T);
            for i in rows {
                let arow = &a[i * k..(i + 1) * k];
                // Row i of the output, written exclusively by this lane.
                let orow = unsafe { std::slice::from_raw_parts_mut(out_ptr.0.add(i * n), n) };
                for (kk, &av) in arow.iter().enumerate() {
                    if av == T::zero() {
                        continue; // sparse-friendly: PE matrices are mostly 0
                    }
                    let brow = &b[kk * n..(kk + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        });

        Tensor::from_vec(out, &[m, n]).to(device)
    }

    /// Batched matmul: `[b, m, k] x [b, k, n] -> [b, m, n]`.
    pub fn bmm(&self, other: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.ndim(), 3, "bmm lhs must be 3-d");
        assert_eq!(other.ndim(), 3, "bmm rhs must be 3-d");
        let (b, m, k) = (self.shape()[0], self.shape()[1], self.shape()[2]);
        assert_eq!(other.shape()[0], b, "bmm batch mismatch");
        assert_eq!(other.shape()[1], k, "bmm inner dim mismatch");
        let n = other.shape()[2];
        let mut out = Vec::with_capacity(b * m * n);
        for i in 0..b {
            let lhs = Tensor::from_vec(self.data()[i * m * k..(i + 1) * m * k].to_vec(), &[m, k])
                .to(self.device());
            let rhs = Tensor::from_vec(other.data()[i * k * n..(i + 1) * k * n].to_vec(), &[k, n])
                .to(other.device());
            out.extend_from_slice(lhs.matmul(&rhs).data());
        }
        Tensor::from_vec(out, &[b, m, n]).to(self.device().combine(other.device()))
    }

    /// Inner product of two 1-d tensors.
    pub fn dot(&self, other: &Tensor<T>) -> T {
        assert_eq!(self.ndim(), 1, "dot lhs must be 1-d");
        assert_eq!(self.shape(), other.shape(), "dot length mismatch");
        let mut acc = T::zero();
        for (&a, &b) in self.data().iter().zip(other.data()) {
            acc += a * b;
        }
        acc
    }

    /// Matrix-vector product: `[m, k] x [k] -> [m]`.
    pub fn matvec(&self, v: &Tensor<T>) -> Tensor<T> {
        assert_eq!(v.ndim(), 1, "matvec rhs must be 1-d");
        self.matmul(&v.reshape(&[v.numel(), 1]))
            .reshape(&[self.shape()[0]])
    }

    /// Outer product of two 1-d tensors: `[m] x [n] -> [m, n]`.
    pub fn outer(&self, other: &Tensor<T>) -> Tensor<T> {
        assert_eq!(self.ndim(), 1, "outer lhs must be 1-d");
        assert_eq!(other.ndim(), 1, "outer rhs must be 1-d");
        self.reshape(&[self.numel(), 1])
            .matmul(&other.reshape(&[1, other.numel()]))
    }

    /// Row-wise L2 normalisation of a `[n, d]` matrix (unit embeddings for
    /// cosine similarity).
    pub fn normalize_rows(&self, eps: f64) -> Tensor<T> {
        assert_eq!(self.ndim(), 2, "normalize_rows needs a matrix");
        let sq = self.mul(self);
        let norms = sq
            .sum_dim(1, true)
            .map(|v| T::from_f64(v.to_f64().sqrt().max(eps)));
        self.div(&norms)
    }
}

/// Wrapper making a raw pointer `Send`+`Sync` for disjoint-range writes.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Device;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor<f32> {
        Tensor::from_vec(v, s)
    }

    #[test]
    fn matmul_small() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(a.matmul(&b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular_and_identity() {
        let a = t((0..6).map(|i| i as f32).collect(), &[2, 3]);
        let i3 = Tensor::<f32>::eye(3);
        assert_eq!(a.matmul(&i3).to_vec(), a.to_vec());
        let b = t((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 4]);
        // c[1,2] = 3*2 + 4*6 + 5*10 = 80
        assert_eq!(c.get(&[1, 2]), 80.0);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch() {
        t(vec![0.0; 6], &[2, 3]).matmul(&t(vec![0.0; 8], &[2, 4]));
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        let m = 64;
        let k = 48;
        let n = 56;
        let mut rng = crate::Rng64::new(1);
        let a = Tensor::<f32>::randn(&[m, k], 0.0, 1.0, &mut rng);
        let b = Tensor::<f32>::randn(&[k, n], 0.0, 1.0, &mut rng);
        let cpu = a.matmul(&b);
        let acc = a.to(Device::Accel(4)).matmul(&b);
        assert!(cpu.allclose(&acc, 1e-5));
        assert!(acc.device().is_accel());
    }

    #[test]
    fn bmm_batches_independently() {
        let a = t((0..8).map(|i| i as f32).collect(), &[2, 2, 2]);
        let b = Tensor::<f32>::eye(2)
            .reshape(&[1, 2, 2])
            .broadcast_to(&[2, 2, 2]);
        assert_eq!(a.bmm(&b).to_vec(), a.to_vec());
    }

    #[test]
    fn dot_matvec_outer() {
        let x = t(vec![1.0, 2.0, 3.0], &[3]);
        let y = t(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(x.dot(&y), 32.0);
        let m = t(vec![1.0, 0.0, 0.0, 0.0, 2.0, 0.0], &[2, 3]);
        assert_eq!(m.matvec(&x).to_vec(), vec![1.0, 4.0]);
        let o = t(vec![1.0, 2.0], &[2]).outer(&t(vec![3.0, 4.0], &[2]));
        assert_eq!(o.to_vec(), vec![3.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let m = t(vec![3.0, 4.0, 0.0, 5.0], &[2, 2]).normalize_rows(1e-12);
        for r in 0..2 {
            let n: f32 = (0..2).map(|c| m.get(&[r, c]).powi(2)).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn soft_groupby_shape_identity() {
        // The PE group-by kernel is A^T B; verify on one-hot inputs it
        // reduces to an exact contingency table.
        let digit = t(
            vec![
                1.0, 0.0, 0.0, // row 0 -> class 0
                0.0, 0.0, 1.0, // row 1 -> class 2
                0.0, 0.0, 1.0, // row 2 -> class 2
            ],
            &[3, 3],
        );
        let size = t(
            vec![
                1.0, 0.0, // small
                0.0, 1.0, // large
                0.0, 1.0, // large
            ],
            &[3, 2],
        );
        let counts = digit.transpose().matmul(&size);
        assert_eq!(counts.shape(), &[3, 2]);
        assert_eq!(counts.get(&[0, 0]), 1.0);
        assert_eq!(counts.get(&[2, 1]), 2.0);
        assert_eq!(counts.sum(), 3.0);
    }
}
