//! Deterministic pseudo-random number generation.
//!
//! Experiments in the paper are averaged over seeded runs; all of our
//! dataset generators and weight initialisers take an explicit [`Rng64`] so
//! every figure is bit-reproducible. The generator is xoshiro256++ seeded
//! via SplitMix64 — tiny, fast, and good enough for simulation workloads
//! (this is not a cryptographic generator).

/// xoshiro256++ pseudo-random generator.
#[derive(Clone, Debug)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng64 {
        // SplitMix64 expansion of the seed into the xoshiro state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Rng64 { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits → double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.uniform() * (hi - lo)
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // simulation sizes used here (n << 2^64).
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo, "empty integer range");
        lo + self.below((hi - lo) as usize) as i64
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.normal()
    }

    /// Bernoulli draw with probability `p`.
    pub fn coin(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Sample from `Laplace(0, scale)` — the mechanism used by the paper's
    /// label-differential-privacy experiment (§5.4).
    pub fn laplace(&mut self, scale: f64) -> f64 {
        let u = self.uniform() - 0.5;
        -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Split off an independent generator (for per-worker streams).
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "uniform mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(9);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "normal mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "normal var {var}");
    }

    #[test]
    fn laplace_scale() {
        let mut r = Rng64::new(13);
        let n = 20_000;
        let scale = 10.0; // epsilon = 0.1 as in the paper
        let mean_abs: f64 = (0..n).map(|_| r.laplace(scale).abs()).sum::<f64>() / n as f64;
        // E|Laplace(0,b)| = b.
        assert!(
            (mean_abs - scale).abs() < 0.5,
            "laplace mean abs {mean_abs}"
        );
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(5);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
