//! The multi-session engine core: everything shareable between sessions.
//!
//! [`TdpEngine`] is the `Send + Sync` heart of the system — one engine
//! per process, any number of concurrent [`Session`] handles on top:
//!
//! ```text
//!   TdpEngine (Arc, Send + Sync)          Session (one per user, !Send)
//!   ├─ Catalog            RwLock          ├─ local UdfRegistry   (Rc-based
//!   │   (tables, zone maps,               │   trainable Vars live here)
//!   │    vector indexes)                  ├─ bound params / device
//!   ├─ shared plan cache  Mutex           ├─ threads / morsels / partitions
//!   ├─ SharedUdfRegistry  RwLock          ├─ zone-map toggle
//!   ├─ KernelCache        (internally     └─ session-local plan overlay
//!   ├─ access-path         locked)
//!   │   counters          atomics
//!   └─ EngineStats        atomics
//! ```
//!
//! The split follows one rule: state whose *meaning* is identical for
//! every user lives on the engine behind a lock; state that can differ
//! per user (autodiff tapes, parameter bindings, scheduler knobs,
//! session-local function registrations) rides the cheap session handle.
//! [`crate::Tdp`] remains the embedded single-user facade — an engine
//! plus one session — so existing code compiles unchanged.
//!
//! ## The cross-session plan cache
//!
//! Compiled plans are cached on the engine keyed by *normalized*
//! statement text (literals auto-parameterised), so two different users
//! preparing `SELECT v FROM t WHERE v > 1` and `… > 2` share one
//! compilation. An entry records its name-resolution dependencies
//! ([`tdp_exec::PhysicalPlan::function_names`]); a session that has
//! locally registered any of those names cannot use the shared entry
//! (its resolution may differ) and compiles into a session-local overlay
//! instead. Validity is checked exactly like the PR 2 session cache:
//! engine-wide UDF epoch plus per-scan schema validation against the
//! live catalog.
//!
//! ## Lock poisoning
//!
//! Engine locks recover from poisoning (`unwrap_or_else(|e|
//! e.into_inner())`) rather than propagate it: every critical section
//! swaps complete values (an `Arc`'d plan, a registry entry), so a
//! panicked worker cannot leave torn state behind — and must not wedge
//! every other session sharing the engine. The catalog and kernel cache
//! follow the same policy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use tdp_exec::{
    AccessPathCounters, AccessPathStats, KernelCache, ParamConstraint, PhysicalPlan, ScalarUdf,
    SharedUdfRegistry,
};
use tdp_mem::MemoryPool;
use tdp_sql::plan::LogicalPlan;
use tdp_storage::{Catalog, Table};

use crate::session::{PlanCacheStats, Session};

/// Upper bound on plans cached by the engine (and, separately, by each
/// session's local overlay). Eviction is per-entry LRU.
pub(crate) const PLAN_CACHE_CAP: usize = 256;

/// Engine-wide observability counters (see [`TdpEngine::stats`]).
///
/// `queries_served` counts executions through any session of this engine
/// (exact, profiled and differentiable runs alike). `queries_queued` /
/// `queries_rejected` are admission-control outcomes reported by a
/// serving frontend such as `tdp-server` — embedded single-session use
/// leaves them at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Sessions currently open.
    pub sessions_open: u64,
    /// Sessions ever opened.
    pub sessions_total: u64,
    /// Queries executed to completion or error (not admission-rejected).
    pub queries_served: u64,
    /// Queries that waited in an admission queue before executing.
    pub queries_queued: u64,
    /// Queries rejected by admission control (`server busy`).
    pub queries_rejected: u64,
    /// The engine's cross-session plan cache counters. Hits and misses
    /// accumulate over all sessions; `entries` counts engine-cache
    /// entries only (session-local overlays are not included).
    pub plan_cache: PlanCacheStats,
    /// Bytes currently reserved in the engine memory pool across every
    /// live query.
    pub mem_used_bytes: u64,
    /// Largest `mem_used_bytes` the pool ever reached.
    pub mem_high_water_bytes: u64,
    /// Configured `TDP_MEM_BUDGET` in bytes; `None` when unlimited.
    pub mem_budget_bytes: Option<u64>,
    /// Queries aborted because a memory charge breached the budget.
    pub mem_budget_aborts: u64,
}

impl EngineStats {
    /// Fraction of plan-cache lookups served from cache (0.0 when no
    /// lookups have happened yet).
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache.hits + self.plan_cache.misses;
        if total == 0 {
            0.0
        } else {
            self.plan_cache.hits as f64 / total as f64
        }
    }
}

/// A compiled plan shared across sessions, plus everything needed to
/// decide whether a later prepare (possibly from a different session)
/// may reuse it.
pub(crate) struct SharedPlan {
    pub(crate) logical: Arc<LogicalPlan>,
    pub(crate) physical: Arc<PhysicalPlan>,
    pub(crate) fingerprint: u64,
    /// Catalog version the scans were validated against (fast-forwarded
    /// on every revalidating hit).
    pub(crate) catalog_version: u64,
    /// Engine UDF epoch the plan was compiled under.
    pub(crate) udf_epoch: u64,
    /// `(table, column names)` for every base-table scan.
    pub(crate) scans: Vec<(String, Vec<String>)>,
    /// Lowercased function names the plan's compilation resolved — the
    /// entry is unusable for a session that registered any of them
    /// locally.
    pub(crate) functions: Vec<String>,
    pub(crate) param_constraints: Vec<ParamConstraint>,
    /// Monotonic recency stamp for LRU eviction.
    pub(crate) last_used: u64,
}

/// What a successful engine-cache lookup hands back to the session.
pub(crate) struct PlanHit {
    pub(crate) logical: Arc<LogicalPlan>,
    pub(crate) physical: Arc<PhysicalPlan>,
    pub(crate) fingerprint: u64,
    pub(crate) param_constraints: Vec<ParamConstraint>,
}

/// The shared, thread-safe engine: catalog (tables, zone maps and
/// vector indexes), cross-session plan cache, engine-registered
/// (thread-safe) UDFs, compiled chain-kernel cache, access-path and
/// observability counters. See the module docs for the engine/session
/// ownership picture.
pub struct TdpEngine {
    catalog: Catalog,
    /// Thread-safe scalar UDFs visible to every session
    /// ([`TdpEngine::register_udf_shared`]).
    shared_udfs: RwLock<SharedUdfRegistry>,
    /// Bumped on every engine-level function registration; cached plans
    /// compiled under an older epoch are invalid (registration can change
    /// name resolution and therefore plan shape).
    udf_epoch: AtomicU64,
    /// Cross-session compiled-plan cache keyed by normalized text.
    plan_cache: Mutex<HashMap<String, SharedPlan>>,
    cache_tick: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_evictions: AtomicU64,
    /// Compiled chain-kernel cache shared by sessions whose function
    /// resolution matches the engine's (sessions diverge to a private
    /// cache on their first local registration — see
    /// [`Session::register_udf`]).
    chain_kernels: Arc<KernelCache>,
    /// Engine-wide access-path counters: morsels pruned/scanned by zone
    /// maps and ANN operator executions, accumulated over every plain
    /// `run()` of every session (profiled runs absorb into it too).
    access: Arc<AccessPathCounters>,
    /// The engine memory pool every query's [`tdp_mem::MemoryReservation`]
    /// ledger charges against (`TDP_MEM_BUDGET`, default unlimited).
    memory: Arc<MemoryPool>,
    sessions_open: AtomicU64,
    sessions_total: AtomicU64,
    queries_served: AtomicU64,
    queries_queued: AtomicU64,
    queries_rejected: AtomicU64,
}

impl TdpEngine {
    /// Create a fresh engine. Returned as `Arc` because sessions hold a
    /// shared handle: `let engine = TdpEngine::new(); let s = engine.session();`
    pub fn new() -> Arc<TdpEngine> {
        TdpEngine::with_memory_pool(MemoryPool::from_env())
    }

    /// Engine with an explicit per-process memory budget in bytes —
    /// the programmatic twin of `TDP_MEM_BUDGET` (tests can't set env
    /// vars safely in parallel).
    pub fn with_memory_budget(budget: u64) -> Arc<TdpEngine> {
        TdpEngine::with_memory_pool(MemoryPool::with_budget(budget))
    }

    fn with_memory_pool(pool: MemoryPool) -> Arc<TdpEngine> {
        Arc::new(TdpEngine {
            catalog: Catalog::new(),
            shared_udfs: RwLock::new(SharedUdfRegistry::new()),
            udf_epoch: AtomicU64::new(0),
            plan_cache: Mutex::new(HashMap::new()),
            cache_tick: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            chain_kernels: Arc::new(KernelCache::new()),
            access: Arc::new(AccessPathCounters::default()),
            memory: Arc::new(pool),
            sessions_open: AtomicU64::new(0),
            sessions_total: AtomicU64::new(0),
            queries_served: AtomicU64::new(0),
            queries_queued: AtomicU64::new(0),
            queries_rejected: AtomicU64::new(0),
        })
    }

    /// Open a new session on this engine. Sessions are cheap (a handful
    /// of cells plus an `Arc` bump), single-threaded at the API surface,
    /// and deregister themselves from [`EngineStats::sessions_open`] on
    /// drop.
    pub fn session(self: &Arc<Self>) -> Session {
        self.sessions_open.fetch_add(1, Ordering::Relaxed);
        self.sessions_total.fetch_add(1, Ordering::Relaxed);
        Session::new(Arc::clone(self))
    }

    /// The shared table namespace.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Register (or replace) a table, making it visible to every
    /// session. Compiled chain kernels are epoch-invalidated; cached
    /// plans revalidate per-scan against the new schema.
    pub fn register_table(&self, table: Table) {
        self.catalog.register(table);
        self.chain_kernels.bump_epoch();
    }

    /// Append rows to a registered table (see [`Catalog::append`]):
    /// zone maps extend incrementally and vector indexes stay put,
    /// going stale until rebuilt. Compiled chain kernels are
    /// epoch-invalidated like any other catalog write. Returns `false`
    /// when the table is missing or the schemas disagree.
    pub fn append_rows(&self, name: &str, rows: &Table) -> bool {
        let appended = self.catalog.append(name, rows).is_some();
        if appended {
            self.chain_kernels.bump_epoch();
        }
        appended
    }

    /// Drop a table engine-wide; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self.catalog.drop_table(name);
        if existed {
            self.chain_kernels.bump_epoch();
        }
        existed
    }

    /// Register a thread-safe scalar UDF visible to **every** session of
    /// this engine (the engine-level home of
    /// [`Session::register_udf_parallel`]). Bumps the engine UDF epoch,
    /// invalidating cached plans and chain kernels, exactly like a
    /// session registration used to.
    pub fn register_udf_shared(&self, udf: Arc<dyn ScalarUdf + Send + Sync>) {
        self.shared_udfs
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .register_scalar(udf);
        self.udf_epoch.fetch_add(1, Ordering::Relaxed);
        self.chain_kernels.bump_epoch();
    }

    /// Snapshot of the engine-level function registry.
    pub fn shared_udfs(&self) -> SharedUdfRegistry {
        self.shared_udfs
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Current engine UDF-registration epoch.
    pub fn udf_epoch(&self) -> u64 {
        self.udf_epoch.load(Ordering::Relaxed)
    }

    /// The engine-shared compiled chain-kernel cache.
    pub fn chain_kernels(&self) -> &Arc<KernelCache> {
        &self.chain_kernels
    }

    /// Engine-wide observability counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            sessions_open: self.sessions_open.load(Ordering::Relaxed),
            sessions_total: self.sessions_total.load(Ordering::Relaxed),
            queries_served: self.queries_served.load(Ordering::Relaxed),
            queries_queued: self.queries_queued.load(Ordering::Relaxed),
            queries_rejected: self.queries_rejected.load(Ordering::Relaxed),
            plan_cache: self.plan_cache_stats(),
            mem_used_bytes: self.memory.used(),
            mem_high_water_bytes: self.memory.high_water(),
            mem_budget_bytes: self.memory.budget(),
            mem_budget_aborts: self.memory.budget_aborts(),
        }
    }

    /// The engine memory pool; queries open per-run
    /// [`tdp_mem::MemoryReservation`] ledgers against it, and a serving
    /// frontend reserves admission envelopes from it.
    pub fn memory_pool(&self) -> &Arc<MemoryPool> {
        &self.memory
    }

    /// Cross-session plan-cache counters. Hits/misses/evictions
    /// accumulate over every session (including hits on session-local
    /// overlay entries); `entries` counts engine-cache entries only.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            evictions: self.cache_evictions.load(Ordering::Relaxed),
            entries: self
                .plan_cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len(),
        }
    }

    /// Drop every engine-cached compiled plan (counters keep
    /// accumulating; session overlays are cleared by
    /// [`Session::clear_plan_cache`]).
    pub fn clear_plan_cache(&self) {
        self.plan_cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Record an admission-queue wait (frontend observability hook).
    pub fn note_query_queued(&self) {
        self.queries_queued.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an admission rejection (frontend observability hook).
    pub fn note_query_rejected(&self) {
        self.queries_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_query_served(&self) {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_session_closed(&self) {
        self.sessions_open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn note_plan_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_plan_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Session overlays report their LRU evictions here so the
    /// engine-wide counters cover both tiers.
    pub(crate) fn note_plan_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn tick(&self) -> u64 {
        self.cache_tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Whether every `(table, schema)` a cached plan was compiled against
    /// still matches the live catalog.
    pub(crate) fn scans_unchanged(&self, scans: &[(String, Vec<String>)]) -> bool {
        scans.iter().all(|(table, expected)| {
            self.catalog.get(table).is_some_and(|t| {
                let live = t.columns();
                live.len() == expected.len()
                    && live
                        .iter()
                        .zip(expected)
                        .all(|(c, e)| c.name.eq_ignore_ascii_case(e))
            })
        })
    }

    /// Look up a shared plan for `key`, valid for a session whose local
    /// registry is `local_udfs`. Counts a hit and refreshes recency on
    /// success; a miss is counted by the caller once overlay and engine
    /// lookups have both failed.
    pub(crate) fn cached_plan(
        &self,
        key: &str,
        engine_epoch: u64,
        catalog_version: u64,
        local_udfs: &tdp_exec::UdfRegistry,
    ) -> Option<PlanHit> {
        let mut cache = self.plan_cache.lock().unwrap_or_else(|e| e.into_inner());
        let entry = cache.get(key)?;
        // The entry must have been compiled under the current engine
        // registration epoch, against schemas that still hold, by a
        // resolution this session agrees with (none of the plan's
        // function names registered locally).
        let resolution_matches = entry.udf_epoch == engine_epoch
            && !entry
                .functions
                .iter()
                .any(|n| local_udfs.is_scalar(n) || local_udfs.is_table_fn(n));
        if !resolution_matches {
            return None;
        }
        if entry.catalog_version != catalog_version {
            // Dropping the lock for the schema walk would allow the entry
            // to be evicted mid-check; the walk is cheap (name
            // comparisons), so hold it.
            if !self.scans_unchanged(&entry.scans) {
                return None;
            }
        }
        let tick = self.cache_tick.fetch_add(1, Ordering::Relaxed) + 1;
        let entry = cache.get_mut(key).expect("present above");
        entry.catalog_version = catalog_version;
        entry.last_used = tick;
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(PlanHit {
            logical: Arc::clone(&entry.logical),
            physical: Arc::clone(&entry.physical),
            fingerprint: entry.fingerprint,
            param_constraints: entry.param_constraints.clone(),
        })
    }

    /// Insert a freshly compiled shared plan, evicting the stalest entry
    /// at capacity. Two sessions racing to compile the same statement
    /// both insert; the second replaces the first with an identical plan.
    pub(crate) fn store_plan(&self, key: String, plan: SharedPlan) {
        let mut cache = self.plan_cache.lock().unwrap_or_else(|e| e.into_inner());
        if cache.len() >= PLAN_CACHE_CAP && !cache.contains_key(&key) {
            if let Some(oldest) = cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                cache.remove(&oldest);
                self.cache_evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        cache.insert(key, plan);
    }

    /// Snapshot of the engine-wide access-path counters: how many
    /// morsels zone-map pruning skipped vs. actually scanned (for
    /// pruning-eligible scans), and how many ANN top-k operator
    /// executions ran. Monotonic over the engine's lifetime.
    pub fn access_path_stats(&self) -> AccessPathStats {
        self.access.snapshot()
    }

    /// The shared counter cell itself — handed to [`ExecContext`]s so
    /// executions accumulate in place.
    pub(crate) fn access_counters(&self) -> &Arc<AccessPathCounters> {
        &self.access
    }
}

impl std::fmt::Debug for TdpEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TdpEngine")
            .field("tables", &self.catalog.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_storage::TableBuilder;

    /// The compile-time contract of the split: the engine (with
    /// everything it owns — catalog, plan cache, shared registry, kernel
    /// cache, vector indexes) crosses threads freely.
    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TdpEngine>();
        assert_send_sync::<EngineStats>();
        assert_send_sync::<SharedPlan>();
    }

    #[test]
    fn sessions_register_and_deregister() {
        let engine = TdpEngine::new();
        assert_eq!(engine.stats().sessions_open, 0);
        let a = engine.session();
        let b = engine.session();
        assert_eq!(engine.stats().sessions_open, 2);
        assert_eq!(engine.stats().sessions_total, 2);
        drop(a);
        assert_eq!(engine.stats().sessions_open, 1);
        drop(b);
        let stats = engine.stats();
        assert_eq!(stats.sessions_open, 0);
        assert_eq!(stats.sessions_total, 2, "total never decreases");
    }

    #[test]
    fn engine_catalog_is_shared_between_sessions() {
        let engine = TdpEngine::new();
        let a = engine.session();
        let b = engine.session();
        a.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        assert_eq!(
            b.query("SELECT COUNT(*) FROM t")
                .unwrap()
                .run()
                .unwrap()
                .rows(),
            1,
            "session B sees session A's table"
        );
        assert!(b.drop_table("t"));
        assert!(a.catalog().get("t").is_none());
    }

    #[test]
    fn concurrent_sessions_from_many_threads() {
        let engine = TdpEngine::new();
        engine.register_table(
            TableBuilder::new()
                .col_f32("v", (0..100).map(|i| i as f32).collect())
                .build("nums"),
        );
        // Warm the cache before spawning: concurrent first-compilations
        // legitimately race (both threads can miss before either
        // stores), which would make the hit count nondeterministic.
        engine
            .session()
            .prepare("SELECT COUNT(*) FROM nums WHERE v >= ?")
            .unwrap();
        let mut handles = Vec::new();
        for i in 0..8 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let session = engine.session();
                let threshold = (i * 10) as f64;
                let p = session
                    .prepare("SELECT COUNT(*) FROM nums WHERE v >= ?")
                    .unwrap();
                let out = p
                    .bind(tdp_exec::ParamValues::new().number(threshold))
                    .unwrap()
                    .run()
                    .unwrap();
                out.column("COUNT(*)").unwrap().data.decode_i64().to_vec()[0]
            }));
        }
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap(), 100 - (i as i64) * 10);
        }
        let stats = engine.stats();
        assert_eq!(stats.sessions_open, 0);
        assert_eq!(stats.queries_served, 8);
        assert_eq!(
            stats.plan_cache.hits, 8,
            "the normalized statement is shared across sessions: {stats:?}"
        );
        assert_eq!(stats.plan_cache.misses, 1);
        assert!(stats.plan_cache_hit_rate() > 0.5);
    }

    #[test]
    fn hit_rate_is_zero_without_lookups() {
        let engine = TdpEngine::new();
        assert_eq!(engine.stats().plan_cache_hit_rate(), 0.0);
    }
}
