//! Vector-index management on a TDP session.
//!
//! The paper's §5.1 runs top-k image search as plain SQL (`ORDER BY score
//! DESC LIMIT 2`) and notes that approximate indexing à la Milvus is being
//! integrated to accelerate exactly that query shape. This module is that
//! integration's management surface: building flat (exact) and IVF-Flat
//! (approximate) indexes over embedding columns, plus a direct
//! `vector_topk` fast path the examples/benches use.
//!
//! Since PR 8 the indexes themselves live in the **catalog**
//! ([`tdp_storage::Catalog::register_vector_index`]), next to the tables
//! they cover — so every session of an engine sees them, table writes
//! invalidate them, and the physical planner's ANN lowering
//! (`ORDER BY distance(col, ?) LIMIT k` → `AnnTopK`) finds them by
//! `table.column` lookup at execution time.

use tdp_index::{FlatIndex, Hit, IvfFlatIndex, IvfParams, Metric};
use tdp_storage::{VectorIndex, VectorIndexEntry};
use tdp_tensor::{F32Tensor, Rng64};

use crate::error::TdpError;
use crate::session::Session;

/// Which physical index to build.
#[derive(Debug, Clone, Copy)]
pub enum IndexKind {
    /// Brute-force scan (exact; no training step).
    Flat,
    /// Inverted-file with flat storage; approximate, trained by k-means.
    /// `nprobe` is the probe width registered for query time.
    IvfFlat(IvfParams, usize),
}

impl Session {
    /// Build (or rebuild) a vector index over an embedding column and
    /// register it in the catalog under `name`.
    ///
    /// The column must hold one vector per row (a 2-d tensor). Index
    /// construction is deterministic for a given `seed`. Any write to
    /// the table invalidates the index; queries planned against a stale
    /// entry fall back to the exact flat path.
    pub fn create_named_vector_index(
        &self,
        name: &str,
        table: &str,
        column: &str,
        metric: Metric,
        kind: IndexKind,
        seed: u64,
    ) -> Result<(), TdpError> {
        let t = self
            .catalog()
            .get(table)
            .ok_or_else(|| TdpError::Session(format!("unknown table '{table}'")))?;
        let col = t.column(column).ok_or_else(|| {
            TdpError::Session(format!("table '{table}' has no column '{column}'"))
        })?;
        let data = col.data.decode_f32();
        if data.ndim() != 2 {
            return Err(TdpError::Session(format!(
                "vector index needs a [n, d] embedding column; '{column}' rows have shape {:?}",
                &data.shape()[1..]
            )));
        }
        let rows = t.rows();
        let index = match kind {
            IndexKind::Flat => VectorIndex::Flat(FlatIndex::build(data, metric)),
            IndexKind::IvfFlat(params, nprobe) => {
                let nlist = params.nlist;
                let mut rng = Rng64::new(seed);
                VectorIndex::Ivf {
                    index: IvfFlatIndex::train(data, metric, params, &mut rng),
                    nlist,
                    nprobe: nprobe.max(1),
                }
            }
        };
        self.catalog().register_vector_index(VectorIndexEntry {
            name: name.to_owned(),
            table: table.to_owned(),
            column: column.to_owned(),
            metric,
            rows,
            index,
        });
        // Index availability changes access-path choice; cached physical
        // plans may now lower differently.
        self.clear_plan_cache();
        self.engine().clear_plan_cache();
        Ok(())
    }

    /// [`Self::create_named_vector_index`] with the conventional
    /// `<table>_<column>_idx` name.
    pub fn create_vector_index(
        &self,
        table: &str,
        column: &str,
        metric: Metric,
        kind: IndexKind,
        seed: u64,
    ) -> Result<(), TdpError> {
        let name = format!("{table}_{column}_idx");
        self.create_named_vector_index(&name, table, column, metric, kind, seed)
    }

    /// Drop the index covering `table.column`; returns whether it existed.
    pub fn drop_vector_index(&self, table: &str, column: &str) -> bool {
        let Some(entry) = self.catalog().vector_index(table, column) else {
            return false;
        };
        let dropped = self.catalog().drop_vector_index(&entry.name);
        if dropped {
            self.clear_plan_cache();
            self.engine().clear_plan_cache();
        }
        dropped
    }

    /// Top-k search against a previously created index. `nprobe`
    /// overrides the registered probe width for IVF indexes (useful for
    /// sweeping the recall/latency trade-off) and is ignored by flat
    /// ones.
    pub fn vector_topk(
        &self,
        table: &str,
        column: &str,
        query: &F32Tensor,
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Hit>, TdpError> {
        let entry = self.catalog().vector_index(table, column).ok_or_else(|| {
            TdpError::Session(format!(
                "no vector index on {table}.{column}; call create_vector_index first"
            ))
        })?;
        Ok(match &entry.index {
            VectorIndex::Flat(f) => f.search(query, k),
            VectorIndex::Ivf { index, .. } => index.search(query, k, nprobe),
        })
    }

    /// Whether an index exists for `table.column`.
    pub fn has_vector_index(&self, table: &str, column: &str) -> bool {
        self.catalog().vector_index(table, column).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Tdp;
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    fn embeddings_table() -> tdp_storage::Table {
        // 3 unit vectors along distinct axes.
        let data = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        TableBuilder::new().col_tensor("emb", data).build("vecs")
    }

    #[test]
    fn flat_index_round_trip() {
        let tdp = Tdp::new();
        tdp.register_table(embeddings_table());
        tdp.create_vector_index("vecs", "emb", Metric::Cosine, IndexKind::Flat, 0)
            .unwrap();
        assert!(tdp.has_vector_index("vecs", "emb"));
        let hits = tdp
            .vector_topk(
                "vecs",
                "emb",
                &Tensor::from_vec(vec![0.9, 0.1, 0.0], &[3]),
                1,
                1,
            )
            .unwrap();
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn ivf_index_round_trip() {
        let tdp = Tdp::new();
        let mut rng = Rng64::new(8);
        let data = F32Tensor::randn(&[128, 8], 0.0, 1.0, &mut rng);
        tdp.register_table(TableBuilder::new().col_tensor("emb", data).build("vecs"));
        tdp.create_vector_index(
            "vecs",
            "emb",
            Metric::L2,
            IndexKind::IvfFlat(IvfParams::new(8), 8),
            42,
        )
        .unwrap();
        let q = F32Tensor::randn(&[8], 0.0, 1.0, &mut rng);
        let hits = tdp.vector_topk("vecs", "emb", &q, 5, 8).unwrap();
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn errors_on_missing_table_column_or_index() {
        let tdp = Tdp::new();
        assert!(matches!(
            tdp.create_vector_index("nope", "emb", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
        tdp.register_table(embeddings_table());
        assert!(matches!(
            tdp.create_vector_index("vecs", "nope", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
        assert!(matches!(
            tdp.vector_topk("vecs", "emb", &F32Tensor::zeros(&[3]), 1, 1),
            Err(TdpError::Session(_))
        ));
    }

    #[test]
    fn rejects_non_vector_columns() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        assert!(matches!(
            tdp.create_vector_index("t", "x", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
    }

    #[test]
    fn drop_vector_index_works() {
        let tdp = Tdp::new();
        tdp.register_table(embeddings_table());
        tdp.create_vector_index("vecs", "emb", Metric::Cosine, IndexKind::Flat, 0)
            .unwrap();
        assert!(tdp.drop_vector_index("vecs", "emb"));
        assert!(!tdp.drop_vector_index("vecs", "emb"));
        assert!(!tdp.has_vector_index("vecs", "emb"));
    }

    #[test]
    fn table_write_invalidates_index() {
        let tdp = Tdp::new();
        tdp.register_table(embeddings_table());
        tdp.create_vector_index("vecs", "emb", Metric::L2, IndexKind::Flat, 0)
            .unwrap();
        assert!(tdp.has_vector_index("vecs", "emb"));
        tdp.register_table(embeddings_table());
        assert!(
            !tdp.has_vector_index("vecs", "emb"),
            "re-registration invalidates"
        );
    }
}
