//! Vector-index management on a TDP session.
//!
//! The paper's §5.1 runs top-k image search as plain SQL (`ORDER BY score
//! DESC LIMIT 2`) and notes that approximate indexing à la Milvus is being
//! integrated to accelerate exactly that query shape. This module is that
//! integration: a registry of vector indexes over embedding columns, with
//! a flat (exact) and an IVF-Flat (approximate) build, and a
//! `vector_topk` fast path the examples/benches use instead of the full
//! ORDER-BY scan. Like the catalog the registry lives on the engine —
//! indexes are built from shared tables, so every session of an engine
//! sees them.

use std::collections::HashMap;

use tdp_index::{FlatIndex, Hit, IvfFlatIndex, IvfParams, Metric};
use tdp_tensor::{F32Tensor, Rng64};

use crate::error::TdpError;
use crate::session::Session;

/// Which physical index to build.
#[derive(Debug, Clone, Copy)]
pub enum IndexKind {
    /// Brute-force scan (exact; no training step).
    Flat,
    /// Inverted-file with flat storage; approximate, trained by k-means.
    IvfFlat(IvfParams),
}

/// One registered index.
enum BuiltIndex {
    Flat(FlatIndex),
    Ivf(IvfFlatIndex),
}

impl BuiltIndex {
    fn search(&self, query: &F32Tensor, k: usize, nprobe: usize) -> Vec<Hit> {
        match self {
            BuiltIndex::Flat(ix) => ix.search(query, k),
            BuiltIndex::Ivf(ix) => ix.search(query, k, nprobe),
        }
    }
}

/// Engine-level registry keyed by `table.column`.
#[derive(Default)]
pub(crate) struct VectorIndexes {
    map: HashMap<String, BuiltIndex>,
}

fn key(table: &str, column: &str) -> String {
    format!("{table}.{column}")
}

impl Session {
    /// Build (or rebuild) a vector index over an embedding column.
    ///
    /// The column must hold one vector per row (a 2-d tensor). Index
    /// construction is deterministic for a given `seed`.
    pub fn create_vector_index(
        &self,
        table: &str,
        column: &str,
        metric: Metric,
        kind: IndexKind,
        seed: u64,
    ) -> Result<(), TdpError> {
        let t = self
            .catalog()
            .get(table)
            .ok_or_else(|| TdpError::Session(format!("unknown table '{table}'")))?;
        let col = t.column(column).ok_or_else(|| {
            TdpError::Session(format!("table '{table}' has no column '{column}'"))
        })?;
        let data = col.data.decode_f32();
        if data.ndim() != 2 {
            return Err(TdpError::Session(format!(
                "vector index needs a [n, d] embedding column; '{column}' rows have shape {:?}",
                &data.shape()[1..]
            )));
        }
        let built = match kind {
            IndexKind::Flat => BuiltIndex::Flat(FlatIndex::build(data, metric)),
            IndexKind::IvfFlat(params) => {
                let mut rng = Rng64::new(seed);
                BuiltIndex::Ivf(IvfFlatIndex::train(data, metric, params, &mut rng))
            }
        };
        self.vector_indexes_mut(|m| {
            m.map.insert(key(table, column), built);
        });
        Ok(())
    }

    /// Drop an index; returns whether it existed.
    pub fn drop_vector_index(&self, table: &str, column: &str) -> bool {
        self.vector_indexes_mut(|m| m.map.remove(&key(table, column)).is_some())
    }

    /// Top-k search against a previously created index. `nprobe` is
    /// ignored by flat indexes.
    pub fn vector_topk(
        &self,
        table: &str,
        column: &str,
        query: &F32Tensor,
        k: usize,
        nprobe: usize,
    ) -> Result<Vec<Hit>, TdpError> {
        self.with_vector_indexes(|m| {
            m.map
                .get(&key(table, column))
                .map(|ix| ix.search(query, k, nprobe))
                .ok_or_else(|| {
                    TdpError::Session(format!(
                        "no vector index on {table}.{column}; call create_vector_index first"
                    ))
                })
        })
    }

    /// Whether an index exists for `table.column`.
    pub fn has_vector_index(&self, table: &str, column: &str) -> bool {
        self.with_vector_indexes(|m| m.map.contains_key(&key(table, column)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Tdp;
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    fn embeddings_table() -> tdp_storage::Table {
        // 3 unit vectors along distinct axes.
        let data = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        TableBuilder::new().col_tensor("emb", data).build("vecs")
    }

    #[test]
    fn flat_index_round_trip() {
        let tdp = Tdp::new();
        tdp.register_table(embeddings_table());
        tdp.create_vector_index("vecs", "emb", Metric::Cosine, IndexKind::Flat, 0)
            .unwrap();
        assert!(tdp.has_vector_index("vecs", "emb"));
        let hits = tdp
            .vector_topk(
                "vecs",
                "emb",
                &Tensor::from_vec(vec![0.9, 0.1, 0.0], &[3]),
                1,
                1,
            )
            .unwrap();
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn ivf_index_round_trip() {
        let tdp = Tdp::new();
        let mut rng = Rng64::new(8);
        let data = F32Tensor::randn(&[128, 8], 0.0, 1.0, &mut rng);
        tdp.register_table(TableBuilder::new().col_tensor("emb", data).build("vecs"));
        tdp.create_vector_index(
            "vecs",
            "emb",
            Metric::L2,
            IndexKind::IvfFlat(IvfParams::new(8)),
            42,
        )
        .unwrap();
        let q = F32Tensor::randn(&[8], 0.0, 1.0, &mut rng);
        let hits = tdp.vector_topk("vecs", "emb", &q, 5, 8).unwrap();
        assert_eq!(hits.len(), 5);
    }

    #[test]
    fn errors_on_missing_table_column_or_index() {
        let tdp = Tdp::new();
        assert!(matches!(
            tdp.create_vector_index("nope", "emb", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
        tdp.register_table(embeddings_table());
        assert!(matches!(
            tdp.create_vector_index("vecs", "nope", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
        assert!(matches!(
            tdp.vector_topk("vecs", "emb", &F32Tensor::zeros(&[3]), 1, 1),
            Err(TdpError::Session(_))
        ));
    }

    #[test]
    fn rejects_non_vector_columns() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        assert!(matches!(
            tdp.create_vector_index("t", "x", Metric::L2, IndexKind::Flat, 0),
            Err(TdpError::Session(_))
        ));
    }

    #[test]
    fn drop_vector_index_works() {
        let tdp = Tdp::new();
        tdp.register_table(embeddings_table());
        tdp.create_vector_index("vecs", "emb", Metric::Cosine, IndexKind::Flat, 0)
            .unwrap();
        assert!(tdp.drop_vector_index("vecs", "emb"));
        assert!(!tdp.drop_vector_index("vecs", "emb"));
        assert!(!tdp.has_vector_index("vecs", "emb"));
    }
}
