//! # tdp-core — The Tensor Data Platform
//!
//! The public face of `tdp-rs`: an AI-centric analytical database whose
//! engine is built *on* a tensor computation runtime rather than calling
//! out to one (CIDR 2023, "The Tensor Data Platform: Towards an AI-centric
//! Database System").
//!
//! The system is split into a shared, thread-safe [`TdpEngine`] (catalog,
//! cross-session plan cache, engine-registered functions, compiled chain
//! kernels, vector indexes) and cheap per-user [`Session`] handles (bound
//! parameters, `Rc`-based trainable state, device and scheduler knobs,
//! session-local functions). [`Tdp`] is the embedded single-user facade —
//! one engine plus one session, `Deref`ing to [`Session`] — so the
//! original API keeps working unchanged; multi-user frontends (such as
//! the `tdp-server` crate) open one session per connection over a shared
//! engine.
//!
//! A session compiles SQL into [`CompiledQuery`] objects that behave
//! like PyTorch models:
//!
//! * they run on a chosen [`Device`] (CPU or the simulated accelerator),
//! * they can be re-run after re-registering inputs (the training-loop
//!   pattern of paper Listing 5),
//! * compiled with [`QueryConfig::trainable`], their plan lowers to
//!   differentiable *soft* operators and [`CompiledQuery::parameters`]
//!   exposes every trainable parameter embedded in the query's functions,
//!   ready for an optimizer,
//! * they can be profiled per-operator ([`CompiledQuery::run_profiled`]).
//!
//! Sessions also manage vector indexes over embedding columns
//! ([`Session::create_vector_index`] / [`Session::vector_topk`] — flat or
//! IVF-Flat), persist tables in the TDPF columnar format
//! ([`Session::save_table`] / [`Session::register_file`], or
//! whole-catalog snapshots via [`Session::save_catalog`] /
//! [`Session::open_catalog`]), and render result rows to media formats
//! ([`render`]: PPM images and WAV audio — paper Example 2.3's output
//! story).
//!
//! ```
//! use tdp_core::Tdp;
//! use tdp_storage::TableBuilder;
//!
//! let tdp = Tdp::new();
//! tdp.register_table(
//!     TableBuilder::new()
//!         .col_f32("Digits", vec![3.0, 3.0, 7.0])
//!         .col_str("Sizes", &["small", "large", "small"])
//!         .build("numbers"),
//! );
//! let q = tdp.query("SELECT Digits, Sizes, COUNT(*) FROM numbers GROUP BY Digits, Sizes").unwrap();
//! let result = q.run().unwrap();
//! assert_eq!(result.rows(), 3);
//! ```

pub mod compiled;
pub mod engine;
pub mod error;
pub mod render;
pub mod session;
pub mod vector;

pub use compiled::{BoundQuery, CompiledQuery, Prepared, QueryConfig};
pub use engine::{EngineStats, TdpEngine};
pub use error::TdpError;
pub use session::{PlanCacheStats, Session, StatementOutcome, Tdp};
pub use tdp_exec::{
    AccessPathStats, ArgType, ChainKernelStats, FunctionSpec, OutputSchema, ParamValue,
    ParamValues, ScalarUdf, SharedUdfRegistry, TableFunction, Volatility,
};
pub use vector::IndexKind;

/// Compilation flags mirroring the paper's `tdp.constants`.
pub mod constants {
    /// Lower the plan to differentiable operators (paper Listing 6).
    pub const TRAINABLE: &str = "TRAINABLE";
}

// The substrate crates, re-exported so applications depend on one crate.
pub use tdp_autodiff as autodiff;
pub use tdp_encoding as encoding;
pub use tdp_exec as exec;
pub use tdp_index as index;
pub use tdp_nn as nn;
pub use tdp_sql as sql;
pub use tdp_storage as storage;
pub use tdp_tensor as tensor;

pub use tdp_tensor::Device;
