//! Prepared statements and bound queries: the "query as a PyTorch model"
//! object, split into its compile-time and run-time halves.
//!
//! [`crate::Session::prepare`] parses, auto-parameterises, optimises and
//! lowers SQL **once** into a [`Prepared`] statement — the shareable,
//! value-free compilation. [`Prepared::bind`] attaches parameter values
//! (a [`ParamValues`] built with the typed [`ParamValue`] constructors)
//! and yields a [`BoundQuery`], which executes through the exact,
//! profiled or differentiable executors. Training loops prepare once and
//! re-bind per iteration; `Session::query` keeps working by desugaring
//! to a zero-parameter prepare + bind.

use std::sync::Arc;

use tdp_autodiff::Var;
use tdp_exec::{Batch, ColumnData, ExecContext, ParamValue, ParamValues, PhysicalPlan};
use tdp_sql::ast::Expr;
use tdp_sql::plan::LogicalPlan;
use tdp_storage::Table;
use tdp_tensor::{Device, F32Tensor};

use crate::error::TdpError;
use crate::session::Session;

/// Per-query compilation configuration (the paper's `extra_config`).
#[derive(Debug, Clone, Copy)]
pub struct QueryConfig {
    pub device: Device,
    /// Lower to differentiable soft operators (paper Listing 6:
    /// `{tdp.constants.TRAINABLE: True}`).
    pub trainable: bool,
    /// Temperature of relaxed predicates in trainable mode.
    pub temperature: f32,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            device: Device::Cpu,
            trainable: false,
            temperature: 0.1,
        }
    }
}

impl QueryConfig {
    pub fn device(mut self, device: Device) -> QueryConfig {
        self.device = device;
        self
    }

    pub fn trainable(mut self, trainable: bool) -> QueryConfig {
        self.trainable = trainable;
        self
    }

    pub fn temperature(mut self, temperature: f32) -> QueryConfig {
        assert!(temperature > 0.0, "temperature must be positive");
        self.temperature = temperature;
        self
    }
}

/// A prepared statement: SQL compiled into a slot-resolved
/// [`PhysicalPlan`] with `$n` parameter slots for its placeholders *and*
/// for every literal the session auto-parameterised. Binding is cheap —
/// two `Arc` clones and a values vector — so the prepare-once /
/// bind-per-iteration loop pays kernel dispatch only.
pub struct Prepared<'s> {
    session: &'s Session,
    plan: Arc<LogicalPlan>,
    physical: Arc<PhysicalPlan>,
    fingerprint: u64,
    config: QueryConfig,
    /// Slots the caller must supply: `?` / `$n` placeholders in the text.
    explicit_params: usize,
    /// Literals extracted at prepare time, bound automatically after the
    /// explicit slots.
    implicit: Vec<ParamValue>,
    /// Binding-dependent argument-type obligations of declared-signature
    /// calls, precomputed at compile time so [`Prepared::bind`] checks
    /// O(constraints) instead of re-walking the plan.
    param_constraints: Vec<tdp_exec::ParamConstraint>,
}

impl<'s> Prepared<'s> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        session: &'s Session,
        plan: Arc<LogicalPlan>,
        physical: Arc<PhysicalPlan>,
        fingerprint: u64,
        config: QueryConfig,
        explicit_params: usize,
        implicit: Vec<ParamValue>,
        param_constraints: Vec<tdp_exec::ParamConstraint>,
    ) -> Self {
        Prepared {
            session,
            plan,
            physical,
            fingerprint,
            config,
            explicit_params,
            implicit,
            param_constraints,
        }
    }

    /// Number of values [`Prepared::bind`] expects (explicit placeholders
    /// only; auto-extracted literals are bound behind the scenes).
    pub fn param_count(&self) -> usize {
        self.explicit_params
    }

    /// Attach parameter values, producing an executable [`BoundQuery`].
    /// The binding must cover exactly the statement's explicit
    /// placeholders. Calls to functions with declared signatures are
    /// re-checked against the bound value types here, so a wrongly-typed
    /// binding fails at bind time instead of mid-execution.
    pub fn bind(&self, params: ParamValues) -> Result<BoundQuery<'s>, TdpError> {
        if params.len() != self.explicit_params {
            return Err(TdpError::Session(format!(
                "statement expects {} parameter(s), {} bound",
                self.explicit_params,
                params.len()
            )));
        }
        let mut all = params;
        for v in &self.implicit {
            all.push(v.clone());
        }
        // Every slot now has a value; checking the precomputed
        // constraints is O(declared param args), not a plan walk.
        tdp_exec::validate_param_constraints(&self.param_constraints, &|idx| {
            crate::session::param_static_kind(all.get(idx))
        })?;
        Ok(BoundQuery {
            session: self.session,
            plan: Arc::clone(&self.plan),
            physical: Arc::clone(&self.physical),
            fingerprint: self.fingerprint,
            config: self.config,
            params: all,
        })
    }

    /// The optimised logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The lowered physical plan (slots resolved, functions bound).
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Stable fingerprint of the physical plan. Literal-invariant: SQL
    /// texts differing only in constants prepare to the same value.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    pub fn config(&self) -> QueryConfig {
        self.config
    }

    /// EXPLAIN-style rendering with `$n` parameter slots and a trailing
    /// `params:` line. Pipelines that will take
    /// the sequential fallback are annotated with the reason (explicit
    /// placeholders are treated as scalar until bound — a tensor binding
    /// shows up in [`BoundQuery::explain`]).
    pub fn explain(&self) -> String {
        let total = self.explicit_params + self.implicit.len();
        let trailer = if total == 0 {
            "params: none".to_string()
        } else {
            format!(
                "params: {total} [{}] ({} explicit, {} auto-extracted)",
                param_slots(&self.physical).join(", "),
                self.explicit_params,
                self.implicit.len()
            )
        };
        let udfs = self.session.udfs_snapshot();
        let mut params = ParamValues::new();
        for _ in 0..self.explicit_params {
            params.push(ParamValue::Null);
        }
        for v in &self.implicit {
            params.push(v.clone());
        }
        let ctx = ExecContext::new(self.session.catalog(), &udfs)
            .with_params(params)
            .with_chain_kernels(self.session.chain_kernels_handle());
        render_explain(&self.plan, &self.physical, self.fingerprint, &trailer, &ctx)
    }

    /// Trainable parameters of the functions this statement references —
    /// available before binding so optimizers can be constructed once.
    pub fn parameters(&self) -> Vec<Var> {
        collect_plan_parameters(self.session, &self.plan)
    }

    /// Total trainable scalars across [`Prepared::parameters`].
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

impl std::fmt::Debug for Prepared<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("param_count", &self.explicit_params)
            .field("auto_params", &self.implicit.len())
            .finish_non_exhaustive()
    }
}

/// The physical plan's parameter slots rendered `$n`-style.
fn param_slots(physical: &PhysicalPlan) -> Vec<String> {
    physical
        .param_indices()
        .into_iter()
        .map(|i| format!("${}", i + 1))
        .collect()
}

/// Shared EXPLAIN rendering: logical tree, physical tree (with `$n`
/// slots and declared TVF schemas), the pipeline breakdown the morsel
/// scheduler will run (fused chains, sinks, barriers, and a
/// `[sequential: reason]` annotation on pipelines that fall back to the
/// whole-batch path), then a `params:` trailer listing the inferred slot
/// count and positions.
fn render_explain(
    plan: &LogicalPlan,
    physical: &PhysicalPlan,
    fingerprint: u64,
    params_trailer: &str,
    ctx: &ExecContext,
) -> String {
    format!(
        "== logical ==\n{}== physical (fingerprint {:016x}) ==\n{}== pipelines ==\n{}{params_trailer}\n",
        plan.explain(),
        fingerprint,
        physical.explain(),
        tdp_exec::pipeline::explain_ctx(physical, ctx)
    )
}

/// A compiled query with its parameter values attached. Like a compiled
/// PyTorch model it can be executed repeatedly (inputs are re-resolved
/// from the catalog on every run, so the Listing-5 pattern of
/// re-registering the input tensor each iteration works), moved across
/// devices at compile time, inspected via [`BoundQuery::explain`], and —
/// when trainable — differentiated end-to-end through
/// [`BoundQuery::run_diff`].
///
/// [`CompiledQuery`] is the historical name for the zero-parameter case
/// produced by [`Session::query`]; both are the same type.
pub struct BoundQuery<'s> {
    session: &'s Session,
    plan: Arc<LogicalPlan>,
    physical: Arc<PhysicalPlan>,
    fingerprint: u64,
    config: QueryConfig,
    params: ParamValues,
}

/// What [`Session::query`] returns: a [`BoundQuery`] whose binding came
/// from a zero-placeholder prepare.
pub type CompiledQuery<'s> = BoundQuery<'s>;

impl<'s> BoundQuery<'s> {
    /// The optimised logical plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// The lowered physical plan (slots resolved, functions bound).
    pub fn physical_plan(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Stable fingerprint of the physical plan; literal-invariant, so two
    /// queries differing only in constants (or bindings) share it — the
    /// plan-cache identity.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// EXPLAIN-style rendering: the optimised logical tree, the physical
    /// tree with resolved slots and `$n` parameters, the pipeline
    /// breakdown with sequential-fallback reasons resolved against this
    /// binding, and the `params:` trailer.
    pub fn explain(&self) -> String {
        let trailer = if self.params.is_empty() {
            "params: none".to_string()
        } else {
            format!(
                "params: {} [{}] (bound)",
                self.params.len(),
                param_slots(&self.physical).join(", ")
            )
        };
        let udfs = self.session.udfs_snapshot();
        let ctx = self.exec_context(&udfs, false);
        render_explain(&self.plan, &self.physical, self.fingerprint, &trailer, &ctx)
    }

    pub fn config(&self) -> QueryConfig {
        self.config
    }

    /// The values this query will run with (explicit then implicit).
    pub fn params(&self) -> &ParamValues {
        &self.params
    }

    fn exec_context<'a>(&self, udfs: &'a tdp_exec::UdfRegistry, trainable: bool) -> ExecContext<'a>
    where
        's: 'a,
    {
        ExecContext {
            catalog: self.session.catalog(),
            udfs,
            device: self.config.device,
            trainable,
            temperature: self.config.temperature,
            params: self.params.clone(),
            // The differentiable path is single-threaded (the autodiff
            // tape is Rc-based); exact runs use the session's pool.
            threads: if trainable { 1 } else { self.session.threads() },
            morsel_rows: self.session.morsel_rows(),
            partitions: self.session.partitions(),
            // Chain kernels only serve the exact path; the differentiable
            // interpreter has its own soft kernels.
            chain_kernels: if trainable {
                None
            } else {
                self.session.chain_kernels_handle()
            },
            zone_maps: self.session.zone_maps_enabled(),
            // Plain runs accumulate straight into the engine-wide
            // counters; run_profiled swaps in a private cell so the
            // profile reports this run alone.
            access: Arc::clone(self.session.engine().access_counters()),
            ivf_rebuild_after: self.session.ivf_rebuild_after(),
            // A fresh per-run ledger against the engine pool: charges
            // release when the run's guards drop, and a breach aborts
            // this query alone.
            memory: Arc::new(self.session.engine().memory_pool().reserve()),
        }
    }

    /// Execute with exact operators, producing a result table. Works for
    /// trainable queries too — this is the paper's inference-time swap of
    /// soft operators for exact ones.
    pub fn run(&self) -> Result<Table, TdpError> {
        self.session.engine().note_query_served();
        let udfs = self.session.udfs_snapshot();
        let ctx = self.exec_context(&udfs, false);
        let batch = tdp_exec::execute(&self.physical, &ctx)?;
        Ok(batch.to_table("result"))
    }

    /// Execute exactly while recording a per-operator profile — the
    /// paper's "profile the compiled query" story (§2) without leaving
    /// the engine. Returns the result table plus the profile.
    pub fn run_profiled(&self) -> Result<(Table, tdp_exec::QueryProfile), TdpError> {
        self.session.engine().note_query_served();
        let udfs = self.session.udfs_snapshot();
        let mut ctx = self.exec_context(&udfs, false);
        // A private counter cell isolates this run's access-path numbers
        // from concurrent sessions; absorbed into the engine-wide totals
        // afterwards so access_path_stats() still covers profiled runs.
        let access = Arc::new(tdp_exec::AccessPathCounters::default());
        ctx.access = Arc::clone(&access);
        let result = tdp_exec::execute_profiled(&self.physical, &ctx);
        self.session
            .engine()
            .access_counters()
            .absorb(access.snapshot());
        let (batch, profile) = result?;
        Ok((batch.to_table("result"), profile))
    }

    /// Execute the differentiable lowering, producing a batch whose
    /// differentiable columns carry the autodiff tape. Requires the query
    /// to have been compiled with [`QueryConfig::trainable`].
    pub fn run_diff(&self) -> Result<Batch, TdpError> {
        if !self.config.trainable {
            return Err(TdpError::Session(
                "query was not compiled with TRAINABLE; use run() or recompile".into(),
            ));
        }
        self.session.engine().note_query_served();
        let udfs = self.session.udfs_snapshot();
        let ctx = self.exec_context(&udfs, true);
        Ok(tdp_exec::execute_diff(&self.physical, &ctx)?)
    }

    /// Run the differentiable plan and return a single named column as a
    /// `Var` — the tensor the training loop computes its loss on.
    pub fn run_diff_column(&self, column: &str) -> Result<Var, TdpError> {
        let batch = self.run_diff()?;
        match batch.column(column)? {
            ColumnData::Diff(d) => Ok(d.var.clone()),
            ColumnData::Exact(_) => Err(TdpError::Session(format!(
                "column '{column}' is exact; no gradient flows through it"
            ))),
        }
    }

    /// Shorthand for the common count-supervised pattern: the `COUNT(*)`
    /// column of the differentiable result.
    pub fn run_counts(&self) -> Result<Var, TdpError> {
        self.run_diff_column("COUNT(*)")
    }

    /// All trainable parameters of the functions this query references —
    /// the argument to an optimizer (paper Listing 5:
    /// `Adam(compiled_query.parameters(), lr=0.01)`).
    pub fn parameters(&self) -> Vec<Var> {
        collect_plan_parameters(self.session, &self.plan)
    }

    /// Total trainable scalars across [`BoundQuery::parameters`].
    pub fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }
}

impl std::fmt::Debug for BoundQuery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundQuery")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("config", &self.config)
            .field("params", &self.params.len())
            .finish_non_exhaustive()
    }
}

/// Trainable parameters of every UDF/TVF a plan references, deduplicated
/// by autodiff node identity.
fn collect_plan_parameters(session: &Session, plan: &LogicalPlan) -> Vec<Var> {
    let mut names = Vec::new();
    collect_function_names(plan, &mut names);
    let udfs = session.udfs_snapshot();
    let mut params: Vec<Var> = Vec::new();
    for name in names {
        if let Ok(tvf) = udfs.table_fn(&name) {
            params.extend(tvf.parameters());
        }
        if let Ok(udf) = udfs.scalar(&name) {
            params.extend(udf.parameters());
        }
    }
    let mut seen = std::collections::HashSet::new();
    params.retain(|p| seen.insert(p.id()));
    params
}

fn collect_function_names(plan: &LogicalPlan, out: &mut Vec<String>) {
    match plan {
        LogicalPlan::TvfScan { name, .. } | LogicalPlan::TvfProject { name, .. } => {
            out.push(name.clone());
        }
        LogicalPlan::Filter { predicate, .. } => collect_expr_functions(predicate, out),
        LogicalPlan::Project { items, .. } => {
            for i in items {
                collect_expr_functions(&i.expr, out);
            }
        }
        LogicalPlan::Aggregate {
            aggregates,
            group_by,
            ..
        } => {
            for g in group_by {
                collect_expr_functions(g, out);
            }
            for a in aggregates {
                if let Some(e) = &a.arg {
                    collect_expr_functions(e, out);
                }
            }
        }
        LogicalPlan::Sort { keys, .. } => {
            for k in keys {
                collect_expr_functions(&k.expr, out);
            }
        }
        _ => {}
    }
    for child in plan.inputs() {
        collect_function_names(child, out);
    }
}

fn collect_expr_functions(expr: &Expr, out: &mut Vec<String>) {
    match expr {
        Expr::Func { name, args } => {
            out.push(name.clone());
            for a in args {
                collect_expr_functions(a, out);
            }
        }
        Expr::Binary { left, right, .. } => {
            collect_expr_functions(left, out);
            collect_expr_functions(right, out);
        }
        Expr::Unary { expr, .. } => collect_expr_functions(expr, out),
        Expr::Aggregate { arg: Some(a), .. } => collect_expr_functions(a, out),
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_expr_functions(o, out);
            }
            for (w, t) in branches {
                collect_expr_functions(w, out);
                collect_expr_functions(t, out);
            }
            if let Some(e) = else_expr {
                collect_expr_functions(e, out);
            }
        }
        Expr::InList { expr, list, .. } => {
            collect_expr_functions(expr, out);
            for i in list {
                collect_expr_functions(i, out);
            }
        }
        Expr::Like { expr, .. } => collect_expr_functions(expr, out),
        _ => {}
    }
}

/// Convenience: decode a named column of a result [`Table`] to f32.
pub fn column_f32(table: &Table, name: &str) -> Result<F32Tensor, TdpError> {
    table
        .column(name)
        .map(|c| c.data.decode_f32())
        .ok_or_else(|| TdpError::Session(format!("result has no column '{name}'")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Tdp;
    use std::sync::Arc;
    use tdp_exec::{DiffColumn, ExecError, TableFunction};
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    struct TinyClassifier {
        logits: Var,
    }

    impl TableFunction for TinyClassifier {
        fn name(&self) -> &str {
            "tiny"
        }
        fn invoke_table(&self, input: &Batch, ctx: &ExecContext) -> Result<Batch, ExecError> {
            let diff = self.invoke_table_diff(input, ctx)?;
            let mut out = Batch::new();
            for (name, col) in diff.columns() {
                out.push(name.clone(), ColumnData::Exact(col.to_exact()));
            }
            Ok(out)
        }
        fn invoke_table_diff(
            &self,
            _input: &Batch,
            _ctx: &ExecContext,
        ) -> Result<Batch, ExecError> {
            let mut out = Batch::new();
            out.push(
                "Label",
                ColumnData::Diff(DiffColumn::pe(self.logits.softmax(1), Tensor::arange(2))),
            );
            Ok(out)
        }
        fn parameters(&self) -> Vec<Var> {
            vec![self.logits.clone()]
        }
    }

    fn session_with_tvf() -> (Tdp, Var) {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![0.0, 1.0, 2.0])
                .build("rows"),
        );
        let logits = Var::param(Tensor::<f32>::zeros(&[3, 2]));
        tdp.register_tvf(Arc::new(TinyClassifier {
            logits: logits.clone(),
        }));
        (tdp, logits)
    }

    #[test]
    fn parameters_discovers_tvf_weights() {
        let (tdp, logits) = session_with_tvf();
        let q = tdp
            .query_with(
                "SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label",
                QueryConfig::default().trainable(true),
            )
            .unwrap();
        let params = q.parameters();
        assert_eq!(params.len(), 1);
        assert_eq!(params[0].id(), logits.id());
        assert_eq!(q.num_parameters(), 6);
        // The prepared statement exposes the same parameter surface.
        let prepared = tdp
            .prepare_with(
                "SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label",
                QueryConfig::default().trainable(true),
            )
            .unwrap();
        assert_eq!(prepared.num_parameters(), 6);
    }

    #[test]
    fn run_diff_requires_trainable_flag() {
        let (tdp, _) = session_with_tvf();
        let q = tdp
            .query("SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label")
            .unwrap();
        assert!(matches!(q.run_diff(), Err(TdpError::Session(_))));
        // Exact run still works for the same SQL.
        assert_eq!(
            q.run().unwrap().rows(),
            1,
            "all logits zero -> argmax class 0"
        );
    }

    #[test]
    fn run_counts_returns_the_count_var() {
        let (tdp, _) = session_with_tvf();
        let q = tdp
            .query_with(
                "SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label",
                QueryConfig::default().trainable(true),
            )
            .unwrap();
        let counts = q.run_counts().unwrap();
        assert_eq!(counts.shape(), vec![2]);
        let v = counts.value();
        assert!(
            (v.at(0) - 1.5).abs() < 1e-5,
            "uniform logits split rows evenly"
        );
    }

    #[test]
    fn explain_exposes_the_plan() {
        let (tdp, _) = session_with_tvf();
        let q = tdp
            .query("SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label")
            .unwrap();
        let text = q.explain();
        assert!(text.contains("TvfScan: tiny"));
        assert!(text.contains("Aggregate"));
        assert!(text.contains("params:"), "{text}");
    }

    #[test]
    fn prepared_bind_checks_arity() {
        let (tdp, _) = session_with_tvf();
        let p = tdp
            .prepare("SELECT COUNT(*) FROM rows WHERE x > ?")
            .unwrap();
        assert_eq!(p.param_count(), 1);
        assert!(matches!(
            p.bind(ParamValues::new()),
            Err(TdpError::Session(_))
        ));
        assert!(matches!(
            p.bind(ParamValues::new().number(1.0).number(2.0)),
            Err(TdpError::Session(_))
        ));
        let out = p
            .bind(ParamValues::new().number(0.5))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(
            out.column("COUNT(*)").unwrap().data.decode_i64().to_vec(),
            vec![2]
        );
    }

    #[test]
    fn run_profiled_returns_result_and_profile() {
        let (tdp, _) = session_with_tvf();
        let q = tdp
            .query("SELECT Label, COUNT(*) FROM tiny(rows) GROUP BY Label")
            .unwrap();
        let (table, profile) = q.run_profiled().unwrap();
        assert_eq!(table.rows(), q.run().unwrap().rows());
        assert!(profile.ops.len() >= 3, "{}", profile.pretty());
        assert!(profile.pretty().contains("TvfScan: tiny"));
        assert!(profile.total_seconds() >= 0.0);
    }

    #[test]
    fn config_builder() {
        let c = QueryConfig::default()
            .device(Device::Accel(3))
            .trainable(true)
            .temperature(0.5);
        assert_eq!(c.device, Device::Accel(3));
        assert!(c.trainable);
        assert_eq!(c.temperature, 0.5);
    }

    #[test]
    #[should_panic(expected = "temperature must be positive")]
    fn bad_temperature_rejected() {
        let _ = QueryConfig::default().temperature(0.0);
    }
}
