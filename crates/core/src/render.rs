//! Rendering query results into media formats.
//!
//! The paper's Example 2.3: TDP "can also generate outputs which can be
//! rendered into images using Matplotlib, or audio using
//! IPython.display.Audio". This module is the Rust analog — image tensor
//! columns render to binary PPM (P6) and waveform columns to WAV
//! (16-bit PCM), both dependency-free formats that any viewer opens.

use tdp_tensor::F32Tensor;

use crate::error::TdpError;

/// Encode one image tensor as binary PPM (P6).
///
/// Accepts `[3, h, w]` RGB or `[1, h, w]`/`[h, w]` grayscale, with values
/// in `[0, 1]` (clamped).
pub fn to_ppm(image: &F32Tensor) -> Result<Vec<u8>, TdpError> {
    let (c, h, w) = match image.shape() {
        [3, h, w] => (3usize, *h, *w),
        [1, h, w] => (1usize, *h, *w),
        [h, w] => (1usize, *h, *w),
        other => {
            return Err(TdpError::Session(format!(
                "cannot render shape {other:?} as an image (want [3,h,w], [1,h,w] or [h,w])"
            )))
        }
    };
    let mut out = format!("P6\n{w} {h}\n255\n").into_bytes();
    out.reserve(h * w * 3);
    let data = image.data();
    let px = |v: f32| (v.clamp(0.0, 1.0) * 255.0).round() as u8;
    for y in 0..h {
        for x in 0..w {
            if c == 3 {
                for ch in 0..3 {
                    out.push(px(data[ch * h * w + y * w + x]));
                }
            } else {
                let g = px(data[y * w + x]);
                out.extend_from_slice(&[g, g, g]);
            }
        }
    }
    Ok(out)
}

/// Encode one waveform tensor (`[samples]`, values in `[-1, 1]`) as a
/// mono 16-bit PCM WAV file.
pub fn to_wav(wave: &F32Tensor, sample_rate: u32) -> Result<Vec<u8>, TdpError> {
    if wave.ndim() != 1 {
        return Err(TdpError::Session(format!(
            "cannot render shape {:?} as audio (want a 1-d waveform)",
            wave.shape()
        )));
    }
    let n = wave.numel() as u32;
    let data_bytes = n * 2;
    let mut out = Vec::with_capacity(44 + data_bytes as usize);
    out.extend_from_slice(b"RIFF");
    out.extend_from_slice(&(36 + data_bytes).to_le_bytes());
    out.extend_from_slice(b"WAVEfmt ");
    out.extend_from_slice(&16u32.to_le_bytes()); // PCM chunk size
    out.extend_from_slice(&1u16.to_le_bytes()); // PCM format
    out.extend_from_slice(&1u16.to_le_bytes()); // mono
    out.extend_from_slice(&sample_rate.to_le_bytes());
    out.extend_from_slice(&(sample_rate * 2).to_le_bytes()); // byte rate
    out.extend_from_slice(&2u16.to_le_bytes()); // block align
    out.extend_from_slice(&16u16.to_le_bytes()); // bits per sample
    out.extend_from_slice(b"data");
    out.extend_from_slice(&data_bytes.to_le_bytes());
    for &v in wave.data() {
        let s = (v.clamp(-1.0, 1.0) * i16::MAX as f32) as i16;
        out.extend_from_slice(&s.to_le_bytes());
    }
    Ok(out)
}

/// Render row `row` of a result table's tensor column as PPM.
pub fn column_row_to_ppm(
    table: &tdp_storage::Table,
    column: &str,
    row: usize,
) -> Result<Vec<u8>, TdpError> {
    let col = table
        .column(column)
        .ok_or_else(|| TdpError::Session(format!("no column '{column}'")))?;
    let data = col.data.decode_f32();
    if row >= data.rows() {
        return Err(TdpError::Session(format!(
            "row {row} out of range ({} rows)",
            data.rows()
        )));
    }
    to_ppm(&data.row(row))
}

/// Render row `row` of a result table's waveform column as WAV.
pub fn column_row_to_wav(
    table: &tdp_storage::Table,
    column: &str,
    row: usize,
    sample_rate: u32,
) -> Result<Vec<u8>, TdpError> {
    let col = table
        .column(column)
        .ok_or_else(|| TdpError::Session(format!("no column '{column}'")))?;
    let data = col.data.decode_f32();
    if row >= data.rows() {
        return Err(TdpError::Session(format!(
            "row {row} out of range ({} rows)",
            data.rows()
        )));
    }
    to_wav(&data.row(row), sample_rate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_storage::TableBuilder;
    use tdp_tensor::Tensor;

    #[test]
    fn ppm_header_and_payload() {
        // 1x2 RGB: red then white.
        let img = Tensor::from_vec(vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0], &[3, 1, 2]);
        let ppm = to_ppm(&img).unwrap();
        let header = b"P6\n2 1\n255\n";
        assert_eq!(&ppm[..header.len()], header);
        assert_eq!(&ppm[header.len()..], &[255, 0, 0, 255, 255, 255]);
    }

    #[test]
    fn grayscale_replicates_channels_and_clamps() {
        let img = Tensor::from_vec(vec![0.0, 2.0], &[1, 1, 2]);
        let ppm = to_ppm(&img).unwrap();
        let payload = &ppm[ppm.len() - 6..];
        assert_eq!(payload, &[0, 0, 0, 255, 255, 255]);
        // 2-d shorthand also accepted.
        assert!(to_ppm(&Tensor::<f32>::zeros(&[4, 4])).is_ok());
        assert!(to_ppm(&Tensor::<f32>::zeros(&[2, 4, 4, 4])).is_err());
    }

    #[test]
    fn wav_header_fields() {
        let wave = Tensor::from_vec(vec![0.0f32, 1.0, -1.0, 0.5], &[4]);
        let wav = to_wav(&wave, 8_000).unwrap();
        assert_eq!(&wav[..4], b"RIFF");
        assert_eq!(&wav[8..16], b"WAVEfmt ");
        assert_eq!(u32::from_le_bytes(wav[24..28].try_into().unwrap()), 8_000);
        assert_eq!(wav.len(), 44 + 8);
        // Samples: 0, max, min (clamped), half.
        let s = |i: usize| i16::from_le_bytes(wav[44 + 2 * i..46 + 2 * i].try_into().unwrap());
        assert_eq!(s(0), 0);
        assert_eq!(s(1), i16::MAX);
        assert_eq!(s(2), -i16::MAX);
        assert!((s(3) as i32 - i16::MAX as i32 / 2).abs() <= 1);
        assert!(to_wav(&Tensor::<f32>::zeros(&[2, 2]), 8_000).is_err());
    }

    #[test]
    fn table_rows_render() {
        let images = Tensor::<f32>::zeros(&[2, 1, 4, 4]);
        let clips = Tensor::<f32>::zeros(&[2, 100]);
        let t = TableBuilder::new()
            .col_tensor("img", images)
            .col_tensor("clip", clips)
            .build("media");
        assert!(column_row_to_ppm(&t, "img", 1).is_ok());
        assert!(column_row_to_ppm(&t, "img", 2).is_err());
        assert!(column_row_to_wav(&t, "clip", 0, 8_000).is_ok());
        assert!(column_row_to_wav(&t, "nope", 0, 8_000).is_err());
    }
}
