//! TDP sessions: catalog + function registry + query compiler.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use tdp_exec::{
    ParamConstraint, ParamValue, ParamValues, PhysicalPlan, ScalarUdf, TableFunction, UdfRegistry,
};
use tdp_sql::plan::{LogicalPlan, PlannerContext};
use tdp_sql::{optimizer, parse};
use tdp_storage::{Catalog, Table, TableBuilder};
use tdp_tensor::{Device, F32Tensor};

use crate::compiled::{CompiledQuery, Prepared, QueryConfig};
use crate::error::TdpError;

/// Upper bound on cached plans. Eviction is per-entry LRU: on overflow the
/// least-recently-used plan is dropped, so a hot working set survives a
/// long tail of one-off statements.
const PLAN_CACHE_CAP: usize = 256;

/// Static type of a bound (or to-be-bound) parameter value, for
/// declared-signature checking.
pub(crate) fn param_static_kind(v: Option<&ParamValue>) -> tdp_exec::StaticKind {
    use tdp_exec::StaticKind;
    match v {
        Some(ParamValue::Number(_)) => StaticKind::Number,
        Some(ParamValue::String(_)) => StaticKind::Str,
        Some(ParamValue::Bool(_)) => StaticKind::Bool,
        Some(ParamValue::Tensor(_)) => StaticKind::Column,
        Some(ParamValue::Null) | None => StaticKind::Unknown,
    }
}

/// Default worker count: `TDP_THREADS` when set to a positive integer,
/// else the machine's available parallelism.
fn default_threads() -> usize {
    std::env::var("TDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Default morsel size: `TDP_MORSEL_ROWS` when set, else the scheduler's
/// built-in default.
fn default_morsel_rows() -> usize {
    std::env::var("TDP_MORSEL_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(tdp_exec::DEFAULT_MORSEL_ROWS)
}

/// Default barrier-exchange partition count: `TDP_PARTITIONS` when set,
/// else the scheduler's built-in default (16).
fn default_partitions() -> usize {
    std::env::var("TDP_PARTITIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(tdp_exec::DEFAULT_PARTITIONS)
}

/// Default chain-kernel switch: on unless `TDP_CHAIN_KERNELS` is set to
/// `0`, `false` or `off`. Either way the interpreter remains the oracle;
/// the switch exists so CI can run the whole suite through both paths.
fn default_chain_kernels() -> bool {
    std::env::var("TDP_CHAIN_KERNELS")
        .map(|v| {
            !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off"
            )
        })
        .unwrap_or(true)
}

/// A cached compilation: the optimised logical plan, its lowering, and
/// the state it was compiled against (for invalidation). Keyed by the
/// *normalized* statement text — the parsed query with every literal
/// auto-parameterised into a `$n` slot — so SQL texts differing only in
/// constants share one entry. `lower()` depends only on the catalog and
/// function registry; device/trainable/temperature knobs live on the
/// [`crate::compiled::BoundQuery`], not in the cache key.
struct CachedPlan {
    logical: Arc<LogicalPlan>,
    physical: Arc<PhysicalPlan>,
    /// Computed once here; cache hits hand it out without re-rendering
    /// the plan tree.
    fingerprint: u64,
    catalog_version: u64,
    udf_epoch: u64,
    /// `(table, column names)` for every base-table scan — the schemas
    /// the slot assignments depend on.
    scans: Vec<(String, Vec<String>)>,
    /// Binding-dependent argument-type obligations of declared-signature
    /// calls. The plan itself was fully validated when this entry was
    /// built; hits (whose literal *values* may differ in type) and
    /// re-binds only need to recheck these slots — O(constraints), not
    /// O(plan).
    param_constraints: Vec<ParamConstraint>,
    /// Monotonic recency stamp for LRU eviction.
    last_used: u64,
}

/// Plan-cache counters (see [`Tdp::plan_cache_stats`]). Hits, misses and
/// evictions accumulate over the session lifetime; `entries` is the
/// current size. Together they distinguish cold misses (misses with few
/// evictions) from LRU churn (misses tracking evictions), which hit/miss
/// alone cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by LRU capacity eviction (invalidations and
    /// explicit clears are not evictions).
    pub evictions: u64,
    pub entries: usize,
}

/// An AI-centric database session.
///
/// Sessions are single-threaded at the API surface (function parameters
/// live on the autodiff tape, which is `Rc`-based, exactly like a PyTorch
/// process), but exact query execution is morsel-parallel: scans are
/// partitioned into ~64k-row morsels and fused operator pipelines run
/// across a worker pool sized by [`Tdp::set_threads`] (default: the
/// `TDP_THREADS` environment variable, else the machine's available
/// parallelism). Thread count never changes results.
pub struct Tdp {
    catalog: Catalog,
    udfs: RefCell<UdfRegistry>,
    default_device: RefCell<Device>,
    vector_indexes: RefCell<crate::vector::VectorIndexes>,
    /// Compiled-plan cache keyed by normalized (literal-parameterised)
    /// statement text: repeated `query()`/`prepare()` calls skip
    /// plan-build → optimize → lower, even when the literals change.
    /// (Every call still parses and normalizes its text — that is how the
    /// key and the extracted literal values are obtained; `prepare` once
    /// and re-`bind` to skip the frontend entirely.)
    plan_cache: RefCell<HashMap<String, CachedPlan>>,
    /// Bumped on every UDF/TVF registration; registrations can change
    /// plan *shape* (TVF-ness of a name), so they invalidate cached plans.
    udf_epoch: Cell<u64>,
    /// Monotonic clock for LRU stamps.
    cache_tick: Cell<u64>,
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
    cache_evictions: Cell<u64>,
    /// Morsel-scheduler worker count for exact execution.
    threads: Cell<usize>,
    /// Rows per morsel (tunable mostly for tests/benchmarks).
    morsel_rows: Cell<usize>,
    /// Barrier-exchange partition count (partitioned join / DISTINCT).
    partitions: Cell<usize>,
    /// Session-shared compiled chain-kernel cache (see
    /// [`tdp_exec::KernelCache`]). Lives for the session so repeated
    /// binds of the same prepared chain reuse one compiled program;
    /// invalidated by epoch bump on catalog/registry change.
    chain_kernels: Arc<tdp_exec::KernelCache>,
    /// Whether executions consult the chain-kernel compiler at all
    /// (default: `TDP_CHAIN_KERNELS`, else on).
    chain_kernels_on: Cell<bool>,
}

impl Default for Tdp {
    fn default() -> Self {
        Tdp::new()
    }
}

impl Tdp {
    pub fn new() -> Tdp {
        Tdp {
            catalog: Catalog::new(),
            udfs: RefCell::new(UdfRegistry::new()),
            default_device: RefCell::new(Device::Cpu),
            vector_indexes: RefCell::new(Default::default()),
            plan_cache: RefCell::new(HashMap::new()),
            udf_epoch: Cell::new(0),
            cache_tick: Cell::new(0),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
            cache_evictions: Cell::new(0),
            threads: Cell::new(default_threads()),
            morsel_rows: Cell::new(default_morsel_rows()),
            partitions: Cell::new(default_partitions()),
            chain_kernels: Arc::new(tdp_exec::KernelCache::new()),
            chain_kernels_on: Cell::new(default_chain_kernels()),
        }
    }

    // ------------------------------------------------------------------
    // Morsel-scheduler configuration
    // ------------------------------------------------------------------

    /// Set the worker-thread count for exact query execution (clamped to
    /// ≥ 1). Results are identical at every thread count — parallelism
    /// only changes who processes each morsel.
    pub fn set_threads(&self, n: usize) {
        self.threads.set(n.max(1));
    }

    /// Current morsel-scheduler worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Set the rows-per-morsel partition size (clamped to ≥ 1). Changing
    /// it may shift the last bit of parallel float aggregates (morsel
    /// boundaries move); at a fixed size, results are thread-invariant.
    pub fn set_morsel_rows(&self, n: usize) {
        self.morsel_rows.set(n.max(1));
    }

    /// Current rows-per-morsel partition size.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows.get()
    }

    /// Set the barrier-exchange partition count (clamped to ≥ 1; default
    /// `TDP_PARTITIONS`, else 16). Partitioned hash joins and
    /// shared-nothing DISTINCT distribute rows across this many buckets
    /// by key hash. A plan property independent of [`Tdp::set_threads`]:
    /// changing it never changes results, only load balance.
    pub fn set_partitions(&self, n: usize) {
        self.partitions.set(n.max(1));
    }

    /// Current barrier-exchange partition count.
    pub fn partitions(&self) -> usize {
        self.partitions.get()
    }

    /// Enable or disable compiled chain kernels (default: the
    /// `TDP_CHAIN_KERNELS` environment variable, else on). Disabling
    /// routes every fused filter→project chain through the interpreter;
    /// results are identical either way — the compiler is a pure
    /// performance substitution with the interpreter as its oracle.
    pub fn set_chain_kernels(&self, on: bool) {
        self.chain_kernels_on.set(on);
    }

    /// Whether compiled chain kernels are consulted for execution.
    pub fn chain_kernels_enabled(&self) -> bool {
        self.chain_kernels_on.get()
    }

    /// Cumulative chain-kernel cache counters (hits, misses, evictions,
    /// interpreter fallbacks) plus the current compiled-entry count —
    /// the kernel-cache mirror of [`Tdp::plan_cache_stats`].
    pub fn chain_kernel_stats(&self) -> tdp_exec::ChainKernelStats {
        self.chain_kernels.stats()
    }

    /// The session kernel cache, or `None` when chain kernels are
    /// disabled — threaded into each execution's `ExecContext`.
    pub(crate) fn chain_kernels_handle(&self) -> Option<Arc<tdp_exec::KernelCache>> {
        if self.chain_kernels_on.get() {
            Some(Arc::clone(&self.chain_kernels))
        } else {
            None
        }
    }

    pub(crate) fn vector_indexes_mut<R>(
        &self,
        f: impl FnOnce(&mut crate::vector::VectorIndexes) -> R,
    ) -> R {
        f(&mut self.vector_indexes.borrow_mut())
    }

    pub(crate) fn with_vector_indexes<R>(
        &self,
        f: impl FnOnce(&crate::vector::VectorIndexes) -> R,
    ) -> R {
        f(&self.vector_indexes.borrow())
    }

    /// Device used by queries that do not override it.
    pub fn set_default_device(&self, device: Device) {
        *self.default_device.borrow_mut() = device;
    }

    pub fn default_device(&self) -> Device {
        *self.default_device.borrow()
    }

    /// The session catalog (mostly for inspection/tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    // ------------------------------------------------------------------
    // Registration (paper Listing 1: `tdp.sql.register_df`)
    // ------------------------------------------------------------------

    /// Register a table, placing it on the session's default device.
    pub fn register_table(&self, table: Table) {
        let device = self.default_device();
        self.catalog.register(table.to_device(device));
        self.chain_kernels.bump_epoch();
    }

    /// Register a table on an explicit device.
    pub fn register_table_on(&self, table: Table, device: Device) {
        self.catalog.register(table.to_device(device));
        self.chain_kernels.bump_epoch();
    }

    /// Register a bare tensor as a one-column table named after itself —
    /// the `register_tensor` of paper Listing 5, used to feed TVFs.
    pub fn register_tensor(&self, name: &str, tensor: F32Tensor) {
        let table = TableBuilder::new().col_tensor("value", tensor).build(name);
        self.register_table(table);
    }

    /// Register CSV text as a table (numeric columns inferred).
    pub fn register_csv(&self, name: &str, text: &str) -> Result<(), TdpError> {
        let table = tdp_storage::csv::parse_csv(name, text).map_err(TdpError::Session)?;
        self.register_table(table);
        Ok(())
    }

    /// Register a table from a TDPF file (the Parquet-registration analog
    /// of paper Listing 1). The table keeps the name stored in the file;
    /// returns that name.
    pub fn register_file(&self, path: impl AsRef<std::path::Path>) -> Result<String, TdpError> {
        let table = tdp_storage::load_table(path).map_err(|e| TdpError::Session(e.to_string()))?;
        let name = table.name().to_owned();
        self.register_table(table);
        Ok(name)
    }

    /// Save a registered table to a TDPF file, preserving column encodings.
    pub fn save_table(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), TdpError> {
        let table = self
            .catalog
            .get(name)
            .ok_or_else(|| TdpError::Session(format!("unknown table '{name}'")))?;
        tdp_storage::save_table(&table, path).map_err(|e| TdpError::Session(e.to_string()))
    }

    /// Save every registered table into `dir` as `<table>.tdpf` files —
    /// a whole-database snapshot. Returns the table names written.
    pub fn save_catalog(&self, dir: impl AsRef<std::path::Path>) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| TdpError::Session(format!("cannot create {}: {e}", dir.display())))?;
        let mut names = self.catalog.names();
        names.sort();
        for name in &names {
            self.save_table(name, dir.join(format!("{name}.tdpf")))?;
        }
        Ok(names)
    }

    /// Register every `.tdpf` file found in `dir`. Returns the table
    /// names registered (the inverse of [`Tdp::save_catalog`]).
    pub fn open_catalog(&self, dir: impl AsRef<std::path::Path>) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| TdpError::Session(format!("cannot read {}: {e}", dir.display())))?;
        let mut names = Vec::new();
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "tdpf"))
            .collect();
        paths.sort();
        for path in paths {
            names.push(self.register_file(&path)?);
        }
        Ok(names)
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.catalog.drop_table(name)
    }

    // ------------------------------------------------------------------
    // Function registration (paper §3, the `tdp_udf` annotation)
    // ------------------------------------------------------------------

    /// Register a scalar UDF. Functions registered here stay
    /// session-thread-bound — the right home for trainable UDFs whose
    /// parameters ride the `Rc`-based autodiff tape. Stateless functions
    /// should prefer [`Tdp::register_udf_parallel`].
    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.borrow_mut().register_scalar(udf);
        self.udf_epoch.set(self.udf_epoch.get() + 1);
        self.chain_kernels.bump_epoch();
    }

    /// Register a `Send + Sync` scalar UDF. Combined with a
    /// [`tdp_exec::FunctionSpec`] declaring `parallel_safe`, queries
    /// applying it execute through the morsel scheduler's worker pool
    /// instead of falling back to the sequential whole-batch path.
    pub fn register_udf_parallel(&self, udf: Arc<dyn ScalarUdf + Send + Sync>) {
        self.udfs.borrow_mut().register_scalar_parallel(udf);
        self.udf_epoch.set(self.udf_epoch.get() + 1);
        self.chain_kernels.bump_epoch();
    }

    /// Register a table-valued function.
    pub fn register_tvf(&self, tvf: Arc<dyn TableFunction>) {
        self.udfs.borrow_mut().register_table_fn(tvf);
        self.udf_epoch.set(self.udf_epoch.get() + 1);
        self.chain_kernels.bump_epoch();
    }

    pub(crate) fn udfs_snapshot(&self) -> UdfRegistry {
        self.udfs.borrow().clone()
    }

    // ------------------------------------------------------------------
    // Query compilation (paper Listing 2 / Listing 6)
    // ------------------------------------------------------------------

    /// Compile SQL with the default configuration (exact operators,
    /// session default device). Desugars to a zero-parameter
    /// [`Tdp::prepare`] + bind: statements with `?`/`$n` placeholders
    /// must go through [`Tdp::prepare`] so values can be supplied.
    pub fn query(&self, sql: &str) -> Result<CompiledQuery<'_>, TdpError> {
        self.query_with(sql, QueryConfig::default().device(self.default_device()))
    }

    /// Compile SQL with an explicit configuration. With
    /// [`QueryConfig::trainable`], the physical plan uses the soft
    /// differentiable operators (paper §4).
    pub fn query_with(
        &self,
        sql: &str,
        config: QueryConfig,
    ) -> Result<CompiledQuery<'_>, TdpError> {
        self.prepare_with(sql, config)?.bind(ParamValues::new())
    }

    /// Prepare SQL with the default configuration — parse,
    /// auto-parameterise literals, optimise and lower, once. The returned
    /// [`Prepared`] is bound with values per execution
    /// (`prepared.bind(params)?.run()`), the training-loop shape the paper
    /// compiles queries for.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_>, TdpError> {
        self.prepare_with(sql, QueryConfig::default().device(self.default_device()))
    }

    /// Prepare SQL with an explicit configuration.
    ///
    /// Compilation results are cached by *normalized* statement text:
    /// every literal is lifted into a parameter slot before hashing, so
    /// texts differing only in constants — the REPL / training-loop
    /// pattern — hit the same compiled [`PhysicalPlan`]. Cache entries are
    /// invalidated when a referenced table's schema changes or when the
    /// function registry changes, and evicted per-entry LRU at capacity.
    pub fn prepare_with(&self, sql: &str, config: QueryConfig) -> Result<Prepared<'_>, TdpError> {
        let ast = parse(sql)?;
        // Immutable UDF calls over literal arguments fold into literals
        // *before* auto-parameterisation, so the folded constant shares
        // plan-cache entries like any other literal.
        let ast = tdp_exec::fold_immutable_udfs(ast, &self.udfs.borrow());
        let explicit = tdp_sql::param::explicit_param_count(&ast);
        let (ast, literals) = tdp_sql::param::parameterize_literals(ast, explicit);
        let implicit: Vec<ParamValue> = literals.iter().map(ParamValue::from).collect();
        let key = ast.to_string();

        let catalog_version = self.catalog.version();
        let udf_epoch = self.udf_epoch.get();

        if let Some(entry) = self.plan_cache.borrow_mut().get_mut(&key) {
            let valid = entry.udf_epoch == udf_epoch
                && (entry.catalog_version == catalog_version || self.scans_unchanged(&entry.scans));
            if valid {
                // Schemas re-validated above; fast-forward the version so
                // the next hit takes the cheap equality path.
                entry.catalog_version = catalog_version;
                entry.last_used = self.tick();
                self.cache_hits.set(self.cache_hits.get() + 1);
                // The cache key is literal-invariant, so a cached plan can
                // be served for a text whose literals have *different
                // types*. The plan structure was fully validated when the
                // entry was built; only the binding-dependent slot
                // constraints need rechecking against this text's values.
                tdp_exec::validate_param_constraints(&entry.param_constraints, &|idx| {
                    if idx < explicit {
                        tdp_exec::StaticKind::Unknown
                    } else {
                        param_static_kind(implicit.get(idx - explicit))
                    }
                })?;
                return Ok(Prepared::new(
                    self,
                    Arc::clone(&entry.logical),
                    Arc::clone(&entry.physical),
                    entry.fingerprint,
                    config,
                    explicit,
                    implicit,
                    entry.param_constraints.clone(),
                ));
            }
        }
        self.cache_misses.set(self.cache_misses.get() + 1);

        let udfs = self.udfs.borrow();
        let plan = tdp_sql::plan::build_plan(
            &ast,
            &PlannerContext {
                is_tvf: &|n| udfs.is_table_fn(n),
            },
        )?;
        let plan = optimizer::optimize(plan);
        let physical = Arc::new(tdp_exec::lower(&plan, &self.catalog, &udfs)?);
        let param_constraints = tdp_exec::param_arg_constraints(&physical, &udfs);
        drop(udfs);
        let logical = Arc::new(plan);
        let fingerprint = physical.fingerprint();
        self.validate_signatures(&physical, explicit, &implicit)?;

        // Cache only plans whose scans all resolved a schema: a plan
        // compiled against a missing table must not pin that state.
        let scans = physical.scans();
        if scans.iter().all(|(_, s)| s.is_some()) {
            let mut cache = self.plan_cache.borrow_mut();
            if cache.len() >= PLAN_CACHE_CAP && !cache.contains_key(&key) {
                // Per-entry LRU: drop only the stalest plan.
                if let Some(oldest) = cache
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    cache.remove(&oldest);
                    self.cache_evictions.set(self.cache_evictions.get() + 1);
                }
            }
            cache.insert(
                key,
                CachedPlan {
                    logical: Arc::clone(&logical),
                    physical: Arc::clone(&physical),
                    fingerprint,
                    catalog_version,
                    udf_epoch,
                    scans: scans
                        .into_iter()
                        .map(|(t, s)| (t, s.expect("checked above")))
                        .collect(),
                    param_constraints: param_constraints.clone(),
                    last_used: self.tick(),
                },
            );
        }
        Ok(Prepared::new(
            self,
            logical,
            physical,
            fingerprint,
            config,
            explicit,
            implicit,
            param_constraints,
        ))
    }

    fn tick(&self) -> u64 {
        let t = self.cache_tick.get() + 1;
        self.cache_tick.set(t);
        t
    }

    /// Check every UDF/TVF call of a lowered plan against its declared
    /// signature, resolving the auto-extracted literal slots to their
    /// types. The full plan walk runs once per compilation (cache miss);
    /// hits and [`Prepared::bind`] recheck only the precomputed
    /// binding-dependent slot constraints.
    fn validate_signatures(
        &self,
        physical: &PhysicalPlan,
        explicit: usize,
        implicit: &[ParamValue],
    ) -> Result<(), TdpError> {
        let udfs = self.udfs.borrow();
        let kind = |idx: usize| -> tdp_exec::StaticKind {
            if idx < explicit {
                return tdp_exec::StaticKind::Unknown;
            }
            param_static_kind(implicit.get(idx - explicit))
        };
        tdp_exec::validate_function_args(physical, &udfs, &kind)?;
        Ok(())
    }

    /// Whether every `(table, schema)` a cached plan was compiled against
    /// still matches the live catalog.
    fn scans_unchanged(&self, scans: &[(String, Vec<String>)]) -> bool {
        scans.iter().all(|(table, expected)| {
            self.catalog.get(table).is_some_and(|t| {
                let live = t.columns();
                live.len() == expected.len()
                    && live
                        .iter()
                        .zip(expected)
                        .all(|(c, e)| c.name.eq_ignore_ascii_case(e))
            })
        })
    }

    /// Number of cached compiled plans (diagnostics / tests).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.borrow().len()
    }

    /// Cumulative hit/miss/eviction counters plus current entry count.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.cache_hits.get(),
            misses: self.cache_misses.get(),
            evictions: self.cache_evictions.get(),
            entries: self.plan_cache.borrow().len(),
        }
    }

    /// Drop every cached compiled plan (counters keep accumulating).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    #[test]
    fn register_and_query_round_trip() {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .build("t"),
        );
        let out = tdp
            .query("SELECT x FROM t WHERE x >= 2")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn register_tensor_creates_value_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("grid", Tensor::<f32>::zeros(&[2, 1, 4, 4]));
        let t = tdp.catalog().get("grid").expect("registered");
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("value").unwrap().data.row_shape(), vec![1, 4, 4]);
    }

    #[test]
    fn re_registration_replaces_input_like_listing5() {
        let tdp = Tdp::new();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[1, 2]));
        let q = tdp.query("SELECT COUNT(*) FROM g").unwrap();
        assert_eq!(
            q.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1]
        );
        // New input under the same name; the *same* compiled query sees it.
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[5, 2]));
        assert_eq!(
            q.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![5]
        );
    }

    #[test]
    fn csv_registration() {
        let tdp = Tdp::new();
        tdp.register_csv("iris", "w,species\n1.5,a\n2.5,b\n")
            .unwrap();
        let out = tdp.query("SELECT AVG(w) FROM iris").unwrap().run().unwrap();
        assert_eq!(
            out.column("AVG(w)").unwrap().data.decode_f32().to_vec(),
            vec![2.0]
        );
        assert!(tdp.register_csv("bad", "").is_err());
    }

    #[test]
    fn drop_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("tmp", Tensor::<f32>::zeros(&[1]));
        assert!(tdp.drop_table("tmp"));
        assert!(!tdp.drop_table("tmp"));
        assert!(tdp.query("SELECT * FROM tmp").unwrap().run().is_err());
    }

    #[test]
    fn file_round_trip_through_session() {
        let dir = std::env::temp_dir().join("tdp_session_files");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("numbers.tdpf");

        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .col_str("tag", &["a", "b", "a"])
                .build("numbers"),
        );
        tdp.save_table("numbers", &path).unwrap();
        assert!(matches!(
            tdp.save_table("missing", &path),
            Err(TdpError::Session(_))
        ));

        let fresh = Tdp::new();
        let name = fresh.register_file(&path).unwrap();
        assert_eq!(name, "numbers");
        let out = fresh
            .query("SELECT tag, COUNT(*) FROM numbers GROUP BY tag")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), 2);
        std::fs::remove_file(&path).ok();
        assert!(fresh.register_file(&path).is_err());
    }

    #[test]
    fn catalog_snapshot_round_trip() {
        let dir = std::env::temp_dir().join("tdp_catalog_snapshot");
        std::fs::remove_dir_all(&dir).ok();

        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("a", vec![1.0]).build("t1"));
        tdp.register_table(TableBuilder::new().col_f32("b", vec![2.0, 3.0]).build("t2"));
        let written = tdp.save_catalog(&dir).unwrap();
        assert_eq!(written, vec!["t1", "t2"]);

        let fresh = Tdp::new();
        let opened = fresh.open_catalog(&dir).unwrap();
        assert_eq!(opened, vec!["t1", "t2"]);
        assert_eq!(fresh.catalog().get("t2").unwrap().rows(), 2);
        std::fs::remove_dir_all(&dir).ok();
        assert!(fresh.open_catalog(&dir).is_err());
    }

    #[test]
    fn plan_cache_hits_and_is_fingerprint_identical() {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .build("t"),
        );
        let sql = "SELECT x FROM t WHERE x > 1 ORDER BY x DESC LIMIT 2";
        let q1 = tdp.query(sql).unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        let q2 = tdp.query(sql).unwrap();
        assert_eq!(tdp.plan_cache_len(), 1, "second compile is a cache hit");
        assert_eq!(q1.fingerprint(), q2.fingerprint());
        // The cached physical plan is literally shared, not re-lowered.
        assert!(std::ptr::eq(q1.physical_plan(), q2.physical_plan()));
        // Plans are config-independent: a different config reuses the
        // same cache entry (the config rides on the BoundQuery).
        let q3 = tdp
            .query_with(sql, QueryConfig::default().temperature(0.5))
            .unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        assert_eq!(q3.fingerprint(), q1.fingerprint());
        assert!(std::ptr::eq(q1.physical_plan(), q3.physical_plan()));
        assert_eq!(q3.config().temperature, 0.5);
    }

    #[test]
    fn plan_cache_is_literal_invariant() {
        // The tentpole acceptance: texts differing only in literal values
        // share one entry, and the hit counter proves the reuse.
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .col_str("tag", &["a", "b", "a"])
                .build("t"),
        );
        let a = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 1.5 AND tag = 'a'")
            .unwrap();
        let stats0 = tdp.plan_cache_stats();
        assert_eq!((stats0.hits, stats0.misses, stats0.entries), (0, 1, 1));
        assert_eq!(stats0.evictions, 0);
        let b = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 0.5 AND tag = 'b'")
            .unwrap();
        let stats1 = tdp.plan_cache_stats();
        assert_eq!(
            (stats1.hits, stats1.misses, stats1.entries),
            (1, 1, 1),
            "second literal variant must hit the shared entry"
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(std::ptr::eq(a.physical_plan(), b.physical_plan()));
        // …and each variant still computes with its own constants.
        assert_eq!(
            a.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1],
            "x > 1.5 AND tag = 'a' keeps only x=3"
        );
        assert_eq!(
            b.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1],
            "x > 0.5 AND tag = 'b' keeps only x=2"
        );
        // Coinciding literal values must not split the entry: slots are
        // per occurrence, not per distinct value.
        let c = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 1.5 AND tag = 'a' AND x < 1.5")
            .unwrap();
        let d = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 0.5 AND tag = 'b' AND x < 2.5")
            .unwrap();
        assert_eq!(c.fingerprint(), d.fingerprint());
        assert!(std::ptr::eq(c.physical_plan(), d.physical_plan()));
        assert_eq!(
            d.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1]
        );
    }

    #[test]
    fn auto_parameterised_select_items_keep_their_names() {
        // Extraction must not leak `$n` into result column names: a
        // result set stays self-describing even though the values moved
        // into the binding.
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        let out = tdp.query("SELECT 5, x * 2 FROM t").unwrap().run().unwrap();
        assert_eq!(
            out.column("5").unwrap().data.decode_f32().to_vec(),
            vec![5.0, 5.0]
        );
        assert_eq!(
            out.column("(x * 2)").unwrap().data.decode_f32().to_vec(),
            vec![2.0, 4.0]
        );
        let out7 = tdp.query("SELECT 7, x * 2 FROM t").unwrap().run().unwrap();
        assert!(
            out7.column("7").is_some(),
            "each text names its own constant column"
        );
    }

    #[test]
    fn auto_parameterisation_keeps_constant_folding_alive() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 5.0]).build("t"));
        // Literal arithmetic folds before extraction: one slot, not two…
        let q = tdp.query("SELECT x FROM t WHERE x > 1 + 2").unwrap();
        let text = q.explain();
        assert!(text.contains("(x@0 > $1)"), "{text}");
        assert!(!text.contains("$2"), "folded to a single slot: {text}");
        // …and equivalent spellings share the cache entry.
        let q2 = tdp.query("SELECT x FROM t WHERE x > 3").unwrap();
        assert!(std::ptr::eq(q.physical_plan(), q2.physical_plan()));
        // Trivially-true predicates still vanish entirely.
        let t = tdp.query("SELECT x FROM t WHERE 1 < 2").unwrap();
        assert!(!t.explain().contains("Filter"), "{}", t.explain());
        assert_eq!(t.run().unwrap().rows(), 2);
    }

    #[test]
    fn plan_cache_invalidates_on_subquery_table_schema_change() {
        // Scans inside scalar subqueries pin cache validity too: changing
        // the subquery's table schema must recompile, not serve the stale
        // plan forever.
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 5.0]).build("t"));
        tdp.register_table(TableBuilder::new().col_f32("y", vec![3.0]).build("sub"));
        let sql = "SELECT x FROM t WHERE x > (SELECT MAX(y) FROM sub)";
        let before = tdp.query(sql).unwrap();
        assert_eq!(
            before
                .run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![5.0]
        );
        // y moves from slot 0 to slot 1.
        tdp.register_table(
            TableBuilder::new()
                .col_f32("pad", vec![0.0])
                .col_f32("y", vec![0.5])
                .build("sub"),
        );
        let after = tdp.query(sql).unwrap();
        assert_ne!(after.fingerprint(), before.fingerprint());
        assert_eq!(
            after
                .run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![1.0, 5.0]
        );
    }

    #[test]
    fn plan_fingerprints_distinguish_subqueries() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0]).build("t"));
        tdp.register_table(TableBuilder::new().col_f32("y", vec![2.0]).build("sub"));
        let a = tdp
            .query("SELECT x FROM t WHERE x > (SELECT MAX(y) FROM sub)")
            .unwrap()
            .fingerprint();
        let b = tdp
            .query("SELECT x FROM t WHERE x > (SELECT MIN(y) FROM sub)")
            .unwrap()
            .fingerprint();
        assert_ne!(a, b, "subquery content must reach the fingerprint");
    }

    #[test]
    fn plan_cache_is_bounded_with_lru_eviction() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0]).build("t"));
        // Literal variants all share ONE entry now…
        for i in 0..(PLAN_CACHE_CAP + 10) {
            tdp.query(&format!("SELECT x FROM t WHERE x > {i}"))
                .unwrap();
        }
        assert_eq!(tdp.plan_cache_len(), 1, "literal variants share an entry");
        // …so overflow needs structurally distinct statements.
        for i in 0..(PLAN_CACHE_CAP + 9) {
            tdp.query(&format!("SELECT x FROM t LIMIT {i}")).unwrap();
        }
        assert_eq!(tdp.plan_cache_len(), PLAN_CACHE_CAP, "bounded");
        // The filter entry was the least recently used -> evicted; the
        // most recent LIMIT entries survive.
        let before = tdp.plan_cache_stats();
        tdp.query(&format!("SELECT x FROM t LIMIT {}", PLAN_CACHE_CAP + 8))
            .unwrap();
        assert_eq!(
            tdp.plan_cache_stats().hits,
            before.hits + 1,
            "a recent entry must survive LRU eviction"
        );
        let before = tdp.plan_cache_stats();
        tdp.query("SELECT x FROM t WHERE x > 42").unwrap();
        assert_eq!(
            tdp.plan_cache_stats().misses,
            before.misses + 1,
            "the stalest entry must have been evicted"
        );
        // Still functional after evictions.
        assert_eq!(
            tdp.query("SELECT COUNT(*) FROM t")
                .unwrap()
                .run()
                .unwrap()
                .rows(),
            1
        );
    }

    #[test]
    fn plan_cache_survives_same_schema_re_registration() {
        // The Listing-5 training loop re-registers the input every
        // iteration with an identical schema: the cache must keep hitting.
        let tdp = Tdp::new();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[2, 2]));
        let sql = "SELECT COUNT(*) FROM g";
        let a = tdp.query(sql).unwrap().fingerprint();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[7, 2]));
        let b = tdp.query(sql).unwrap().fingerprint();
        assert_eq!(a, b);
        assert_eq!(tdp.plan_cache_len(), 1);
        assert_eq!(
            tdp.query(sql)
                .unwrap()
                .run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![7]
        );
    }

    #[test]
    fn plan_cache_invalidates_on_schema_change() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        let sql = "SELECT x FROM t";
        let before = tdp.query(sql).unwrap().fingerprint();
        // Same name, different schema: slots move, the entry must recompile.
        tdp.register_table(
            TableBuilder::new()
                .col_f32("pad", vec![0.0, 0.0])
                .col_f32("x", vec![3.0, 4.0])
                .build("t"),
        );
        let q = tdp.query(sql).unwrap();
        assert_ne!(q.fingerprint(), before, "x moved from slot 0 to slot 1");
        assert_eq!(
            q.run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![3.0, 4.0]
        );
    }

    #[test]
    fn plan_cache_invalidates_on_function_registration() {
        use tdp_encoding::EncodedTensor;
        struct Boost;
        impl ScalarUdf for Boost {
            fn name(&self) -> &str {
                "boost"
            }
            fn invoke(
                &self,
                args: &[tdp_exec::ArgValue],
                _ctx: &tdp_exec::ExecContext,
            ) -> Result<EncodedTensor, tdp_exec::ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().mul_scalar(10.0),
                ))
            }
        }
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("abs", vec![-1.0]).build("t"));
        // 'ABS(abs)' resolves to the built-in before registration…
        let sql = "SELECT ABS(abs) AS v FROM t";
        let v1 = tdp.query(sql).unwrap().run().unwrap();
        assert_eq!(
            v1.column("v").unwrap().data.decode_f32().to_vec(),
            vec![1.0]
        );
        // …and to the session UDF of the same name after: the cached plan
        // must not survive the registration.
        tdp.register_udf(Arc::new(Boost));
        struct Abs;
        impl ScalarUdf for Abs {
            fn name(&self) -> &str {
                "abs"
            }
            fn invoke(
                &self,
                args: &[tdp_exec::ArgValue],
                _ctx: &tdp_exec::ExecContext,
            ) -> Result<EncodedTensor, tdp_exec::ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().mul_scalar(-2.0),
                ))
            }
        }
        tdp.register_udf(Arc::new(Abs));
        let v2 = tdp.query(sql).unwrap().run().unwrap();
        assert_eq!(
            v2.column("v").unwrap().data.decode_f32().to_vec(),
            vec![2.0],
            "UDF override must take effect after registration"
        );
    }

    #[test]
    fn clear_plan_cache_empties_it() {
        let tdp = Tdp::new();
        tdp.register_tensor("t", Tensor::<f32>::zeros(&[1]));
        tdp.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        tdp.clear_plan_cache();
        assert_eq!(tdp.plan_cache_len(), 0);
        assert_eq!(tdp.plan_cache_stats().entries, 0);
    }

    #[test]
    fn query_on_parameterised_sql_requires_prepare() {
        let tdp = Tdp::new();
        tdp.register_tensor("t", Tensor::<f32>::zeros(&[3]));
        let err = tdp.query("SELECT COUNT(*) FROM t WHERE value > ?");
        assert!(
            matches!(err, Err(TdpError::Session(ref m)) if m.contains("parameter")),
            "{err:?}"
        );
    }

    #[test]
    fn parse_errors_surface_at_compile_time() {
        let tdp = Tdp::new();
        assert!(matches!(tdp.query("SELEKT nope"), Err(TdpError::Sql(_))));
    }

    #[test]
    fn default_device_applies_to_registration() {
        let tdp = Tdp::new();
        tdp.set_default_device(Device::Accel(2));
        assert_eq!(tdp.default_device(), Device::Accel(2));
        tdp.register_tensor("t", Tensor::<f32>::ones(&[4, 2]));
        // Data values unaffected by placement.
        let out = tdp.query("SELECT COUNT(*) FROM t").unwrap().run().unwrap();
        assert_eq!(out.rows(), 1);
    }
}
