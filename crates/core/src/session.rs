//! Sessions and the single-user facade: per-user state + query compiler.
//!
//! [`Session`] is the per-user handle onto a shared [`TdpEngine`]: it
//! carries everything that can legitimately differ between two users of
//! one engine (default device, scheduler knobs, session-local function
//! registrations whose trainable parameters ride the `Rc`-based autodiff
//! tape) and delegates everything shared (catalog, cross-session plan
//! cache, engine-registered functions, chain kernels, vector indexes) to
//! the engine. [`Tdp`] — an engine plus one session, `Deref`ing to the
//! session — keeps the embedded single-user API of the earlier PRs
//! intact.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

use tdp_exec::{
    KernelCache, ParamConstraint, ParamValue, ParamValues, PhysicalPlan, ScalarUdf, TableFunction,
    UdfRegistry,
};
use tdp_sql::plan::{LogicalPlan, PlannerContext};
use tdp_sql::{optimizer, parse};
use tdp_storage::{Catalog, Table, TableBuilder};
use tdp_tensor::{Device, F32Tensor};

use crate::compiled::{CompiledQuery, Prepared, QueryConfig};
use crate::engine::{SharedPlan, TdpEngine, PLAN_CACHE_CAP};
use crate::error::TdpError;

/// Static type of a bound (or to-be-bound) parameter value, for
/// declared-signature checking.
pub(crate) fn param_static_kind(v: Option<&ParamValue>) -> tdp_exec::StaticKind {
    use tdp_exec::StaticKind;
    match v {
        Some(ParamValue::Number(_)) => StaticKind::Number,
        Some(ParamValue::String(_)) => StaticKind::Str,
        Some(ParamValue::Bool(_)) => StaticKind::Bool,
        Some(ParamValue::Tensor(_)) => StaticKind::Column,
        Some(ParamValue::Null) | None => StaticKind::Unknown,
    }
}

/// Default worker count: `TDP_THREADS` when set to a positive integer,
/// else the machine's available parallelism.
fn default_threads() -> usize {
    std::env::var("TDP_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Default morsel size: `TDP_MORSEL_ROWS` when set, else the scheduler's
/// built-in default.
fn default_morsel_rows() -> usize {
    std::env::var("TDP_MORSEL_ROWS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(tdp_exec::DEFAULT_MORSEL_ROWS)
}

/// Default barrier-exchange partition count: `TDP_PARTITIONS` when set,
/// else the scheduler's built-in default (16).
fn default_partitions() -> usize {
    std::env::var("TDP_PARTITIONS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(tdp_exec::DEFAULT_PARTITIONS)
}

/// Default chain-kernel switch: on unless `TDP_CHAIN_KERNELS` is set to
/// `0`, `false` or `off`. Either way the interpreter remains the oracle;
/// the switch exists so CI can run the whole suite through both paths.
fn default_chain_kernels() -> bool {
    std::env::var("TDP_CHAIN_KERNELS")
        .map(|v| {
            !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off"
            )
        })
        .unwrap_or(true)
}

/// Default zone-map pruning switch: on unless `TDP_ZONE_MAPS` is set to
/// `0`, `false` or `off`. Pruning only ever skips morsels the filter
/// would reject wholesale, so CI runs the whole suite at both settings.
fn default_zone_maps() -> bool {
    std::env::var("TDP_ZONE_MAPS")
        .map(|v| {
            !matches!(
                v.trim().to_ascii_lowercase().as_str(),
                "0" | "false" | "off"
            )
        })
        .unwrap_or(true)
}

/// Default IVF auto-rebuild threshold: `TDP_IVF_REBUILD_AFTER=<n>`
/// retrains a stale IVF index at the next ANN query once it has fallen
/// back to the exact scan `n` times. Unset, unparsable, or `0` all mean
/// off — rebuilds are strictly opt-in.
fn default_ivf_rebuild_after() -> u64 {
    std::env::var("TDP_IVF_REBUILD_AFTER")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
}

/// A compilation cached in the session-local overlay: a plan whose name
/// resolution involved at least one *session-local* function, so it can
/// never be shared through the engine cache. Shape and invalidation
/// mirror [`crate::engine`]'s `SharedPlan`, plus the session registration
/// epoch.
struct LocalPlan {
    logical: Arc<LogicalPlan>,
    physical: Arc<PhysicalPlan>,
    fingerprint: u64,
    catalog_version: u64,
    /// Engine UDF epoch at compile time (engine registrations can change
    /// resolution for this plan too).
    engine_epoch: u64,
    /// Session-local registration epoch at compile time.
    local_epoch: u64,
    scans: Vec<(String, Vec<String>)>,
    param_constraints: Vec<ParamConstraint>,
    last_used: u64,
}

/// Plan-cache counters (see [`Session::plan_cache_stats`]). Hits, misses
/// and evictions accumulate engine-wide — over every session, whichever
/// tier (shared or session overlay) served the lookup; `entries` is the
/// current size. Together they distinguish cold misses (misses with few
/// evictions) from LRU churn (misses tracking evictions), which hit/miss
/// alone cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by LRU capacity eviction (invalidations and
    /// explicit clears are not evictions).
    pub evictions: u64,
    pub entries: usize,
}

/// One user's handle onto a shared [`TdpEngine`] — the per-user half of
/// the engine/session split (see [`crate::engine`] for the ownership
/// picture).
///
/// Sessions are single-threaded at the API surface (session-local
/// function parameters live on the autodiff tape, which is `Rc`-based,
/// exactly like a PyTorch process) and deliberately `!Send`; concurrency
/// comes from opening one session per thread on the same engine
/// ([`TdpEngine::session`]). Exact query execution is still
/// morsel-parallel *within* a session: scans are partitioned into
/// ~64k-row morsels and fused operator pipelines run across a worker
/// pool sized by [`Session::set_threads`] (default: the `TDP_THREADS`
/// environment variable, else the machine's available parallelism).
/// Thread count never changes results.
///
/// ## What lives where
///
/// Per session: bound parameter state on [`Prepared`] handles, the
/// default [`Device`], scheduler knobs (threads / morsel rows /
/// partitions / chain-kernel switch), functions registered with
/// [`Session::register_udf`] / [`Session::register_tvf`]. Per engine:
/// the catalog, the cross-session plan cache, functions registered with
/// [`Session::register_udf_parallel`], compiled chain kernels, vector
/// indexes.
///
/// ## Plan caching across sessions
///
/// [`Session::prepare`] consults the session's private overlay first
/// (plans involving session-local functions), then the engine's shared
/// cache. Plans compiled purely from builtins and engine-registered
/// functions land in the shared cache, so *another* session preparing
/// the same normalized statement hits without compiling; plans touching
/// session-local functions stay private. A shared entry records the
/// function names it resolved, and a session that has locally registered
/// any of them bypasses the entry — local registrations win without
/// poisoning other sessions.
/// Result of [`Session::execute`]: rows for queries, an acknowledgement
/// line for DDL.
#[derive(Debug)]
pub enum StatementOutcome {
    /// A SELECT's result table.
    Rows(Table),
    /// DDL acknowledgement (e.g. `CREATE INDEX idx`).
    Ack(String),
}

pub struct Session {
    engine: Arc<TdpEngine>,
    /// Session-local functions only (locally registered scalar UDFs and
    /// TVFs). Engine-registered functions are merged in per compilation
    /// ([`Session::udfs_snapshot`]); on a name collision the local
    /// registration wins.
    udfs: RefCell<UdfRegistry>,
    /// Bumped on every *session-local* registration; cached plans note it
    /// (registrations can change plan shape — e.g. the TVF-ness of a
    /// name).
    local_epoch: Cell<u64>,
    default_device: Cell<Device>,
    /// Session-local plan-cache overlay keyed like the engine cache
    /// (normalized statement text); holds only plans whose resolution
    /// involved session-local functions.
    plan_cache: RefCell<HashMap<String, LocalPlan>>,
    /// Morsel-scheduler worker count for exact execution.
    threads: Cell<usize>,
    /// Rows per morsel (tunable mostly for tests/benchmarks).
    morsel_rows: Cell<usize>,
    /// Barrier-exchange partition count (partitioned join / DISTINCT).
    partitions: Cell<usize>,
    /// `None` while the session's function resolution matches the
    /// engine's — the common case, sharing the engine's compiled
    /// chain-kernel cache. The first session-local registration diverges
    /// resolution, and the session switches to a private cache: compiled
    /// chains render UDF and builtin calls identically, so fingerprints
    /// collide across sessions that resolve the same name differently,
    /// and a shared cache could serve a compiled builtin to a session
    /// whose local UDF shadows it.
    private_kernels: RefCell<Option<Arc<KernelCache>>>,
    /// Last `(catalog version, engine UDF epoch)` the private kernel
    /// cache was synchronized against — engine-side changes invalidate it
    /// lazily on the next execution.
    kernel_sync: Cell<(u64, u64)>,
    /// Whether executions consult the chain-kernel compiler at all
    /// (default: `TDP_CHAIN_KERNELS`, else on).
    chain_kernels_on: Cell<bool>,
    /// Whether executions consult zone maps for chunk pruning
    /// (default: `TDP_ZONE_MAPS`, else on).
    zone_maps_on: Cell<bool>,
    /// Stale-IVF auto-rebuild threshold, 0 = off
    /// (default: `TDP_IVF_REBUILD_AFTER`).
    ivf_rebuild_after: Cell<u64>,
}

impl Session {
    pub(crate) fn new(engine: Arc<TdpEngine>) -> Session {
        Session {
            engine,
            udfs: RefCell::new(UdfRegistry::new()),
            local_epoch: Cell::new(0),
            default_device: Cell::new(Device::Cpu),
            plan_cache: RefCell::new(HashMap::new()),
            threads: Cell::new(default_threads()),
            morsel_rows: Cell::new(default_morsel_rows()),
            partitions: Cell::new(default_partitions()),
            private_kernels: RefCell::new(None),
            kernel_sync: Cell::new((0, 0)),
            chain_kernels_on: Cell::new(default_chain_kernels()),
            zone_maps_on: Cell::new(default_zone_maps()),
            ivf_rebuild_after: Cell::new(default_ivf_rebuild_after()),
        }
    }

    /// The shared engine this session runs on.
    pub fn engine(&self) -> &Arc<TdpEngine> {
        &self.engine
    }

    // ------------------------------------------------------------------
    // Morsel-scheduler configuration
    // ------------------------------------------------------------------

    /// Set the worker-thread count for exact query execution (clamped to
    /// ≥ 1). Results are identical at every thread count — parallelism
    /// only changes who processes each morsel.
    pub fn set_threads(&self, n: usize) {
        self.threads.set(n.max(1));
    }

    /// Current morsel-scheduler worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// Set the rows-per-morsel partition size (clamped to ≥ 1). Changing
    /// it may shift the last bit of parallel float aggregates (morsel
    /// boundaries move); at a fixed size, results are thread-invariant.
    pub fn set_morsel_rows(&self, n: usize) {
        self.morsel_rows.set(n.max(1));
    }

    /// Current rows-per-morsel partition size.
    pub fn morsel_rows(&self) -> usize {
        self.morsel_rows.get()
    }

    /// Set the barrier-exchange partition count (clamped to ≥ 1; default
    /// `TDP_PARTITIONS`, else 16). Partitioned hash joins and
    /// shared-nothing DISTINCT distribute rows across this many buckets
    /// by key hash. A plan property independent of
    /// [`Session::set_threads`]: changing it never changes results, only
    /// load balance.
    pub fn set_partitions(&self, n: usize) {
        self.partitions.set(n.max(1));
    }

    /// Current barrier-exchange partition count.
    pub fn partitions(&self) -> usize {
        self.partitions.get()
    }

    /// Enable or disable compiled chain kernels (default: the
    /// `TDP_CHAIN_KERNELS` environment variable, else on). Disabling
    /// routes every fused filter→project chain through the interpreter;
    /// results are identical either way — the compiler is a pure
    /// performance substitution with the interpreter as its oracle.
    pub fn set_chain_kernels(&self, on: bool) {
        self.chain_kernels_on.set(on);
    }

    /// Whether compiled chain kernels are consulted for execution.
    pub fn chain_kernels_enabled(&self) -> bool {
        self.chain_kernels_on.get()
    }

    /// Cumulative chain-kernel cache counters (hits, misses, evictions,
    /// interpreter fallbacks) plus the current compiled-entry count —
    /// the kernel-cache mirror of [`Session::plan_cache_stats`]. Reports
    /// the cache this session actually uses: the engine-shared cache
    /// until the session's first local function registration, its
    /// private cache after.
    pub fn chain_kernel_stats(&self) -> tdp_exec::ChainKernelStats {
        match &*self.private_kernels.borrow() {
            Some(cache) => cache.stats(),
            None => self.engine.chain_kernels().stats(),
        }
    }

    /// The kernel cache this session executes against, or `None` when
    /// chain kernels are disabled — threaded into each execution's
    /// `ExecContext`. A private cache is first synchronized against
    /// engine-side changes (catalog version / engine UDF epoch) it
    /// cannot observe directly.
    pub(crate) fn chain_kernels_handle(&self) -> Option<Arc<KernelCache>> {
        if !self.chain_kernels_on.get() {
            return None;
        }
        match &*self.private_kernels.borrow() {
            None => Some(Arc::clone(self.engine.chain_kernels())),
            Some(cache) => {
                let now = (self.engine.catalog().version(), self.engine.udf_epoch());
                if self.kernel_sync.get() != now {
                    cache.bump_epoch();
                    self.kernel_sync.set(now);
                }
                Some(Arc::clone(cache))
            }
        }
    }

    /// Invalidate compiled chains after a session-local registration.
    /// The engine cache cannot be bumped (other sessions' kernels remain
    /// valid), so the session leaves it: first divergence switches to a
    /// fresh private cache, later registrations epoch-bump it.
    fn diverge_kernels(&self) {
        let mut private = self.private_kernels.borrow_mut();
        match &*private {
            Some(cache) => cache.bump_epoch(),
            None => {
                self.kernel_sync
                    .set((self.engine.catalog().version(), self.engine.udf_epoch()));
                *private = Some(Arc::new(KernelCache::new()));
            }
        }
    }

    /// Enable or disable zone-map chunk pruning (default: the
    /// `TDP_ZONE_MAPS` environment variable, else on). Pruning is a pure
    /// performance substitution: a skipped morsel is one the compiled
    /// filter provably rejects wholesale, so results are byte-identical
    /// either way — which the test suite exercises at both settings.
    pub fn set_zone_maps(&self, on: bool) {
        self.zone_maps_on.set(on);
    }

    /// Whether zone-map chunk pruning is consulted during execution.
    pub fn zone_maps_enabled(&self) -> bool {
        self.zone_maps_on.get()
    }

    /// Set the stale-IVF auto-rebuild threshold (default: the
    /// `TDP_IVF_REBUILD_AFTER` environment variable, else 0 = off).
    /// With a threshold of `n`, an IVF index that has degraded to the
    /// exact fallback `n` times since its last build is retrained in
    /// place — same name, nlist and nprobe — by the next ANN query that
    /// would have fallen back again, and the tally resets. Rebuilds
    /// never change results (the fallback is already exact); they
    /// restore the approximate fast path after table appends.
    pub fn set_ivf_rebuild_after(&self, n: u64) {
        self.ivf_rebuild_after.set(n);
    }

    /// Current stale-IVF auto-rebuild threshold (0 = off).
    pub fn ivf_rebuild_after(&self) -> u64 {
        self.ivf_rebuild_after.get()
    }

    /// Device used by queries that do not override it.
    pub fn set_default_device(&self, device: Device) {
        self.default_device.set(device);
    }

    pub fn default_device(&self) -> Device {
        self.default_device.get()
    }

    /// The engine catalog (mostly for inspection/tests). Shared: tables
    /// registered here are visible to every session of the engine.
    pub fn catalog(&self) -> &Catalog {
        self.engine.catalog()
    }

    // ------------------------------------------------------------------
    // Registration (paper Listing 1: `tdp.sql.register_df`)
    // ------------------------------------------------------------------

    /// Register a table, placing it on the session's default device.
    pub fn register_table(&self, table: Table) {
        let device = self.default_device();
        self.engine.register_table(table.to_device(device));
    }

    /// Register a table on an explicit device.
    pub fn register_table_on(&self, table: Table, device: Device) {
        self.engine.register_table(table.to_device(device));
    }

    /// Append rows to an already-registered table instead of replacing
    /// it: zone maps are extended incrementally over the new rows and
    /// existing vector indexes are kept (stale — ANN queries fall back
    /// to exact search until the index is rebuilt). Returns `false` if
    /// the table is missing or the schemas disagree.
    pub fn append_rows(&self, name: &str, rows: &Table) -> bool {
        let device = self.default_device();
        self.engine.append_rows(name, &rows.to_device(device))
    }

    /// Register a bare tensor as a one-column table named after itself —
    /// the `register_tensor` of paper Listing 5, used to feed TVFs.
    pub fn register_tensor(&self, name: &str, tensor: F32Tensor) {
        let table = TableBuilder::new().col_tensor("value", tensor).build(name);
        self.register_table(table);
    }

    /// Register CSV text as a table (numeric columns inferred).
    pub fn register_csv(&self, name: &str, text: &str) -> Result<(), TdpError> {
        let table = tdp_storage::csv::parse_csv(name, text).map_err(TdpError::Session)?;
        self.register_table(table);
        Ok(())
    }

    /// Register a table from a TDPF file (the Parquet-registration analog
    /// of paper Listing 1). The table keeps the name stored in the file;
    /// returns that name.
    pub fn register_file(&self, path: impl AsRef<std::path::Path>) -> Result<String, TdpError> {
        let table = tdp_storage::load_table(path).map_err(|e| TdpError::Session(e.to_string()))?;
        let name = table.name().to_owned();
        self.register_table(table);
        Ok(name)
    }

    /// Save a registered table to a TDPF file, preserving column encodings.
    pub fn save_table(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), TdpError> {
        let table = self
            .catalog()
            .get(name)
            .ok_or_else(|| TdpError::Session(format!("unknown table '{name}'")))?;
        tdp_storage::save_table(&table, path).map_err(|e| TdpError::Session(e.to_string()))
    }

    /// Save every registered table into `dir` as `<table>.tdpf` files —
    /// a whole-database snapshot. Returns the table names written.
    pub fn save_catalog(&self, dir: impl AsRef<std::path::Path>) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| TdpError::Session(format!("cannot create {}: {e}", dir.display())))?;
        let mut names = self.catalog().names();
        names.sort();
        for name in &names {
            self.save_table(name, dir.join(format!("{name}.tdpf")))?;
        }
        Ok(names)
    }

    /// Register every `.tdpf` file found in `dir`. Returns the table
    /// names registered (the inverse of [`Session::save_catalog`]).
    pub fn open_catalog(&self, dir: impl AsRef<std::path::Path>) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| TdpError::Session(format!("cannot read {}: {e}", dir.display())))?;
        let mut names = Vec::new();
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "tdpf"))
            .collect();
        paths.sort();
        for path in paths {
            names.push(self.register_file(&path)?);
        }
        Ok(names)
    }

    /// Drop a table engine-wide; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.engine.drop_table(name)
    }

    // ------------------------------------------------------------------
    // Function registration (paper §3, the `tdp_udf` annotation)
    // ------------------------------------------------------------------

    /// Register a scalar UDF, visible to **this session only**. Functions
    /// registered here stay session-thread-bound — the right home for
    /// trainable UDFs whose parameters ride the `Rc`-based autodiff tape.
    /// On a name collision with an engine-registered function, the local
    /// registration wins for this session. Stateless functions should
    /// prefer [`Session::register_udf_parallel`].
    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.borrow_mut().register_scalar(udf);
        self.local_epoch.set(self.local_epoch.get() + 1);
        self.diverge_kernels();
    }

    /// Register a `Send + Sync` scalar UDF on the **engine**, visible to
    /// every session. Combined with a [`tdp_exec::FunctionSpec`]
    /// declaring `parallel_safe`, queries applying it execute through the
    /// morsel scheduler's worker pool instead of falling back to the
    /// sequential whole-batch path.
    pub fn register_udf_parallel(&self, udf: Arc<dyn ScalarUdf + Send + Sync>) {
        self.engine.register_udf_shared(udf);
    }

    /// Register a table-valued function, visible to **this session only**.
    pub fn register_tvf(&self, tvf: Arc<dyn TableFunction>) {
        self.udfs.borrow_mut().register_table_fn(tvf);
        self.local_epoch.set(self.local_epoch.get() + 1);
        self.diverge_kernels();
    }

    /// The session's complete function view: engine-registered functions
    /// merged with session-local ones (local wins on collision).
    pub(crate) fn udfs_snapshot(&self) -> UdfRegistry {
        UdfRegistry::merged(&self.engine.shared_udfs(), &self.udfs.borrow())
    }

    // ------------------------------------------------------------------
    // Query compilation (paper Listing 2 / Listing 6)
    // ------------------------------------------------------------------

    /// Compile SQL with the default configuration (exact operators,
    /// session default device). Desugars to a zero-parameter
    /// [`Session::prepare`] + bind: statements with `?`/`$n` placeholders
    /// must go through [`Session::prepare`] so values can be supplied.
    pub fn query(&self, sql: &str) -> Result<CompiledQuery<'_>, TdpError> {
        self.query_with(sql, QueryConfig::default().device(self.default_device()))
    }

    /// Compile SQL with an explicit configuration. With
    /// [`QueryConfig::trainable`], the physical plan uses the soft
    /// differentiable operators (paper §4).
    pub fn query_with(
        &self,
        sql: &str,
        config: QueryConfig,
    ) -> Result<CompiledQuery<'_>, TdpError> {
        self.prepare_with(sql, config)?.bind(ParamValues::new())
    }

    /// Execute a top-level statement. SELECT queries compile and run
    /// like [`Session::query`]; the vector-index DDL forms apply to the
    /// catalog eagerly and return an acknowledgement:
    ///
    /// ```sql
    /// CREATE INDEX idx ON vecs (emb) USING ivf(64, 8) METRIC l2
    /// DROP INDEX idx
    /// ```
    ///
    /// The default method is `flat` (exact) and the default metric `l2`
    /// — matching the `distance()` builtin the ANN top-k planner
    /// recognizes. Index builds are deterministic (fixed seed).
    pub fn execute(&self, sql: &str) -> Result<StatementOutcome, TdpError> {
        match tdp_sql::parse_statement(sql)? {
            tdp_sql::Statement::Query(_) => self.query(sql)?.run().map(StatementOutcome::Rows),
            tdp_sql::Statement::CreateIndex {
                name,
                table,
                column,
                method,
                metric,
            } => {
                let metric = match metric.as_deref() {
                    None | Some("l2") => tdp_index::Metric::L2,
                    Some("ip") | Some("inner_product") => tdp_index::Metric::InnerProduct,
                    Some("cosine") => tdp_index::Metric::Cosine,
                    Some(other) => {
                        return Err(TdpError::Session(format!(
                            "unknown metric '{other}'; expected l2, ip or cosine"
                        )))
                    }
                };
                let kind = match method {
                    tdp_sql::IndexMethod::Flat => crate::vector::IndexKind::Flat,
                    tdp_sql::IndexMethod::Ivf { nlist, nprobe } => {
                        crate::vector::IndexKind::IvfFlat(tdp_index::IvfParams::new(nlist), nprobe)
                    }
                };
                self.create_named_vector_index(&name, &table, &column, metric, kind, 0x5eed)?;
                Ok(StatementOutcome::Ack(format!("CREATE INDEX {name}")))
            }
            tdp_sql::Statement::DropIndex { name } => {
                if self.catalog().drop_vector_index(&name) {
                    self.clear_plan_cache();
                    self.engine.clear_plan_cache();
                    Ok(StatementOutcome::Ack(format!("DROP INDEX {name}")))
                } else {
                    Err(TdpError::Session(format!("no index named '{name}'")))
                }
            }
        }
    }

    /// Prepare SQL with the default configuration — parse,
    /// auto-parameterise literals, optimise and lower, once. The returned
    /// [`Prepared`] is bound with values per execution
    /// (`prepared.bind(params)?.run()`), the training-loop shape the paper
    /// compiles queries for.
    pub fn prepare(&self, sql: &str) -> Result<Prepared<'_>, TdpError> {
        self.prepare_with(sql, QueryConfig::default().device(self.default_device()))
    }

    /// Prepare SQL with an explicit configuration.
    ///
    /// Compilation results are cached by *normalized* statement text:
    /// every literal is lifted into a parameter slot before hashing, so
    /// texts differing only in constants — the REPL / training-loop
    /// pattern — hit the same compiled [`PhysicalPlan`]. The session
    /// overlay is consulted first, then the engine's cross-session cache
    /// (see the [`Session`] docs for the two-tier rules). Cache entries
    /// are invalidated when a referenced table's schema changes or when
    /// the relevant function registry changes, and evicted per-entry LRU
    /// at capacity.
    pub fn prepare_with(&self, sql: &str, config: QueryConfig) -> Result<Prepared<'_>, TdpError> {
        let ast = parse(sql)?;
        let merged = self.udfs_snapshot();
        // Immutable UDF calls over literal arguments fold into literals
        // *before* auto-parameterisation, so the folded constant shares
        // plan-cache entries like any other literal. (Folding consults
        // the merged registry, so sessions with different local functions
        // normalize to different keys — the text itself carries the
        // divergence.)
        let ast = tdp_exec::fold_immutable_udfs(ast, &merged);
        let explicit = tdp_sql::param::explicit_param_count(&ast);
        let (ast, literals) = tdp_sql::param::parameterize_literals(ast, explicit);
        let implicit: Vec<ParamValue> = literals.iter().map(ParamValue::from).collect();
        let key = ast.to_string();

        let catalog_version = self.engine.catalog().version();
        let engine_epoch = self.engine.udf_epoch();
        let local_epoch = self.local_epoch.get();

        // Tier 1: the session overlay (plans involving local functions).
        // Checked first because its entries *override* engine entries for
        // this session by construction.
        if let Some(entry) = self.plan_cache.borrow_mut().get_mut(&key) {
            let valid = entry.engine_epoch == engine_epoch
                && entry.local_epoch == local_epoch
                && (entry.catalog_version == catalog_version
                    || self.engine.scans_unchanged(&entry.scans));
            if valid {
                // Schemas re-validated above; fast-forward the version so
                // the next hit takes the cheap equality path.
                entry.catalog_version = catalog_version;
                entry.last_used = self.engine.tick();
                self.engine.note_plan_cache_hit();
                // The cache key is literal-invariant, so a cached plan can
                // be served for a text whose literals have *different
                // types*. The plan structure was fully validated when the
                // entry was built; only the binding-dependent slot
                // constraints need rechecking against this text's values.
                tdp_exec::validate_param_constraints(&entry.param_constraints, &|idx| {
                    if idx < explicit {
                        tdp_exec::StaticKind::Unknown
                    } else {
                        param_static_kind(implicit.get(idx - explicit))
                    }
                })?;
                return Ok(Prepared::new(
                    self,
                    Arc::clone(&entry.logical),
                    Arc::clone(&entry.physical),
                    entry.fingerprint,
                    config,
                    explicit,
                    implicit,
                    entry.param_constraints.clone(),
                ));
            }
        }

        // Tier 2: the engine's cross-session cache (plans this session's
        // local registrations do not interfere with).
        if let Some(hit) =
            self.engine
                .cached_plan(&key, engine_epoch, catalog_version, &self.udfs.borrow())
        {
            tdp_exec::validate_param_constraints(&hit.param_constraints, &|idx| {
                if idx < explicit {
                    tdp_exec::StaticKind::Unknown
                } else {
                    param_static_kind(implicit.get(idx - explicit))
                }
            })?;
            return Ok(Prepared::new(
                self,
                hit.logical,
                hit.physical,
                hit.fingerprint,
                config,
                explicit,
                implicit,
                hit.param_constraints,
            ));
        }
        self.engine.note_plan_cache_miss();

        let plan = tdp_sql::plan::build_plan(
            &ast,
            &PlannerContext {
                is_tvf: &|n| merged.is_table_fn(n),
            },
        )?;
        let plan = optimizer::optimize(plan);
        let physical = Arc::new(tdp_exec::lower(&plan, self.engine.catalog(), &merged)?);
        let param_constraints = tdp_exec::param_arg_constraints(&physical, &merged);
        let logical = Arc::new(plan);
        let fingerprint = physical.fingerprint();
        self.validate_signatures(&physical, &merged, explicit, &implicit)?;

        // Cache only plans whose scans all resolved a schema: a plan
        // compiled against a missing table must not pin that state.
        let scans = physical.scans();
        if scans.iter().all(|(_, s)| s.is_some()) {
            let scans: Vec<(String, Vec<String>)> = scans
                .into_iter()
                .map(|(t, s)| (t, s.expect("checked above")))
                .collect();
            let functions = physical.function_names();
            let locally_resolved = {
                let local = self.udfs.borrow();
                functions
                    .iter()
                    .any(|n| local.is_scalar(n) || local.is_table_fn(n))
            };
            if locally_resolved {
                self.store_local(
                    key,
                    LocalPlan {
                        logical: Arc::clone(&logical),
                        physical: Arc::clone(&physical),
                        fingerprint,
                        catalog_version,
                        engine_epoch,
                        local_epoch,
                        scans,
                        param_constraints: param_constraints.clone(),
                        last_used: self.engine.tick(),
                    },
                );
            } else {
                self.engine.store_plan(
                    key,
                    SharedPlan {
                        logical: Arc::clone(&logical),
                        physical: Arc::clone(&physical),
                        fingerprint,
                        catalog_version,
                        udf_epoch: engine_epoch,
                        scans,
                        functions,
                        param_constraints: param_constraints.clone(),
                        last_used: self.engine.tick(),
                    },
                );
            }
        }
        Ok(Prepared::new(
            self,
            logical,
            physical,
            fingerprint,
            config,
            explicit,
            implicit,
            param_constraints,
        ))
    }

    /// Insert into the session overlay, evicting its stalest entry at
    /// capacity (the overlay has its own [`PLAN_CACHE_CAP`] budget,
    /// separate from the engine cache's).
    fn store_local(&self, key: String, plan: LocalPlan) {
        let mut cache = self.plan_cache.borrow_mut();
        if cache.len() >= PLAN_CACHE_CAP && !cache.contains_key(&key) {
            if let Some(oldest) = cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                cache.remove(&oldest);
                self.engine.note_plan_cache_eviction();
            }
        }
        cache.insert(key, plan);
    }

    /// Check every UDF/TVF call of a lowered plan against its declared
    /// signature, resolving the auto-extracted literal slots to their
    /// types. The full plan walk runs once per compilation (cache miss);
    /// hits and [`Prepared::bind`] recheck only the precomputed
    /// binding-dependent slot constraints.
    fn validate_signatures(
        &self,
        physical: &PhysicalPlan,
        udfs: &UdfRegistry,
        explicit: usize,
        implicit: &[ParamValue],
    ) -> Result<(), TdpError> {
        let kind = |idx: usize| -> tdp_exec::StaticKind {
            if idx < explicit {
                return tdp_exec::StaticKind::Unknown;
            }
            param_static_kind(implicit.get(idx - explicit))
        };
        tdp_exec::validate_function_args(physical, udfs, &kind)?;
        Ok(())
    }

    /// Number of cached compiled plans visible to this session: engine
    /// entries plus this session's overlay (diagnostics / tests).
    pub fn plan_cache_len(&self) -> usize {
        self.engine.plan_cache_stats().entries + self.plan_cache.borrow().len()
    }

    /// Cumulative engine-wide hit/miss/eviction counters plus the entry
    /// count visible to this session (engine cache + session overlay).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        let mut stats = self.engine.plan_cache_stats();
        stats.entries += self.plan_cache.borrow().len();
        stats
    }

    /// Drop every cached compiled plan — the engine cache *and* this
    /// session's overlay (counters keep accumulating).
    pub fn clear_plan_cache(&self) {
        self.engine.clear_plan_cache();
        self.plan_cache.borrow_mut().clear();
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        self.engine.note_session_closed();
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("default_device", &self.default_device.get())
            .field("threads", &self.threads.get())
            .finish_non_exhaustive()
    }
}

/// An AI-centric database, embedded: one [`TdpEngine`] plus one
/// [`Session`], presented as a single handle. `Tdp` dereferences to its
/// session, so the whole session API (`query`, `prepare`,
/// `register_table`, …) is available directly — existing single-user
/// code keeps compiling unchanged on top of the engine/session split.
///
/// For multi-user embedding (one session per thread over shared tables
/// and caches), create the engine explicitly:
///
/// ```
/// use tdp_core::TdpEngine;
///
/// let engine = TdpEngine::new();
/// let session_a = engine.session(); // e.g. one per thread
/// let session_b = engine.session();
/// # drop((session_a, session_b));
/// ```
pub struct Tdp {
    session: Session,
}

impl Default for Tdp {
    fn default() -> Self {
        Tdp::new()
    }
}

impl Tdp {
    /// A fresh engine with one session on it.
    pub fn new() -> Tdp {
        Tdp {
            session: TdpEngine::new().session(),
        }
    }

    /// The underlying shared engine — open more sessions from other
    /// threads with [`TdpEngine::session`].
    pub fn engine(&self) -> &Arc<TdpEngine> {
        self.session.engine()
    }

    /// The facade's own session, explicitly.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Unwrap into the underlying session.
    pub fn into_session(self) -> Session {
        self.session
    }
}

impl std::ops::Deref for Tdp {
    type Target = Session;

    fn deref(&self) -> &Session {
        &self.session
    }
}

impl std::fmt::Debug for Tdp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tdp")
            .field("session", &self.session)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    #[test]
    fn register_and_query_round_trip() {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .build("t"),
        );
        let out = tdp
            .query("SELECT x FROM t WHERE x >= 2")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn register_tensor_creates_value_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("grid", Tensor::<f32>::zeros(&[2, 1, 4, 4]));
        let t = tdp.catalog().get("grid").expect("registered");
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("value").unwrap().data.row_shape(), vec![1, 4, 4]);
    }

    #[test]
    fn re_registration_replaces_input_like_listing5() {
        let tdp = Tdp::new();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[1, 2]));
        let q = tdp.query("SELECT COUNT(*) FROM g").unwrap();
        assert_eq!(
            q.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1]
        );
        // New input under the same name; the *same* compiled query sees it.
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[5, 2]));
        assert_eq!(
            q.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![5]
        );
    }

    #[test]
    fn csv_registration() {
        let tdp = Tdp::new();
        tdp.register_csv("iris", "w,species\n1.5,a\n2.5,b\n")
            .unwrap();
        let out = tdp.query("SELECT AVG(w) FROM iris").unwrap().run().unwrap();
        assert_eq!(
            out.column("AVG(w)").unwrap().data.decode_f32().to_vec(),
            vec![2.0]
        );
        assert!(tdp.register_csv("bad", "").is_err());
    }

    #[test]
    fn drop_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("tmp", Tensor::<f32>::zeros(&[1]));
        assert!(tdp.drop_table("tmp"));
        assert!(!tdp.drop_table("tmp"));
        assert!(tdp.query("SELECT * FROM tmp").unwrap().run().is_err());
    }

    #[test]
    fn file_round_trip_through_session() {
        let dir = std::env::temp_dir().join("tdp_session_files");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("numbers.tdpf");

        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .col_str("tag", &["a", "b", "a"])
                .build("numbers"),
        );
        tdp.save_table("numbers", &path).unwrap();
        assert!(matches!(
            tdp.save_table("missing", &path),
            Err(TdpError::Session(_))
        ));

        let fresh = Tdp::new();
        let name = fresh.register_file(&path).unwrap();
        assert_eq!(name, "numbers");
        let out = fresh
            .query("SELECT tag, COUNT(*) FROM numbers GROUP BY tag")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), 2);
        std::fs::remove_file(&path).ok();
        assert!(fresh.register_file(&path).is_err());
    }

    #[test]
    fn catalog_snapshot_round_trip() {
        let dir = std::env::temp_dir().join("tdp_catalog_snapshot");
        std::fs::remove_dir_all(&dir).ok();

        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("a", vec![1.0]).build("t1"));
        tdp.register_table(TableBuilder::new().col_f32("b", vec![2.0, 3.0]).build("t2"));
        let written = tdp.save_catalog(&dir).unwrap();
        assert_eq!(written, vec!["t1", "t2"]);

        let fresh = Tdp::new();
        let opened = fresh.open_catalog(&dir).unwrap();
        assert_eq!(opened, vec!["t1", "t2"]);
        assert_eq!(fresh.catalog().get("t2").unwrap().rows(), 2);
        std::fs::remove_dir_all(&dir).ok();
        assert!(fresh.open_catalog(&dir).is_err());
    }

    #[test]
    fn plan_cache_hits_and_is_fingerprint_identical() {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .build("t"),
        );
        let sql = "SELECT x FROM t WHERE x > 1 ORDER BY x DESC LIMIT 2";
        let q1 = tdp.query(sql).unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        let q2 = tdp.query(sql).unwrap();
        assert_eq!(tdp.plan_cache_len(), 1, "second compile is a cache hit");
        assert_eq!(q1.fingerprint(), q2.fingerprint());
        // The cached physical plan is literally shared, not re-lowered.
        assert!(std::ptr::eq(q1.physical_plan(), q2.physical_plan()));
        // Plans are config-independent: a different config reuses the
        // same cache entry (the config rides on the BoundQuery).
        let q3 = tdp
            .query_with(sql, QueryConfig::default().temperature(0.5))
            .unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        assert_eq!(q3.fingerprint(), q1.fingerprint());
        assert!(std::ptr::eq(q1.physical_plan(), q3.physical_plan()));
        assert_eq!(q3.config().temperature, 0.5);
    }

    #[test]
    fn plan_cache_is_literal_invariant() {
        // The tentpole acceptance: texts differing only in literal values
        // share one entry, and the hit counter proves the reuse.
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .col_str("tag", &["a", "b", "a"])
                .build("t"),
        );
        let a = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 1.5 AND tag = 'a'")
            .unwrap();
        let stats0 = tdp.plan_cache_stats();
        assert_eq!((stats0.hits, stats0.misses, stats0.entries), (0, 1, 1));
        assert_eq!(stats0.evictions, 0);
        let b = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 0.5 AND tag = 'b'")
            .unwrap();
        let stats1 = tdp.plan_cache_stats();
        assert_eq!(
            (stats1.hits, stats1.misses, stats1.entries),
            (1, 1, 1),
            "second literal variant must hit the shared entry"
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(std::ptr::eq(a.physical_plan(), b.physical_plan()));
        // …and each variant still computes with its own constants.
        assert_eq!(
            a.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1],
            "x > 1.5 AND tag = 'a' keeps only x=3"
        );
        assert_eq!(
            b.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1],
            "x > 0.5 AND tag = 'b' keeps only x=2"
        );
        // Coinciding literal values must not split the entry: slots are
        // per occurrence, not per distinct value.
        let c = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 1.5 AND tag = 'a' AND x < 1.5")
            .unwrap();
        let d = tdp
            .query("SELECT COUNT(*) FROM t WHERE x > 0.5 AND tag = 'b' AND x < 2.5")
            .unwrap();
        assert_eq!(c.fingerprint(), d.fingerprint());
        assert!(std::ptr::eq(c.physical_plan(), d.physical_plan()));
        assert_eq!(
            d.run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![1]
        );
    }

    #[test]
    fn auto_parameterised_select_items_keep_their_names() {
        // Extraction must not leak `$n` into result column names: a
        // result set stays self-describing even though the values moved
        // into the binding.
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        let out = tdp.query("SELECT 5, x * 2 FROM t").unwrap().run().unwrap();
        assert_eq!(
            out.column("5").unwrap().data.decode_f32().to_vec(),
            vec![5.0, 5.0]
        );
        assert_eq!(
            out.column("(x * 2)").unwrap().data.decode_f32().to_vec(),
            vec![2.0, 4.0]
        );
        let out7 = tdp.query("SELECT 7, x * 2 FROM t").unwrap().run().unwrap();
        assert!(
            out7.column("7").is_some(),
            "each text names its own constant column"
        );
    }

    #[test]
    fn auto_parameterisation_keeps_constant_folding_alive() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 5.0]).build("t"));
        // Literal arithmetic folds before extraction: one slot, not two…
        let q = tdp.query("SELECT x FROM t WHERE x > 1 + 2").unwrap();
        let text = q.explain();
        assert!(text.contains("(x@0 > $1)"), "{text}");
        assert!(!text.contains("$2"), "folded to a single slot: {text}");
        // …and equivalent spellings share the cache entry.
        let q2 = tdp.query("SELECT x FROM t WHERE x > 3").unwrap();
        assert!(std::ptr::eq(q.physical_plan(), q2.physical_plan()));
        // Trivially-true predicates still vanish entirely.
        let t = tdp.query("SELECT x FROM t WHERE 1 < 2").unwrap();
        assert!(!t.explain().contains("Filter"), "{}", t.explain());
        assert_eq!(t.run().unwrap().rows(), 2);
    }

    #[test]
    fn plan_cache_invalidates_on_subquery_table_schema_change() {
        // Scans inside scalar subqueries pin cache validity too: changing
        // the subquery's table schema must recompile, not serve the stale
        // plan forever.
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 5.0]).build("t"));
        tdp.register_table(TableBuilder::new().col_f32("y", vec![3.0]).build("sub"));
        let sql = "SELECT x FROM t WHERE x > (SELECT MAX(y) FROM sub)";
        let before = tdp.query(sql).unwrap();
        assert_eq!(
            before
                .run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![5.0]
        );
        // y moves from slot 0 to slot 1.
        tdp.register_table(
            TableBuilder::new()
                .col_f32("pad", vec![0.0])
                .col_f32("y", vec![0.5])
                .build("sub"),
        );
        let after = tdp.query(sql).unwrap();
        assert_ne!(after.fingerprint(), before.fingerprint());
        assert_eq!(
            after
                .run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![1.0, 5.0]
        );
    }

    #[test]
    fn plan_fingerprints_distinguish_subqueries() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0]).build("t"));
        tdp.register_table(TableBuilder::new().col_f32("y", vec![2.0]).build("sub"));
        let a = tdp
            .query("SELECT x FROM t WHERE x > (SELECT MAX(y) FROM sub)")
            .unwrap()
            .fingerprint();
        let b = tdp
            .query("SELECT x FROM t WHERE x > (SELECT MIN(y) FROM sub)")
            .unwrap()
            .fingerprint();
        assert_ne!(a, b, "subquery content must reach the fingerprint");
    }

    #[test]
    fn plan_cache_is_bounded_with_lru_eviction() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0]).build("t"));
        // Literal variants all share ONE entry now…
        for i in 0..(PLAN_CACHE_CAP + 10) {
            tdp.query(&format!("SELECT x FROM t WHERE x > {i}"))
                .unwrap();
        }
        assert_eq!(tdp.plan_cache_len(), 1, "literal variants share an entry");
        // …so overflow needs structurally distinct statements.
        for i in 0..(PLAN_CACHE_CAP + 9) {
            tdp.query(&format!("SELECT x FROM t LIMIT {i}")).unwrap();
        }
        assert_eq!(tdp.plan_cache_len(), PLAN_CACHE_CAP, "bounded");
        // The filter entry was the least recently used -> evicted; the
        // most recent LIMIT entries survive.
        let before = tdp.plan_cache_stats();
        tdp.query(&format!("SELECT x FROM t LIMIT {}", PLAN_CACHE_CAP + 8))
            .unwrap();
        assert_eq!(
            tdp.plan_cache_stats().hits,
            before.hits + 1,
            "a recent entry must survive LRU eviction"
        );
        let before = tdp.plan_cache_stats();
        tdp.query("SELECT x FROM t WHERE x > 42").unwrap();
        assert_eq!(
            tdp.plan_cache_stats().misses,
            before.misses + 1,
            "the stalest entry must have been evicted"
        );
        // Still functional after evictions.
        assert_eq!(
            tdp.query("SELECT COUNT(*) FROM t")
                .unwrap()
                .run()
                .unwrap()
                .rows(),
            1
        );
    }

    #[test]
    fn plan_cache_survives_same_schema_re_registration() {
        // The Listing-5 training loop re-registers the input every
        // iteration with an identical schema: the cache must keep hitting.
        let tdp = Tdp::new();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[2, 2]));
        let sql = "SELECT COUNT(*) FROM g";
        let a = tdp.query(sql).unwrap().fingerprint();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[7, 2]));
        let b = tdp.query(sql).unwrap().fingerprint();
        assert_eq!(a, b);
        assert_eq!(tdp.plan_cache_len(), 1);
        assert_eq!(
            tdp.query(sql)
                .unwrap()
                .run()
                .unwrap()
                .column("COUNT(*)")
                .unwrap()
                .data
                .decode_i64()
                .to_vec(),
            vec![7]
        );
    }

    #[test]
    fn plan_cache_invalidates_on_schema_change() {
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t"));
        let sql = "SELECT x FROM t";
        let before = tdp.query(sql).unwrap().fingerprint();
        // Same name, different schema: slots move, the entry must recompile.
        tdp.register_table(
            TableBuilder::new()
                .col_f32("pad", vec![0.0, 0.0])
                .col_f32("x", vec![3.0, 4.0])
                .build("t"),
        );
        let q = tdp.query(sql).unwrap();
        assert_ne!(q.fingerprint(), before, "x moved from slot 0 to slot 1");
        assert_eq!(
            q.run()
                .unwrap()
                .column("x")
                .unwrap()
                .data
                .decode_f32()
                .to_vec(),
            vec![3.0, 4.0]
        );
    }

    #[test]
    fn plan_cache_invalidates_on_function_registration() {
        use tdp_encoding::EncodedTensor;
        struct Boost;
        impl ScalarUdf for Boost {
            fn name(&self) -> &str {
                "boost"
            }
            fn invoke(
                &self,
                args: &[tdp_exec::ArgValue],
                _ctx: &tdp_exec::ExecContext,
            ) -> Result<EncodedTensor, tdp_exec::ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().mul_scalar(10.0),
                ))
            }
        }
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("abs", vec![-1.0]).build("t"));
        // 'ABS(abs)' resolves to the built-in before registration…
        let sql = "SELECT ABS(abs) AS v FROM t";
        let v1 = tdp.query(sql).unwrap().run().unwrap();
        assert_eq!(
            v1.column("v").unwrap().data.decode_f32().to_vec(),
            vec![1.0]
        );
        // …and to the session UDF of the same name after: the cached plan
        // must not survive the registration.
        tdp.register_udf(Arc::new(Boost));
        struct Abs;
        impl ScalarUdf for Abs {
            fn name(&self) -> &str {
                "abs"
            }
            fn invoke(
                &self,
                args: &[tdp_exec::ArgValue],
                _ctx: &tdp_exec::ExecContext,
            ) -> Result<EncodedTensor, tdp_exec::ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().mul_scalar(-2.0),
                ))
            }
        }
        tdp.register_udf(Arc::new(Abs));
        let v2 = tdp.query(sql).unwrap().run().unwrap();
        assert_eq!(
            v2.column("v").unwrap().data.decode_f32().to_vec(),
            vec![2.0],
            "UDF override must take effect after registration"
        );
    }

    #[test]
    fn clear_plan_cache_empties_it() {
        let tdp = Tdp::new();
        tdp.register_tensor("t", Tensor::<f32>::zeros(&[1]));
        tdp.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(tdp.plan_cache_len(), 1);
        tdp.clear_plan_cache();
        assert_eq!(tdp.plan_cache_len(), 0);
        assert_eq!(tdp.plan_cache_stats().entries, 0);
    }

    #[test]
    fn query_on_parameterised_sql_requires_prepare() {
        let tdp = Tdp::new();
        tdp.register_tensor("t", Tensor::<f32>::zeros(&[3]));
        let err = tdp.query("SELECT COUNT(*) FROM t WHERE value > ?");
        assert!(
            matches!(err, Err(TdpError::Session(ref m)) if m.contains("parameter")),
            "{err:?}"
        );
    }

    #[test]
    fn parse_errors_surface_at_compile_time() {
        let tdp = Tdp::new();
        assert!(matches!(tdp.query("SELEKT nope"), Err(TdpError::Sql(_))));
    }

    #[test]
    fn default_device_applies_to_registration() {
        let tdp = Tdp::new();
        tdp.set_default_device(Device::Accel(2));
        assert_eq!(tdp.default_device(), Device::Accel(2));
        tdp.register_tensor("t", Tensor::<f32>::ones(&[4, 2]));
        // Data values unaffected by placement.
        let out = tdp.query("SELECT COUNT(*) FROM t").unwrap().run().unwrap();
        assert_eq!(out.rows(), 1);
    }

    #[test]
    fn local_udf_plans_stay_in_the_session_overlay() {
        use tdp_encoding::EncodedTensor;
        struct Twice;
        impl ScalarUdf for Twice {
            fn name(&self) -> &str {
                "twice"
            }
            fn invoke(
                &self,
                args: &[tdp_exec::ArgValue],
                _ctx: &tdp_exec::ExecContext,
            ) -> Result<EncodedTensor, tdp_exec::ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().mul_scalar(2.0),
                ))
            }
        }
        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("x", vec![3.0]).build("t"));
        tdp.register_udf(Arc::new(Twice));
        tdp.query("SELECT twice(x) FROM t").unwrap().run().unwrap();
        assert_eq!(
            tdp.engine().plan_cache_stats().entries,
            0,
            "a plan resolving a session-local UDF must not enter the shared cache"
        );
        assert_eq!(tdp.plan_cache_len(), 1, "…but is cached in the overlay");
        let before = tdp.plan_cache_stats();
        tdp.query("SELECT twice(x) FROM t").unwrap();
        assert_eq!(tdp.plan_cache_stats().hits, before.hits + 1);
        // A plan with no local resolution still shares engine-wide.
        tdp.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(tdp.engine().plan_cache_stats().entries, 1);
    }
}
