//! TDP sessions: catalog + function registry + query compiler.

use std::cell::RefCell;
use std::sync::Arc;

use tdp_exec::{ScalarUdf, TableFunction, UdfRegistry};
use tdp_sql::plan::PlannerContext;
use tdp_sql::{optimizer, parse};
use tdp_storage::{Catalog, Table, TableBuilder};
use tdp_tensor::{Device, F32Tensor};

use crate::compiled::{CompiledQuery, QueryConfig};
use crate::error::TdpError;

/// An AI-centric database session.
///
/// Sessions are single-threaded (function parameters live on the autodiff
/// tape, which is `Rc`-based, exactly like a PyTorch process); parallelism
/// comes from the device the kernels run on.
pub struct Tdp {
    catalog: Catalog,
    udfs: RefCell<UdfRegistry>,
    default_device: RefCell<Device>,
    vector_indexes: RefCell<crate::vector::VectorIndexes>,
}

impl Default for Tdp {
    fn default() -> Self {
        Tdp::new()
    }
}

impl Tdp {
    pub fn new() -> Tdp {
        Tdp {
            catalog: Catalog::new(),
            udfs: RefCell::new(UdfRegistry::new()),
            default_device: RefCell::new(Device::Cpu),
            vector_indexes: RefCell::new(Default::default()),
        }
    }

    pub(crate) fn vector_indexes_mut<R>(
        &self,
        f: impl FnOnce(&mut crate::vector::VectorIndexes) -> R,
    ) -> R {
        f(&mut self.vector_indexes.borrow_mut())
    }

    pub(crate) fn with_vector_indexes<R>(
        &self,
        f: impl FnOnce(&crate::vector::VectorIndexes) -> R,
    ) -> R {
        f(&self.vector_indexes.borrow())
    }

    /// Device used by queries that do not override it.
    pub fn set_default_device(&self, device: Device) {
        *self.default_device.borrow_mut() = device;
    }

    pub fn default_device(&self) -> Device {
        *self.default_device.borrow()
    }

    /// The session catalog (mostly for inspection/tests).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    // ------------------------------------------------------------------
    // Registration (paper Listing 1: `tdp.sql.register_df`)
    // ------------------------------------------------------------------

    /// Register a table, placing it on the session's default device.
    pub fn register_table(&self, table: Table) {
        let device = self.default_device();
        self.catalog.register(table.to_device(device));
    }

    /// Register a table on an explicit device.
    pub fn register_table_on(&self, table: Table, device: Device) {
        self.catalog.register(table.to_device(device));
    }

    /// Register a bare tensor as a one-column table named after itself —
    /// the `register_tensor` of paper Listing 5, used to feed TVFs.
    pub fn register_tensor(&self, name: &str, tensor: F32Tensor) {
        let table = TableBuilder::new().col_tensor("value", tensor).build(name);
        self.register_table(table);
    }

    /// Register CSV text as a table (numeric columns inferred).
    pub fn register_csv(&self, name: &str, text: &str) -> Result<(), TdpError> {
        let table =
            tdp_storage::csv::parse_csv(name, text).map_err(TdpError::Session)?;
        self.register_table(table);
        Ok(())
    }

    /// Register a table from a TDPF file (the Parquet-registration analog
    /// of paper Listing 1). The table keeps the name stored in the file;
    /// returns that name.
    pub fn register_file(&self, path: impl AsRef<std::path::Path>) -> Result<String, TdpError> {
        let table = tdp_storage::load_table(path)
            .map_err(|e| TdpError::Session(e.to_string()))?;
        let name = table.name().to_owned();
        self.register_table(table);
        Ok(name)
    }

    /// Save a registered table to a TDPF file, preserving column encodings.
    pub fn save_table(
        &self,
        name: &str,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), TdpError> {
        let table = self
            .catalog
            .get(name)
            .ok_or_else(|| TdpError::Session(format!("unknown table '{name}'")))?;
        tdp_storage::save_table(&table, path).map_err(|e| TdpError::Session(e.to_string()))
    }

    /// Save every registered table into `dir` as `<table>.tdpf` files —
    /// a whole-database snapshot. Returns the table names written.
    pub fn save_catalog(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)
            .map_err(|e| TdpError::Session(format!("cannot create {}: {e}", dir.display())))?;
        let mut names = self.catalog.names();
        names.sort();
        for name in &names {
            self.save_table(name, dir.join(format!("{name}.tdpf")))?;
        }
        Ok(names)
    }

    /// Register every `.tdpf` file found in `dir`. Returns the table
    /// names registered (the inverse of [`Tdp::save_catalog`]).
    pub fn open_catalog(
        &self,
        dir: impl AsRef<std::path::Path>,
    ) -> Result<Vec<String>, TdpError> {
        let dir = dir.as_ref();
        let entries = std::fs::read_dir(dir)
            .map_err(|e| TdpError::Session(format!("cannot read {}: {e}", dir.display())))?;
        let mut names = Vec::new();
        let mut paths: Vec<_> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "tdpf"))
            .collect();
        paths.sort();
        for path in paths {
            names.push(self.register_file(&path)?);
        }
        Ok(names)
    }

    /// Drop a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.catalog.drop_table(name)
    }

    // ------------------------------------------------------------------
    // Function registration (paper §3, the `tdp_udf` annotation)
    // ------------------------------------------------------------------

    /// Register a scalar UDF.
    pub fn register_udf(&self, udf: Arc<dyn ScalarUdf>) {
        self.udfs.borrow_mut().register_scalar(udf);
    }

    /// Register a table-valued function.
    pub fn register_tvf(&self, tvf: Arc<dyn TableFunction>) {
        self.udfs.borrow_mut().register_table_fn(tvf);
    }

    pub(crate) fn udfs_snapshot(&self) -> UdfRegistry {
        self.udfs.borrow().clone()
    }

    // ------------------------------------------------------------------
    // Query compilation (paper Listing 2 / Listing 6)
    // ------------------------------------------------------------------

    /// Compile SQL with the default configuration (exact operators,
    /// session default device).
    pub fn query(&self, sql: &str) -> Result<CompiledQuery<'_>, TdpError> {
        self.query_with(sql, QueryConfig::default().device(self.default_device()))
    }

    /// Compile SQL with an explicit configuration. With
    /// [`QueryConfig::trainable`], the physical plan uses the soft
    /// differentiable operators (paper §4).
    pub fn query_with(
        &self,
        sql: &str,
        config: QueryConfig,
    ) -> Result<CompiledQuery<'_>, TdpError> {
        let ast = parse(sql)?;
        let udfs = self.udfs.borrow();
        let plan = tdp_sql::plan::build_plan(
            &ast,
            &PlannerContext { is_tvf: &|n| udfs.is_table_fn(n) },
        )?;
        drop(udfs);
        let plan = optimizer::optimize(plan);
        Ok(CompiledQuery::new(self, plan, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    #[test]
    fn register_and_query_round_trip() {
        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .build("t"),
        );
        let out = tdp.query("SELECT x FROM t WHERE x >= 2").unwrap().run().unwrap();
        assert_eq!(out.rows(), 2);
    }

    #[test]
    fn register_tensor_creates_value_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("grid", Tensor::<f32>::zeros(&[2, 1, 4, 4]));
        let t = tdp.catalog().get("grid").expect("registered");
        assert_eq!(t.rows(), 2);
        assert_eq!(t.column("value").unwrap().data.row_shape(), vec![1, 4, 4]);
    }

    #[test]
    fn re_registration_replaces_input_like_listing5() {
        let tdp = Tdp::new();
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[1, 2]));
        let q = tdp.query("SELECT COUNT(*) FROM g").unwrap();
        assert_eq!(
            q.run().unwrap().column("COUNT(*)").unwrap().data.decode_i64().to_vec(),
            vec![1]
        );
        // New input under the same name; the *same* compiled query sees it.
        tdp.register_tensor("g", Tensor::<f32>::zeros(&[5, 2]));
        assert_eq!(
            q.run().unwrap().column("COUNT(*)").unwrap().data.decode_i64().to_vec(),
            vec![5]
        );
    }

    #[test]
    fn csv_registration() {
        let tdp = Tdp::new();
        tdp.register_csv("iris", "w,species\n1.5,a\n2.5,b\n").unwrap();
        let out = tdp.query("SELECT AVG(w) FROM iris").unwrap().run().unwrap();
        assert_eq!(
            out.column("AVG(w)").unwrap().data.decode_f32().to_vec(),
            vec![2.0]
        );
        assert!(tdp.register_csv("bad", "").is_err());
    }

    #[test]
    fn drop_table() {
        let tdp = Tdp::new();
        tdp.register_tensor("tmp", Tensor::<f32>::zeros(&[1]));
        assert!(tdp.drop_table("tmp"));
        assert!(!tdp.drop_table("tmp"));
        assert!(tdp.query("SELECT * FROM tmp").unwrap().run().is_err());
    }

    #[test]
    fn file_round_trip_through_session() {
        let dir = std::env::temp_dir().join("tdp_session_files");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("numbers.tdpf");

        let tdp = Tdp::new();
        tdp.register_table(
            TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0])
                .col_str("tag", &["a", "b", "a"])
                .build("numbers"),
        );
        tdp.save_table("numbers", &path).unwrap();
        assert!(matches!(
            tdp.save_table("missing", &path),
            Err(TdpError::Session(_))
        ));

        let fresh = Tdp::new();
        let name = fresh.register_file(&path).unwrap();
        assert_eq!(name, "numbers");
        let out = fresh
            .query("SELECT tag, COUNT(*) FROM numbers GROUP BY tag")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(out.rows(), 2);
        std::fs::remove_file(&path).ok();
        assert!(fresh.register_file(&path).is_err());
    }

    #[test]
    fn catalog_snapshot_round_trip() {
        let dir = std::env::temp_dir().join("tdp_catalog_snapshot");
        std::fs::remove_dir_all(&dir).ok();

        let tdp = Tdp::new();
        tdp.register_table(TableBuilder::new().col_f32("a", vec![1.0]).build("t1"));
        tdp.register_table(TableBuilder::new().col_f32("b", vec![2.0, 3.0]).build("t2"));
        let written = tdp.save_catalog(&dir).unwrap();
        assert_eq!(written, vec!["t1", "t2"]);

        let fresh = Tdp::new();
        let opened = fresh.open_catalog(&dir).unwrap();
        assert_eq!(opened, vec!["t1", "t2"]);
        assert_eq!(fresh.catalog().get("t2").unwrap().rows(), 2);
        std::fs::remove_dir_all(&dir).ok();
        assert!(fresh.open_catalog(&dir).is_err());
    }

    #[test]
    fn parse_errors_surface_at_compile_time() {
        let tdp = Tdp::new();
        assert!(matches!(
            tdp.query("SELEKT nope"),
            Err(TdpError::Sql(_))
        ));
    }

    #[test]
    fn default_device_applies_to_registration() {
        let tdp = Tdp::new();
        tdp.set_default_device(Device::Accel(2));
        assert_eq!(tdp.default_device(), Device::Accel(2));
        tdp.register_tensor("t", Tensor::<f32>::ones(&[4, 2]));
        // Data values unaffected by placement.
        let out = tdp.query("SELECT COUNT(*) FROM t").unwrap().run().unwrap();
        assert_eq!(out.rows(), 1);
    }
}
