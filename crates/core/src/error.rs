//! Top-level error type.

use tdp_exec::ExecError;
use tdp_sql::SqlError;

/// Anything a TDP session can report.
#[derive(Debug, Clone, PartialEq)]
pub enum TdpError {
    /// Parse/plan-time failure.
    Sql(SqlError),
    /// Execution-time failure.
    Exec(ExecError),
    /// Session-level misuse (bad registration, config conflicts).
    Session(String),
}

impl std::fmt::Display for TdpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TdpError::Sql(e) => write!(f, "{e}"),
            TdpError::Exec(e) => write!(f, "{e}"),
            TdpError::Session(m) => write!(f, "session error: {m}"),
        }
    }
}

impl std::error::Error for TdpError {}

impl From<SqlError> for TdpError {
    fn from(e: SqlError) -> TdpError {
        TdpError::Sql(e)
    }
}

impl From<ExecError> for TdpError {
    fn from(e: ExecError) -> TdpError {
        TdpError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: TdpError = SqlError::new("bad token").into();
        assert!(e.to_string().contains("bad token"));
        let e: TdpError = ExecError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("'t'"));
        assert!(TdpError::Session("no".into()).to_string().contains("no"));
    }
}
