//! # tdp-encoding
//!
//! Encoded tensors: tensors with attached metadata describing how data is
//! stored in them (paper §2, "Data Encoding"). Like a columnar database,
//! TDP never operates on raw buffers directly; operators inspect the
//! encoding metadata to pick an execution strategy (e.g. string equality
//! becomes integer comparison on dictionary codes, grouped counting over
//! probability-encoded columns becomes a matrix product).
//!
//! Encodings implemented:
//!
//! * **Plain** — numeric data stored as-is (f32 / i64 / bool), any rank:
//!   1-d scalar columns, 2-d vector columns, 3-d/4-d image columns.
//! * **Order-preserving dictionary** — string columns as i64 codes into a
//!   sorted dictionary, so range predicates work directly on codes.
//! * **Run-length** — repetitive i64 columns as (value, run) pairs.
//! * **Probability Encoding (PE)** — a `[N, C]` row-stochastic tensor plus
//!   the class value each column represents. PE is the bridge between ML
//!   and relational processing: TVFs emit PE columns, soft operators
//!   consume them differentiably, and exact operators decode them by argmax.

pub mod bitpack;
pub mod delta;
pub mod dict;
pub mod encoded;
pub mod pe;
pub mod rle;

pub use bitpack::BitPackedColumn;
pub use delta::DeltaColumn;
pub use dict::StringDict;
pub use encoded::{EncodedTensor, EncodingKind};
pub use pe::PeTensor;
pub use rle::RleColumn;
