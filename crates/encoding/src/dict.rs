//! Order-preserving dictionary encoding for string columns.
//!
//! The dictionary is sorted, so code order equals lexicographic string
//! order and range predicates (`<`, `>=`, `BETWEEN`) evaluate directly on
//! the integer codes without decoding — the property the paper calls
//! *order-preserving* dictionary encoding.

use std::sync::Arc;

use tdp_tensor::{I64Tensor, Tensor};

/// A sorted string dictionary shared by the codes of one or more columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StringDict {
    /// Sorted, deduplicated values. Index == code.
    values: Vec<String>,
}

impl StringDict {
    /// Build a dictionary and encode `strings` against it in one pass.
    pub fn encode(strings: &[impl AsRef<str>]) -> (Arc<StringDict>, I64Tensor) {
        let mut values: Vec<String> = strings.iter().map(|s| s.as_ref().to_owned()).collect();
        values.sort_unstable();
        values.dedup();
        let dict = Arc::new(StringDict { values });
        let codes: Vec<i64> = strings
            .iter()
            .map(|s| dict.code_of(s.as_ref()).expect("freshly inserted value"))
            .collect();
        let n = codes.len();
        (dict, Tensor::from_vec(codes, &[n]))
    }

    /// Code of a string, if present.
    pub fn code_of(&self, s: &str) -> Option<i64> {
        self.values
            .binary_search_by(|v| v.as_str().cmp(s))
            .ok()
            .map(|i| i as i64)
    }

    /// Smallest code whose string is `>= s` (for range predicates on values
    /// that may be absent). Returns `len()` if every value is smaller.
    pub fn lower_bound(&self, s: &str) -> i64 {
        self.values.partition_point(|v| v.as_str() < s) as i64
    }

    /// String for a code.
    pub fn decode_one(&self, code: i64) -> &str {
        &self.values[usize::try_from(code).expect("negative dictionary code")]
    }

    /// Decode a whole code column.
    pub fn decode(&self, codes: &I64Tensor) -> Vec<String> {
        codes
            .data()
            .iter()
            .map(|&c| self.decode_one(c).to_owned())
            .collect()
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let input = vec!["banana", "apple", "cherry", "apple", "banana"];
        let (dict, codes) = StringDict::encode(&input);
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.decode(&codes), input);
    }

    #[test]
    fn codes_preserve_order() {
        let (dict, codes) = StringDict::encode(&["pear", "apple", "mango"]);
        // apple < mango < pear lexicographically.
        assert_eq!(dict.code_of("apple"), Some(0));
        assert_eq!(dict.code_of("mango"), Some(1));
        assert_eq!(dict.code_of("pear"), Some(2));
        // Column was ["pear","apple","mango"] -> [2, 0, 1]
        assert_eq!(codes.to_vec(), vec![2, 0, 1]);
        // Range predicate on codes == range predicate on strings.
        let ge_mango = codes.ge_scalar(dict.code_of("mango").unwrap());
        assert_eq!(ge_mango.to_vec(), vec![true, false, true]);
    }

    #[test]
    fn lower_bound_for_absent_values() {
        let (dict, _) = StringDict::encode(&["b", "d", "f"]);
        assert_eq!(dict.lower_bound("a"), 0);
        assert_eq!(dict.lower_bound("c"), 1);
        assert_eq!(dict.lower_bound("d"), 1);
        assert_eq!(dict.lower_bound("z"), 3);
    }

    #[test]
    fn missing_value_has_no_code() {
        let (dict, _) = StringDict::encode(&["x"]);
        assert_eq!(dict.code_of("y"), None);
    }

    #[test]
    fn empty_column() {
        let empty: Vec<&str> = Vec::new();
        let (dict, codes) = StringDict::encode(&empty);
        assert!(dict.is_empty());
        assert_eq!(codes.numel(), 0);
    }
}
