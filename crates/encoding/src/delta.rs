//! Delta encoding for near-monotonic integer columns.
//!
//! Stores the first value plus zig-zag-coded successive differences,
//! bit-packed via [`BitPackedColumn`]. Timestamps, auto-increment ids and
//! sorted keys — the columns the paper's OCR scenario filters on — shrink
//! to a few bits per row. Access is sequential (decode materialises a
//! prefix sum), which suits the scan-oriented execution model.

use tdp_tensor::{I64Tensor, Tensor};

use crate::bitpack::BitPackedColumn;

/// Zig-zag: map signed deltas to unsigned so small magnitudes pack small.
/// Wrapping shift in the u64 domain keeps the map a bijection on all i64.
fn zigzag(v: i64) -> i64 {
    (((v as u64) << 1) as i64) ^ (v >> 63)
}

fn unzigzag(v: i64) -> i64 {
    ((v as u64 >> 1) as i64) ^ -(v & 1)
}

/// An immutable delta-encoded i64 column.
#[derive(Debug, Clone)]
pub struct DeltaColumn {
    first: i64,
    /// Zig-zag deltas, bit-packed. Empty for columns of length ≤ 1.
    deltas: BitPackedColumn,
    len: usize,
}

impl DeltaColumn {
    /// Encode a 1-d i64 tensor.
    ///
    /// Returns `None` when a pairwise difference overflows i64 (pack such
    /// columns plain instead).
    pub fn encode(values: &I64Tensor) -> Option<DeltaColumn> {
        assert_eq!(values.ndim(), 1, "delta encoding applies to 1-d columns");
        let data = values.data();
        let len = data.len();
        if len <= 1 {
            return Some(DeltaColumn {
                first: data.first().copied().unwrap_or(0),
                deltas: BitPackedColumn::encode(&Tensor::from_vec(vec![], &[0])),
                len,
            });
        }
        let mut zz = Vec::with_capacity(len - 1);
        for w in data.windows(2) {
            let d = w[1].checked_sub(w[0])?;
            zz.push(zigzag(d));
        }
        let deltas = BitPackedColumn::encode(&Tensor::from_vec(zz, &[len - 1]));
        Some(DeltaColumn {
            first: data[0],
            deltas,
            len,
        })
    }

    /// Rebuild from raw parts — the deserialization path. The packed
    /// deltas must hold exactly `len.saturating_sub(1)` values.
    pub fn from_parts(first: i64, deltas: BitPackedColumn, len: usize) -> DeltaColumn {
        assert_eq!(
            deltas.len(),
            len.saturating_sub(1),
            "one delta per successive pair"
        );
        DeltaColumn { first, deltas, len }
    }

    /// Raw parts `(first, packed zig-zag deltas, len)` for serialization.
    pub fn parts(&self) -> (i64, &BitPackedColumn, usize) {
        (self.first, &self.deltas, self.len)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decode the whole column (prefix sum over the deltas).
    pub fn decode(&self) -> I64Tensor {
        let mut out = Vec::with_capacity(self.len);
        if self.len > 0 {
            let mut cur = self.first;
            out.push(cur);
            for i in 0..self.len - 1 {
                cur = cur.wrapping_add(unzigzag(self.deltas.get(i)));
                out.push(cur);
            }
        }
        Tensor::from_vec(out, &[self.len])
    }

    /// Sequential access by materialisation — delta columns trade random
    /// access for size.
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        let mut cur = self.first;
        for k in 0..i {
            cur = cur.wrapping_add(unzigzag(self.deltas.get(k)));
        }
        cur
    }

    /// Encoded payload size in bytes.
    pub fn memory_bytes(&self) -> usize {
        8 + self.deltas.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: Vec<i64>) {
        let t = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let d = DeltaColumn::encode(&t).expect("encodable");
        assert_eq!(d.decode().to_vec(), vals);
    }

    #[test]
    fn zigzag_inverts() {
        for v in [
            0i64,
            1,
            -1,
            63,
            -64,
            i64::MAX / 2,
            i64::MIN / 2,
            i64::MAX,
            i64::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
    }

    #[test]
    fn round_trips() {
        round_trip(vec![]);
        round_trip(vec![9]);
        round_trip(vec![10, 11, 12, 13]);
        round_trip(vec![100, 90, 95, 95, -3]);
    }

    #[test]
    fn sequential_get_matches_decode() {
        let vals = vec![5i64, 8, 2, 2, 40];
        let d = DeltaColumn::encode(&Tensor::from_vec(vals.clone(), &[5])).unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(d.get(i), v);
        }
    }

    #[test]
    fn timestamps_compress_well() {
        // 1-second cadence with jitter: deltas fit in a few bits.
        let vals: Vec<i64> = (0..10_000)
            .scan(1_660_000_000i64, |t, i| {
                *t += 1 + (i % 3);
                Some(*t)
            })
            .collect();
        let t = Tensor::from_vec(vals, &[10_000]);
        let d = DeltaColumn::encode(&t).unwrap();
        assert!(
            d.memory_bytes() * 10 < 10_000 * 8,
            "expected ≥10x compression, got {} bytes",
            d.memory_bytes()
        );
        assert_eq!(d.decode().to_vec(), t.to_vec());
    }

    #[test]
    fn overflowing_differences_refuse_to_encode() {
        let t = Tensor::from_vec(vec![i64::MIN, i64::MAX], &[2]);
        assert!(DeltaColumn::encode(&t).is_none());
    }
}
