//! Bit-packed integer encoding.
//!
//! Stores an i64 column as `(min, width)` metadata plus offsets packed at
//! `width` bits each — the classic low-cardinality / small-range layout of
//! columnar stores. Random access is O(1), so operators can probe packed
//! columns without decompressing.

use tdp_tensor::{I64Tensor, Tensor};

/// An immutable bit-packed i64 column.
#[derive(Debug, Clone)]
pub struct BitPackedColumn {
    /// Minimum of the original values; stored values are offsets from it.
    min: i64,
    /// Bits per value (0 when every value equals `min`).
    width: u32,
    /// Packed offsets, little-endian within each u64 word.
    words: Vec<u64>,
    len: usize,
}

impl BitPackedColumn {
    /// Pack a 1-d i64 tensor.
    pub fn encode(values: &I64Tensor) -> BitPackedColumn {
        assert_eq!(values.ndim(), 1, "bit-packing applies to 1-d columns");
        let data = values.data();
        let len = data.len();
        if len == 0 {
            return BitPackedColumn {
                min: 0,
                width: 0,
                words: Vec::new(),
                len: 0,
            };
        }
        let min = data.iter().copied().min().expect("non-empty");
        let max = data.iter().copied().max().expect("non-empty");
        let range = (max as i128 - min as i128) as u128;
        let width = if range == 0 {
            0
        } else {
            128 - range.leading_zeros()
        };
        assert!(width <= 64, "range does not fit in 64 bits");
        let width = width.min(64);

        let total_bits = len * width as usize;
        let mut words = vec![0u64; total_bits.div_ceil(64)];
        if width > 0 {
            for (i, &v) in data.iter().enumerate() {
                let off = (v as i128 - min as i128) as u64;
                let bit = i * width as usize;
                let (w, s) = (bit / 64, (bit % 64) as u32);
                words[w] |= off << s;
                if s + width > 64 {
                    words[w + 1] |= off >> (64 - s);
                }
            }
        }
        BitPackedColumn {
            min,
            width,
            words,
            len,
        }
    }

    /// Rebuild from raw parts — the deserialization path. Panics when the
    /// word buffer cannot hold `len` values of `width` bits.
    pub fn from_parts(min: i64, width: u32, words: Vec<u64>, len: usize) -> BitPackedColumn {
        assert!(width <= 64, "width {width} exceeds 64 bits");
        let needed = (len * width as usize).div_ceil(64);
        assert!(
            words.len() >= needed,
            "word buffer too short for {len} x {width}-bit values"
        );
        BitPackedColumn {
            min,
            width,
            words,
            len,
        }
    }

    /// Raw parts `(min, width, words, len)` for serialization.
    pub fn parts(&self) -> (i64, u32, &[u64], usize) {
        (self.min, self.width, &self.words, self.len)
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// O(1) random access.
    pub fn get(&self, i: usize) -> i64 {
        assert!(i < self.len, "row {i} out of bounds ({} rows)", self.len);
        if self.width == 0 {
            return self.min;
        }
        let bit = i * self.width as usize;
        let (w, s) = (bit / 64, (bit % 64) as u32);
        let mut off = self.words[w] >> s;
        if s + self.width > 64 {
            off |= self.words[w + 1] << (64 - s);
        }
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        self.min.wrapping_add((off & mask) as i64)
    }

    /// Decode the whole column.
    pub fn decode(&self) -> I64Tensor {
        let out: Vec<i64> = (0..self.len).map(|i| self.get(i)).collect();
        Tensor::from_vec(out, &[self.len])
    }

    /// Packed payload size in bytes (metadata excluded).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(vals: Vec<i64>) {
        let t = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let packed = BitPackedColumn::encode(&t);
        assert_eq!(packed.decode().to_vec(), vals);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(packed.get(i), v, "row {i}");
        }
    }

    #[test]
    fn round_trips_small_ranges() {
        round_trip(vec![0, 1, 2, 3, 2, 1, 0]);
        round_trip(vec![100, 101, 100, 103]);
        round_trip(vec![-5, 5, -5, 0]);
    }

    #[test]
    fn constant_column_needs_zero_bits() {
        let t = Tensor::from_vec(vec![42i64; 1000], &[1000]);
        let p = BitPackedColumn::encode(&t);
        assert_eq!(p.width(), 0);
        assert!(p.memory_bytes() < 32);
        assert_eq!(p.decode().to_vec(), vec![42; 1000]);
    }

    #[test]
    fn wide_values_still_round_trip() {
        round_trip(vec![i64::MIN, 0, i64::MAX]);
        round_trip(vec![i64::MAX, i64::MAX - 1]);
    }

    #[test]
    fn empty_column() {
        let p = BitPackedColumn::encode(&Tensor::from_vec(Vec::<i64>::new(), &[0]));
        assert!(p.is_empty());
        assert_eq!(p.decode().to_vec(), Vec::<i64>::new());
    }

    #[test]
    fn straddles_word_boundaries() {
        // width 7 over > 64 values forces cross-word reads.
        let vals: Vec<i64> = (0..200).map(|i| i % 100).collect();
        round_trip(vals);
    }

    #[test]
    fn compression_ratio_on_low_cardinality() {
        let vals: Vec<i64> = (0..10_000).map(|i| i % 4).collect();
        let t = Tensor::from_vec(vals, &[10_000]);
        let p = BitPackedColumn::encode(&t);
        assert_eq!(p.width(), 2);
        // 2 bits/value vs 64: ~32x smaller.
        assert!(p.memory_bytes() * 20 < 10_000 * 8, "{}", p.memory_bytes());
    }
}
