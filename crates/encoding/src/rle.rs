//! Run-length encoding for repetitive integer columns.
//!
//! Timestamp-like and low-cardinality columns (the `Document.timestamp`
//! metadata of the OCR experiment is a canonical example) compress to a
//! fraction of their plain size, and equality predicates can be evaluated
//! per-run instead of per-row.

use tdp_tensor::{BoolTensor, I64Tensor, Tensor};

/// An i64 column stored as (value, run-length) pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RleColumn {
    values: Vec<i64>,
    runs: Vec<u32>,
    len: usize,
}

impl RleColumn {
    /// Encode a plain column.
    pub fn encode(col: &I64Tensor) -> RleColumn {
        assert_eq!(col.ndim(), 1, "RLE expects a 1-d column");
        let mut values = Vec::new();
        let mut runs: Vec<u32> = Vec::new();
        for &v in col.data() {
            if values.last() == Some(&v) {
                *runs.last_mut().expect("runs tracks values") += 1;
            } else {
                values.push(v);
                runs.push(1);
            }
        }
        RleColumn {
            values,
            runs,
            len: col.numel(),
        }
    }

    /// Rebuild from raw (values, runs) pairs — the deserialization path.
    /// Panics when the two vectors disagree in length.
    pub fn from_parts(values: Vec<i64>, runs: Vec<u32>) -> RleColumn {
        assert_eq!(values.len(), runs.len(), "one run length per value");
        let len = runs.iter().map(|&r| r as usize).sum();
        RleColumn { values, runs, len }
    }

    /// The distinct run values, in order.
    pub fn run_values(&self) -> &[i64] {
        &self.values
    }

    /// The run lengths, aligned with [`RleColumn::run_values`].
    pub fn run_lengths(&self) -> &[u32] {
        &self.runs
    }

    /// Decode to a plain column.
    pub fn decode(&self) -> I64Tensor {
        let mut out = Vec::with_capacity(self.len);
        for (&v, &r) in self.values.iter().zip(&self.runs) {
            out.extend(std::iter::repeat_n(v, r as usize));
        }
        Tensor::from_vec(out, &[self.len])
    }

    /// Logical number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs (compressed length).
    pub fn num_runs(&self) -> usize {
        self.values.len()
    }

    /// Equality predicate evaluated run-at-a-time, returning a row mask.
    pub fn eq_mask(&self, v: i64) -> BoolTensor {
        let mut out = Vec::with_capacity(self.len);
        for (&val, &r) in self.values.iter().zip(&self.runs) {
            out.extend(std::iter::repeat_n(val == v, r as usize));
        }
        Tensor::from_vec(out, &[self.len])
    }

    /// Value at a logical row index.
    pub fn get(&self, mut row: usize) -> i64 {
        assert!(
            row < self.len,
            "row {row} out of bounds for {} rows",
            self.len
        );
        for (&v, &r) in self.values.iter().zip(&self.runs) {
            if row < r as usize {
                return v;
            }
            row -= r as usize;
        }
        unreachable!("row within len must fall inside a run")
    }

    /// Compression ratio (plain size / encoded size), in elements.
    pub fn compression_ratio(&self) -> f64 {
        if self.num_runs() == 0 {
            return 1.0;
        }
        self.len as f64 / (2.0 * self.num_runs() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(v: Vec<i64>) -> I64Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }

    #[test]
    fn encode_decode_round_trip() {
        let c = col(vec![5, 5, 5, 7, 7, 2, 5, 5]);
        let rle = RleColumn::encode(&c);
        assert_eq!(rle.num_runs(), 4);
        assert_eq!(rle.len(), 8);
        assert_eq!(rle.decode(), c);
    }

    #[test]
    fn eq_mask_matches_plain_comparison() {
        let c = col(vec![1, 1, 2, 3, 3, 3]);
        let rle = RleColumn::encode(&c);
        assert_eq!(rle.eq_mask(3).to_vec(), c.eq_scalar(3).to_vec());
        assert_eq!(rle.eq_mask(9).count_true(), 0);
    }

    #[test]
    fn point_access() {
        let c = col(vec![4, 4, 9, 9, 9, 1]);
        let rle = RleColumn::encode(&c);
        for i in 0..6 {
            assert_eq!(rle.get(i), c.at(i));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn point_access_checked() {
        RleColumn::encode(&col(vec![1])).get(1);
    }

    #[test]
    fn compression_ratio_reflects_repetition() {
        let repetitive = RleColumn::encode(&col(vec![7; 1000]));
        assert!(repetitive.compression_ratio() > 100.0);
        let unique = RleColumn::encode(&col((0..100).collect()));
        assert!(unique.compression_ratio() <= 1.0);
    }

    #[test]
    fn empty_column() {
        let rle = RleColumn::encode(&col(vec![]));
        assert!(rle.is_empty());
        assert_eq!(rle.decode().numel(), 0);
    }
}
