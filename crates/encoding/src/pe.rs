//! Probability Encoding (PE).
//!
//! PE attaches *structured* information to numerical data (paper §2): a
//! column is stored as a `[N, C]` row-stochastic probability tensor, where
//! column `c` carries the probability that the row's value is
//! `class_values[c]`. Classifier TVFs emit PE columns; the differentiable
//! `soft_groupby` / `soft_count` operators consume them using only additions
//! and multiplications (paper §4), and exact operators decode them by
//! argmax at inference time, eliminating the approximation error.

use tdp_tensor::{F32Tensor, I64Tensor};

/// A probability-encoded column.
#[derive(Debug, Clone, PartialEq)]
pub struct PeTensor {
    /// `[N, C]`, each row a probability distribution over the classes.
    probs: F32Tensor,
    /// The numeric value represented by each class column (`[C]`).
    class_values: F32Tensor,
}

impl PeTensor {
    /// Wrap an already-normalised probability matrix.
    ///
    /// Panics if shapes disagree; rows are validated to sum to ~1 in debug
    /// builds (training-time soft outputs come straight from a softmax, so
    /// the check is redundant but cheap insurance against misuse).
    pub fn new(probs: F32Tensor, class_values: F32Tensor) -> PeTensor {
        assert_eq!(probs.ndim(), 2, "PE probabilities must be [N, C]");
        assert_eq!(class_values.ndim(), 1, "class values must be [C]");
        assert_eq!(
            probs.shape()[1],
            class_values.numel(),
            "one class value per probability column"
        );
        debug_assert!(
            probs.rows() == 0
                || probs
                    .sum_dim(1, false)
                    .data()
                    .iter()
                    .all(|&s| (s - 1.0).abs() < 1e-3),
            "PE rows must be (approximately) stochastic"
        );
        PeTensor {
            probs,
            class_values,
        }
    }

    /// Encode raw classifier logits: softmax-normalise then wrap.
    pub fn from_logits(logits: &F32Tensor, class_values: F32Tensor) -> PeTensor {
        PeTensor::new(logits.softmax(1), class_values)
    }

    /// Encode exact class ids as one-hot PE (the lossless embedding of
    /// exact data into the soft domain).
    pub fn from_class_ids(ids: &I64Tensor, class_values: F32Tensor) -> PeTensor {
        let onehot = tdp_tensor::index::one_hot(ids, class_values.numel());
        PeTensor::new(onehot, class_values)
    }

    /// Default class values `0..c` (digit-style labels).
    pub fn range_classes(c: usize) -> F32Tensor {
        F32Tensor::arange(c)
    }

    pub fn probs(&self) -> &F32Tensor {
        &self.probs
    }

    pub fn class_values(&self) -> &F32Tensor {
        &self.class_values
    }

    pub fn rows(&self) -> usize {
        self.probs.rows()
    }

    pub fn num_classes(&self) -> usize {
        self.class_values.numel()
    }

    /// Exact decode: argmax class id per row.
    pub fn decode_ids(&self) -> I64Tensor {
        self.probs.argmax_dim(1)
    }

    /// Exact decode: the numeric class value per row (`[N]` f32).
    pub fn decode_values(&self) -> F32Tensor {
        self.class_values.select_rows(&self.decode_ids())
    }

    /// Soft decode: the expected value per row, `E[v] = Σ p_c · v_c`.
    /// Differentiable counterpart of [`PeTensor::decode_values`].
    pub fn expected_values(&self) -> F32Tensor {
        self.probs.matvec(&self.class_values)
    }

    /// Soft per-class count: column sums of the probability matrix — the
    /// paper's `soft_count` for a single-column GROUP BY.
    pub fn soft_counts(&self) -> F32Tensor {
        self.probs.sum_dim(0, false)
    }

    /// Restrict to a subset of rows, preserving the encoding.
    pub fn select_rows(&self, idx: &I64Tensor) -> PeTensor {
        PeTensor {
            probs: self.probs.select_rows(idx),
            class_values: self.class_values.clone(),
        }
    }

    /// Largest per-row probability (confidence); useful for filters like
    /// `WHERE confidence > θ`.
    pub fn confidence(&self) -> F32Tensor {
        self.probs.max_dim(1, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    fn pe_2rows() -> PeTensor {
        // Row 0 favours class 2, row 1 favours class 0.
        let probs = Tensor::from_vec(vec![0.1, 0.2, 0.7, /* row 1 */ 0.8, 0.1, 0.1], &[2, 3]);
        PeTensor::new(probs, PeTensor::range_classes(3))
    }

    #[test]
    fn shapes_and_metadata() {
        let pe = pe_2rows();
        assert_eq!(pe.rows(), 2);
        assert_eq!(pe.num_classes(), 3);
        assert_eq!(pe.class_values().to_vec(), vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn exact_decode_argmax() {
        let pe = pe_2rows();
        assert_eq!(pe.decode_ids().to_vec(), vec![2, 0]);
        assert_eq!(pe.decode_values().to_vec(), vec![2.0, 0.0]);
    }

    #[test]
    fn expected_value_is_probability_weighted() {
        let pe = pe_2rows();
        let ev = pe.expected_values();
        assert!((ev.at(0) - (0.2 + 1.4)).abs() < 1e-6);
        assert!((ev.at(1) - (0.1 + 0.2)).abs() < 1e-6);
    }

    #[test]
    fn soft_counts_sum_to_row_count() {
        let pe = pe_2rows();
        let counts = pe.soft_counts();
        assert_eq!(counts.numel(), 3);
        assert!((counts.sum() - 2.0).abs() < 1e-6, "probability mass = rows");
    }

    #[test]
    fn one_hot_round_trip_soft_equals_exact() {
        // On one-hot PE, soft aggregation must agree exactly with counting.
        let ids = Tensor::from_vec(vec![2i64, 2, 0, 1, 2], &[5]);
        let pe = PeTensor::from_class_ids(&ids, PeTensor::range_classes(3));
        assert_eq!(pe.soft_counts().to_vec(), vec![1.0, 1.0, 3.0]);
        assert_eq!(pe.decode_ids().to_vec(), ids.to_vec());
    }

    #[test]
    fn from_logits_normalises() {
        let logits = Tensor::from_vec(vec![0.0f32, 10.0, -10.0, 0.0], &[2, 2]);
        let pe = PeTensor::from_logits(&logits, PeTensor::range_classes(2));
        let sums = pe.probs().sum_dim(1, false);
        assert!(sums.data().iter().all(|&s| (s - 1.0).abs() < 1e-5));
        assert_eq!(pe.decode_ids().to_vec(), vec![1, 1]);
    }

    #[test]
    fn select_rows_preserves_classes() {
        let pe = pe_2rows();
        let sel = pe.select_rows(&Tensor::from_vec(vec![1i64], &[1]));
        assert_eq!(sel.rows(), 1);
        assert_eq!(sel.decode_ids().to_vec(), vec![0]);
        assert_eq!(sel.class_values(), pe.class_values());
    }

    #[test]
    fn confidence_is_row_max() {
        let pe = pe_2rows();
        let c = pe.confidence();
        assert!((c.at(0) - 0.7).abs() < 1e-6);
        assert!((c.at(1) - 0.8).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one class value per probability column")]
    fn class_value_arity_checked() {
        PeTensor::new(Tensor::ones(&[1, 3]), Tensor::ones(&[2]));
    }
}
