//! The encoded-tensor column representation.

use std::sync::Arc;

use tdp_tensor::{BoolTensor, F32Tensor, I64Tensor, Tensor};

use crate::bitpack::BitPackedColumn;
use crate::delta::DeltaColumn;
use crate::dict::StringDict;
use crate::pe::PeTensor;
use crate::rle::RleColumn;

/// Metadata tag describing how a column is stored — what the paper calls
/// the encoded tensor's metadata, used by operators to pick kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EncodingKind {
    PlainF32,
    PlainI64,
    PlainBool,
    Dictionary,
    RunLength,
    Probability,
    BitPacked,
    Delta,
}

/// A column of a TDP table: a tensor plus its encoding.
///
/// The leading dimension is always the row dimension; trailing dimensions
/// carry per-row payloads (vectors, images, ...).
#[derive(Debug, Clone)]
pub enum EncodedTensor {
    /// Plain numeric data of any rank (`[N]`, `[N, d]`, `[N, c, h, w]`...).
    F32(F32Tensor),
    /// Plain 64-bit integers (ids, timestamps, counts).
    I64(I64Tensor),
    /// Plain booleans.
    Bool(BoolTensor),
    /// Order-preserving dictionary-encoded strings.
    Dict {
        codes: I64Tensor,
        dict: Arc<StringDict>,
    },
    /// Run-length-encoded integers.
    Rle(RleColumn),
    /// Probability-encoded classification output.
    Pe(PeTensor),
    /// Bit-packed integers (low-cardinality / narrow-range columns).
    BitPacked(BitPackedColumn),
    /// Delta-encoded integers (timestamps, sorted keys).
    Delta(DeltaColumn),
}

impl EncodedTensor {
    /// Encode a string column (order-preserving dictionary).
    pub fn from_strings(strings: &[impl AsRef<str>]) -> EncodedTensor {
        let (dict, codes) = StringDict::encode(strings);
        EncodedTensor::Dict { codes, dict }
    }

    /// Encode a 1-d f32 column.
    pub fn from_f32_slice(values: &[f32]) -> EncodedTensor {
        EncodedTensor::F32(Tensor::from_vec(values.to_vec(), &[values.len()]))
    }

    /// Encode a 1-d i64 column.
    pub fn from_i64_slice(values: &[i64]) -> EncodedTensor {
        EncodedTensor::I64(Tensor::from_vec(values.to_vec(), &[values.len()]))
    }

    /// The encoding tag.
    pub fn kind(&self) -> EncodingKind {
        match self {
            EncodedTensor::F32(_) => EncodingKind::PlainF32,
            EncodedTensor::I64(_) => EncodingKind::PlainI64,
            EncodedTensor::Bool(_) => EncodingKind::PlainBool,
            EncodedTensor::Dict { .. } => EncodingKind::Dictionary,
            EncodedTensor::Rle(_) => EncodingKind::RunLength,
            EncodedTensor::Pe(_) => EncodingKind::Probability,
            EncodedTensor::BitPacked(_) => EncodingKind::BitPacked,
            EncodedTensor::Delta(_) => EncodingKind::Delta,
        }
    }

    /// Pick the smallest integer encoding for a 1-d i64 column among
    /// plain, run-length, bit-packed and delta — the metadata-driven
    /// strategy selection of paper §2 applied at encode time.
    pub fn compress_i64(values: &I64Tensor) -> EncodedTensor {
        let mut best = EncodedTensor::I64(values.clone());
        let mut best_bytes = best.memory_bytes();
        let mut consider = |cand: EncodedTensor| {
            let b = cand.memory_bytes();
            if b < best_bytes {
                best_bytes = b;
                best = cand;
            }
        };
        consider(EncodedTensor::Rle(RleColumn::encode(values)));
        consider(EncodedTensor::BitPacked(BitPackedColumn::encode(values)));
        if let Some(d) = DeltaColumn::encode(values) {
            consider(EncodedTensor::Delta(d));
        }
        best
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        match self {
            EncodedTensor::F32(t) => t.rows(),
            EncodedTensor::I64(t) => t.rows(),
            EncodedTensor::Bool(t) => t.rows(),
            EncodedTensor::Dict { codes, .. } => codes.rows(),
            EncodedTensor::Rle(r) => r.len(),
            EncodedTensor::Pe(p) => p.rows(),
            EncodedTensor::BitPacked(b) => b.len(),
            EncodedTensor::Delta(d) => d.len(),
        }
    }

    /// Shape of the per-row payload (empty for scalar columns).
    pub fn row_shape(&self) -> Vec<usize> {
        match self {
            EncodedTensor::F32(t) => t.shape().get(1..).unwrap_or(&[]).to_vec(),
            _ => Vec::new(),
        }
    }

    /// Approximate in-memory footprint of the encoded data, in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            EncodedTensor::F32(t) => t.numel() * 4,
            EncodedTensor::I64(t) => t.numel() * 8,
            EncodedTensor::Bool(t) => t.numel(),
            EncodedTensor::Dict { codes, dict } => {
                codes.numel() * 8 + dict.values().iter().map(|s| s.len()).sum::<usize>()
            }
            EncodedTensor::Rle(r) => r.num_runs() * 12,
            EncodedTensor::Pe(p) => (p.rows() * p.num_classes() + p.num_classes()) * 4,
            EncodedTensor::BitPacked(b) => b.memory_bytes(),
            EncodedTensor::Delta(d) => d.memory_bytes(),
        }
    }

    /// Decode to plain f32 values (`[N]` or higher-rank for payload
    /// columns). Dictionary columns decode to their codes (the numeric view
    /// used by ORDER BY); PE columns decode exactly by argmax.
    pub fn decode_f32(&self) -> F32Tensor {
        match self {
            EncodedTensor::F32(t) => t.clone(),
            EncodedTensor::I64(t) => t.to_f32(),
            EncodedTensor::Bool(t) => t.to_f32_mask(),
            EncodedTensor::Dict { codes, .. } => codes.to_f32(),
            EncodedTensor::Rle(r) => r.decode().to_f32(),
            EncodedTensor::Pe(p) => p.decode_values(),
            EncodedTensor::BitPacked(b) => b.decode().to_f32(),
            EncodedTensor::Delta(d) => d.decode().to_f32(),
        }
    }

    /// Decode to i64 (exact decode for PE; cast for f32).
    pub fn decode_i64(&self) -> I64Tensor {
        match self {
            EncodedTensor::F32(t) => t.to_i64(),
            EncodedTensor::I64(t) => t.clone(),
            EncodedTensor::Bool(t) => t.to_i64_mask(),
            EncodedTensor::Dict { codes, .. } => codes.clone(),
            EncodedTensor::Rle(r) => r.decode(),
            EncodedTensor::Pe(p) => p.decode_values().to_i64(),
            EncodedTensor::BitPacked(b) => b.decode(),
            EncodedTensor::Delta(d) => d.decode(),
        }
    }

    /// Decode to strings where meaningful (dictionary columns); other
    /// encodings render their numeric values.
    pub fn decode_strings(&self) -> Vec<String> {
        match self {
            EncodedTensor::Dict { codes, dict } => dict.decode(codes),
            EncodedTensor::F32(t) if t.ndim() == 1 => {
                t.data().iter().map(|v| format!("{v}")).collect()
            }
            EncodedTensor::I64(t) => t.data().iter().map(|v| v.to_string()).collect(),
            EncodedTensor::Bool(t) => t.data().iter().map(|v| v.to_string()).collect(),
            EncodedTensor::Rle(r) => r.decode().data().iter().map(|v| v.to_string()).collect(),
            EncodedTensor::Pe(p) => p
                .decode_values()
                .data()
                .iter()
                .map(|v| format!("{v}"))
                .collect(),
            EncodedTensor::BitPacked(_) | EncodedTensor::Delta(_) => self
                .decode_i64()
                .data()
                .iter()
                .map(|v| v.to_string())
                .collect(),
            EncodedTensor::F32(_) => vec![String::from("<tensor>"); self.rows()],
        }
    }

    /// Keep only rows where the mask is true, preserving the encoding
    /// (run-length columns are re-encoded after filtering).
    pub fn filter_rows(&self, mask: &BoolTensor) -> EncodedTensor {
        match self {
            EncodedTensor::F32(t) => EncodedTensor::F32(t.filter_rows(mask)),
            EncodedTensor::I64(t) => EncodedTensor::I64(t.filter_rows(mask)),
            EncodedTensor::Bool(t) => EncodedTensor::Bool(t.filter_rows(mask)),
            EncodedTensor::Dict { codes, dict } => EncodedTensor::Dict {
                codes: codes.filter_rows(mask),
                dict: Arc::clone(dict),
            },
            EncodedTensor::Rle(r) => {
                EncodedTensor::Rle(RleColumn::encode(&r.decode().filter_rows(mask)))
            }
            EncodedTensor::Pe(p) => {
                let idx: Vec<i64> = mask
                    .data()
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &b)| b.then_some(i as i64))
                    .collect();
                let n = idx.len();
                EncodedTensor::Pe(p.select_rows(&Tensor::from_vec(idx, &[n])))
            }
            // Filtered compressed columns re-compress: the best layout may
            // change once rows drop out.
            EncodedTensor::BitPacked(b) => {
                EncodedTensor::compress_i64(&b.decode().filter_rows(mask))
            }
            EncodedTensor::Delta(d) => EncodedTensor::compress_i64(&d.decode().filter_rows(mask)),
        }
    }

    /// First `n` rows (clamped), preserving the encoding. Plain and
    /// dictionary layouts slice their buffers directly — no index tensor,
    /// no gather; compressed layouts re-encode the decoded prefix exactly
    /// like [`EncodedTensor::select_rows`] would.
    pub fn head(&self, n: usize) -> EncodedTensor {
        let n = n.min(self.rows());
        match self {
            EncodedTensor::F32(t) => EncodedTensor::F32(t.head_rows(n)),
            EncodedTensor::I64(t) => EncodedTensor::I64(t.head_rows(n)),
            EncodedTensor::Bool(t) => EncodedTensor::Bool(t.head_rows(n)),
            EncodedTensor::Dict { codes, dict } => EncodedTensor::Dict {
                codes: codes.head_rows(n),
                dict: Arc::clone(dict),
            },
            EncodedTensor::Pe(p) => EncodedTensor::Pe(PeTensor::new(
                p.probs().head_rows(n),
                p.class_values().clone(),
            )),
            EncodedTensor::Rle(r) => {
                EncodedTensor::Rle(RleColumn::encode(&r.decode().head_rows(n)))
            }
            EncodedTensor::BitPacked(b) => EncodedTensor::compress_i64(&b.decode().head_rows(n)),
            EncodedTensor::Delta(d) => EncodedTensor::compress_i64(&d.decode().head_rows(n)),
        }
    }

    /// Rows `start..end` (bounds clamped), preserving the encoding. The
    /// morsel-partitioning primitive: plain, dictionary and PE layouts
    /// slice their buffers in one memcpy (dictionary slices share the
    /// parent's dictionary, so codes stay globally comparable across
    /// morsels); compressed layouts re-encode the decoded range.
    pub fn slice_rows(&self, start: usize, end: usize) -> EncodedTensor {
        let rows = self.rows();
        let end = end.min(rows);
        let start = start.min(end);
        match self {
            EncodedTensor::F32(t) => EncodedTensor::F32(t.slice_rows(start, end)),
            EncodedTensor::I64(t) => EncodedTensor::I64(t.slice_rows(start, end)),
            EncodedTensor::Bool(t) => EncodedTensor::Bool(t.slice_rows(start, end)),
            EncodedTensor::Dict { codes, dict } => EncodedTensor::Dict {
                codes: codes.slice_rows(start, end),
                dict: Arc::clone(dict),
            },
            EncodedTensor::Pe(p) => EncodedTensor::Pe(PeTensor::new(
                p.probs().slice_rows(start, end),
                p.class_values().clone(),
            )),
            EncodedTensor::Rle(r) => {
                EncodedTensor::Rle(RleColumn::encode(&r.decode().slice_rows(start, end)))
            }
            EncodedTensor::BitPacked(b) => {
                EncodedTensor::compress_i64(&b.decode().slice_rows(start, end))
            }
            EncodedTensor::Delta(d) => {
                EncodedTensor::compress_i64(&d.decode().slice_rows(start, end))
            }
        }
    }

    /// Concatenate column pieces row-wise, preserving the encoding where
    /// the pieces agree — the merge half of morsel execution. Plain
    /// layouts concatenate buffers; dictionary pieces sharing one
    /// dictionary (the common case: morsels sliced from one parent
    /// column) concatenate codes; PE pieces with identical class values
    /// concatenate probability rows; integer-compressed pieces re-encode.
    /// Heterogeneous pieces fall back to a decoded common representation.
    ///
    /// Panics on an empty `parts` slice — callers always have ≥1 morsel.
    pub fn concat(parts: &[&EncodedTensor]) -> EncodedTensor {
        use tdp_tensor::index::concat_rows;
        assert!(!parts.is_empty(), "concat of zero column pieces");
        if parts.len() == 1 {
            return parts[0].clone();
        }
        if parts.iter().all(|p| matches!(p, EncodedTensor::F32(_))) {
            let ts: Vec<&F32Tensor> = parts
                .iter()
                .map(|p| match p {
                    EncodedTensor::F32(t) => t,
                    _ => unreachable!(),
                })
                .collect();
            return EncodedTensor::F32(concat_rows(&ts));
        }
        if parts.iter().all(|p| matches!(p, EncodedTensor::Bool(_))) {
            let ts: Vec<&BoolTensor> = parts
                .iter()
                .map(|p| match p {
                    EncodedTensor::Bool(t) => t,
                    _ => unreachable!(),
                })
                .collect();
            return EncodedTensor::Bool(concat_rows(&ts));
        }
        // Same-dictionary string pieces: concatenate codes, keep the dict.
        if let EncodedTensor::Dict { dict: first, .. } = parts[0] {
            let same_dict = parts
                .iter()
                .all(|p| matches!(p, EncodedTensor::Dict { dict, .. } if Arc::ptr_eq(dict, first)));
            if same_dict {
                let codes: Vec<&I64Tensor> = parts
                    .iter()
                    .map(|p| match p {
                        EncodedTensor::Dict { codes, .. } => codes,
                        _ => unreachable!(),
                    })
                    .collect();
                return EncodedTensor::Dict {
                    codes: concat_rows(&codes),
                    dict: Arc::clone(first),
                };
            }
        }
        if parts
            .iter()
            .any(|p| matches!(p, EncodedTensor::Dict { .. }))
        {
            // Distinct dictionaries — or strings mixed with non-strings:
            // re-encode the decoded strings (the order-preserving
            // dictionary keeps code order = string order).
            let mut strings = Vec::new();
            for p in parts {
                strings.extend(p.decode_strings());
            }
            return EncodedTensor::from_strings(&strings);
        }
        if let EncodedTensor::Pe(first) = parts[0] {
            let cv = first.class_values().to_vec();
            let same_classes = parts
                .iter()
                .all(|p| matches!(p, EncodedTensor::Pe(q) if q.class_values().to_vec() == cv));
            if same_classes {
                let probs: Vec<F32Tensor> = parts
                    .iter()
                    .map(|p| match p {
                        EncodedTensor::Pe(q) => q.probs().clone(),
                        _ => unreachable!(),
                    })
                    .collect();
                let refs: Vec<&F32Tensor> = probs.iter().collect();
                return EncodedTensor::Pe(PeTensor::new(
                    concat_rows(&refs),
                    first.class_values().clone(),
                ));
            }
        }
        // Integer family (plain i64 / RLE / bit-packed / delta, mixed or
        // not): concatenate decoded values and pick the best layout once.
        let int_like = |p: &EncodedTensor| {
            matches!(
                p,
                EncodedTensor::I64(_)
                    | EncodedTensor::Rle(_)
                    | EncodedTensor::BitPacked(_)
                    | EncodedTensor::Delta(_)
            )
        };
        if parts.iter().all(|p| matches!(p, EncodedTensor::I64(_))) {
            // All-plain fast path: keep the plain layout (no surprise
            // re-compression of an uncompressed column).
            let ts: Vec<&I64Tensor> = parts
                .iter()
                .map(|p| match p {
                    EncodedTensor::I64(t) => t,
                    _ => unreachable!(),
                })
                .collect();
            return EncodedTensor::I64(concat_rows(&ts));
        }
        if parts.iter().all(|p| int_like(p)) {
            let decoded: Vec<I64Tensor> = parts.iter().map(|p| p.decode_i64()).collect();
            let refs: Vec<&I64Tensor> = decoded.iter().collect();
            return EncodedTensor::compress_i64(&concat_rows(&refs));
        }
        // Heterogeneous pieces: decode to exact string values (i64 has no
        // lossless f32 embedding — values above 2^24 would round).
        let mut strings = Vec::new();
        for p in parts {
            strings.extend(p.decode_strings());
        }
        EncodedTensor::from_strings(&strings)
    }

    /// Reorder / gather rows by index, preserving the encoding.
    pub fn select_rows(&self, idx: &I64Tensor) -> EncodedTensor {
        match self {
            EncodedTensor::F32(t) => EncodedTensor::F32(t.select_rows(idx)),
            EncodedTensor::I64(t) => EncodedTensor::I64(t.select_rows(idx)),
            EncodedTensor::Bool(t) => EncodedTensor::Bool(t.select_rows(idx)),
            EncodedTensor::Dict { codes, dict } => EncodedTensor::Dict {
                codes: codes.select_rows(idx),
                dict: Arc::clone(dict),
            },
            EncodedTensor::Rle(r) => {
                EncodedTensor::Rle(RleColumn::encode(&r.decode().select_rows(idx)))
            }
            EncodedTensor::Pe(p) => EncodedTensor::Pe(p.select_rows(idx)),
            EncodedTensor::BitPacked(b) => {
                EncodedTensor::compress_i64(&b.decode().select_rows(idx))
            }
            EncodedTensor::Delta(d) => EncodedTensor::compress_i64(&d.decode().select_rows(idx)),
        }
    }

    /// Move plain tensor payloads to a device (no-op for CPU-resident
    /// encodings like RLE whose kernels are scalar).
    pub fn to_device(&self, device: tdp_tensor::Device) -> EncodedTensor {
        match self {
            EncodedTensor::F32(t) => EncodedTensor::F32(t.to(device)),
            EncodedTensor::I64(t) => EncodedTensor::I64(t.to(device)),
            EncodedTensor::Bool(t) => EncodedTensor::Bool(t.to(device)),
            EncodedTensor::Dict { codes, dict } => EncodedTensor::Dict {
                codes: codes.to(device),
                dict: Arc::clone(dict),
            },
            EncodedTensor::Rle(r) => EncodedTensor::Rle(r.clone()),
            EncodedTensor::BitPacked(b) => EncodedTensor::BitPacked(b.clone()),
            EncodedTensor::Delta(d) => EncodedTensor::Delta(d.clone()),
            EncodedTensor::Pe(p) => EncodedTensor::Pe(PeTensor::new(
                p.probs().to(device),
                p.class_values().clone(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_rows() {
        let f = EncodedTensor::from_f32_slice(&[1.0, 2.0]);
        assert_eq!(f.kind(), EncodingKind::PlainF32);
        assert_eq!(f.rows(), 2);

        let s = EncodedTensor::from_strings(&["a", "b", "a"]);
        assert_eq!(s.kind(), EncodingKind::Dictionary);
        assert_eq!(s.rows(), 3);

        let img = EncodedTensor::F32(Tensor::zeros(&[4, 1, 8, 8]));
        assert_eq!(img.rows(), 4);
        assert_eq!(img.row_shape(), vec![1, 8, 8]);
    }

    #[test]
    fn decode_paths() {
        let s = EncodedTensor::from_strings(&["b", "a"]);
        assert_eq!(s.decode_strings(), vec!["b", "a"]);
        assert_eq!(s.decode_i64().to_vec(), vec![1, 0]);

        let pe = EncodedTensor::Pe(PeTensor::from_class_ids(
            &Tensor::from_vec(vec![1i64, 0], &[2]),
            PeTensor::range_classes(2),
        ));
        assert_eq!(pe.decode_f32().to_vec(), vec![1.0, 0.0]);
    }

    #[test]
    fn filter_preserves_encoding() {
        let s = EncodedTensor::from_strings(&["x", "y", "z"]);
        let mask = Tensor::from_vec(vec![true, false, true], &[3]);
        let f = s.filter_rows(&mask);
        assert_eq!(f.kind(), EncodingKind::Dictionary);
        assert_eq!(f.decode_strings(), vec!["x", "z"]);

        let rle = EncodedTensor::Rle(RleColumn::encode(&Tensor::from_vec(vec![7i64, 7, 8], &[3])));
        let fr = rle.filter_rows(&mask);
        assert_eq!(fr.kind(), EncodingKind::RunLength);
        assert_eq!(fr.decode_i64().to_vec(), vec![7, 8]);
    }

    #[test]
    fn slice_rows_preserves_encoding_and_values() {
        let s = EncodedTensor::from_strings(&["a", "b", "c", "d"]);
        let sl = s.slice_rows(1, 3);
        assert_eq!(sl.decode_strings(), vec!["b", "c"]);
        match (&s, &sl) {
            (EncodedTensor::Dict { dict: d0, .. }, EncodedTensor::Dict { dict: d1, .. }) => {
                assert!(Arc::ptr_eq(d0, d1), "slices share the parent dictionary");
            }
            other => panic!("expected dict slices, got {other:?}"),
        }
        let f = EncodedTensor::F32(Tensor::from_vec(vec![0.0f32; 8], &[4, 2]));
        assert_eq!(f.slice_rows(1, 3).decode_f32().shape(), &[2, 2]);
        assert_eq!(f.slice_rows(3, 99).rows(), 1, "end clamps");
        assert_eq!(f.slice_rows(9, 99).rows(), 0, "empty past the end");
        let rle = EncodedTensor::Rle(RleColumn::encode(&Tensor::from_vec(
            vec![7i64, 7, 8, 8],
            &[4],
        )));
        assert_eq!(rle.slice_rows(1, 4).decode_i64().to_vec(), vec![7, 8, 8]);
    }

    #[test]
    fn concat_preserves_encodings_and_exact_values() {
        // Same-dict pieces concatenate codes and share the dictionary.
        let s = EncodedTensor::from_strings(&["x", "y", "x", "z"]);
        let (a, b) = (s.slice_rows(0, 2), s.slice_rows(2, 4));
        let joined = EncodedTensor::concat(&[&a, &b]);
        assert_eq!(joined.kind(), EncodingKind::Dictionary);
        assert_eq!(joined.decode_strings(), vec!["x", "y", "x", "z"]);
        // Plain i64 pieces stay plain.
        let i = EncodedTensor::from_i64_slice(&[1, 2]);
        let j = EncodedTensor::from_i64_slice(&[3]);
        assert_eq!(
            EncodedTensor::concat(&[&i, &j]).kind(),
            EncodingKind::PlainI64
        );
        // Heterogeneous pieces decode to exact strings: i64 above 2^24
        // must not round through f32.
        let big = EncodedTensor::from_i64_slice(&[16_777_217]);
        let f = EncodedTensor::from_f32_slice(&[0.5]);
        let mixed = EncodedTensor::concat(&[&big, &f]);
        assert_eq!(mixed.decode_strings(), vec!["16777217", "0.5"]);
    }

    #[test]
    fn select_rows_reorders_all_encodings() {
        let idx = Tensor::from_vec(vec![2i64, 0], &[2]);
        let f = EncodedTensor::from_f32_slice(&[10.0, 20.0, 30.0]).select_rows(&idx);
        assert_eq!(f.decode_f32().to_vec(), vec![30.0, 10.0]);
        let d = EncodedTensor::from_strings(&["p", "q", "r"]).select_rows(&idx);
        assert_eq!(d.decode_strings(), vec!["r", "p"]);
    }

    #[test]
    fn head_slices_all_encodings() {
        let f = EncodedTensor::from_f32_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(f.head(2).decode_f32().to_vec(), vec![1.0, 2.0]);
        assert_eq!(f.head(9).rows(), 3, "clamps");
        let s = EncodedTensor::from_strings(&["x", "y", "z"]);
        assert_eq!(s.head(2).decode_strings(), vec!["x", "y"]);
        assert_eq!(s.head(2).kind(), EncodingKind::Dictionary);
        let rle = EncodedTensor::Rle(RleColumn::encode(&Tensor::from_vec(
            vec![7i64, 7, 8, 8],
            &[4],
        )));
        assert_eq!(rle.head(3).decode_i64().to_vec(), vec![7, 7, 8]);
        // Payload columns keep their trailing shape.
        let img = EncodedTensor::F32(Tensor::zeros(&[4, 2, 2]));
        assert_eq!(img.head(1).decode_f32().shape(), &[1, 2, 2]);
        let pe = EncodedTensor::Pe(PeTensor::from_class_ids(
            &Tensor::from_vec(vec![1i64, 0, 1], &[3]),
            PeTensor::range_classes(2),
        ));
        assert_eq!(pe.head(2).decode_f32().to_vec(), vec![1.0, 0.0]);
    }

    #[test]
    fn memory_accounting_favours_compression() {
        let repetitive: Vec<i64> = vec![3; 10_000];
        let plain = EncodedTensor::I64(Tensor::from_vec(repetitive.clone(), &[10_000]));
        let rle = EncodedTensor::Rle(RleColumn::encode(&plain.decode_i64()));
        assert!(rle.memory_bytes() * 100 < plain.memory_bytes());
    }

    #[test]
    fn device_movement_keeps_values() {
        let c = EncodedTensor::from_f32_slice(&[1.0, 2.0]);
        let moved = c.to_device(tdp_tensor::Device::Accel(2));
        assert_eq!(moved.decode_f32().to_vec(), vec![1.0, 2.0]);
        match moved {
            EncodedTensor::F32(t) => assert!(t.device().is_accel()),
            _ => panic!("encoding changed"),
        }
    }
}
