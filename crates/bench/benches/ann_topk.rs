//! Ablation: exact top-k scan vs IVF-Flat approximate index.
//!
//! §5.1 of the paper closes with "We are currently integrating approximate
//! indexing [Milvus] into TDP for speeding up top-k queries". This harness
//! measures what that integration buys: recall@10 and per-query latency of
//! the IVF-Flat index across an `nprobe` sweep, against the exact flat
//! scan the un-indexed `ORDER BY score DESC LIMIT k` query performs.
//!
//! Workload A: Gaussian-mixture embeddings (64-d, 32 semantic clusters) —
//! the shape of a learned embedding table. Workload B: CLIP-sim features
//! of generated email attachments — the paper's actual Figure 2 corpus.
//!
//! Laptop scale: 4,000 vectors. `TDP_BENCH_FULL=1`: 40,000.

use tdp_bench::{figure, knob, timed};
use tdp_core::index::{recall_at_k, FlatIndex, IvfFlatIndex, IvfParams, Metric};
use tdp_core::tensor::{F32Tensor, Rng64, Tensor};
use tdp_data::attachments::generate_attachments;
use tdp_ml::clip::image_features;

const K: usize = 10;
const N_QUERIES: usize = 50;

fn mixture_embeddings(n: usize, d: usize, clusters: usize, rng: &mut Rng64) -> F32Tensor {
    let mut centers = Vec::with_capacity(clusters * d);
    for _ in 0..clusters * d {
        centers.push(rng.normal() as f32 * 3.0);
    }
    let mut v = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = i % clusters;
        for j in 0..d {
            v.push(centers[c * d + j] + rng.normal() as f32 * 0.7);
        }
    }
    Tensor::from_vec(v, &[n, d])
}

fn sweep(name: &str, data: F32Tensor, metric: Metric, rng: &mut Rng64) {
    let n = data.shape()[0];
    let d = data.shape()[1];
    let nlist = (n as f64).sqrt().round() as usize;
    println!("\n== workload: {name} ({n} x {d}, metric {metric:?}, nlist {nlist}) ==");

    // Queries: perturbed copies of stored vectors (realistic near-duplicates).
    let rows = data.data().to_vec();
    let queries: Vec<F32Tensor> = (0..N_QUERIES)
        .map(|_| {
            let base = rng.below(n);
            let q: Vec<f32> = rows[base * d..(base + 1) * d]
                .iter()
                .map(|&x| x + rng.normal() as f32 * 0.05)
                .collect();
            Tensor::from_vec(q, &[d])
        })
        .collect();

    let flat = FlatIndex::build(data.clone(), metric);
    let (truth, exact_total) = timed(|| {
        queries
            .iter()
            .map(|q| flat.search(q, K))
            .collect::<Vec<_>>()
    });
    let exact_ms = exact_total * 1e3 / N_QUERIES as f64;

    let (ivf, train_s) = timed(|| IvfFlatIndex::train(data, metric, IvfParams::new(nlist), rng));
    println!(
        "ivf train: {:.2}s  cells {}  sizes min/max {}/{}",
        train_s,
        ivf.nlist(),
        ivf.list_sizes().iter().min().unwrap(),
        ivf.list_sizes().iter().max().unwrap()
    );

    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "nprobe", "recall@10", "ms/query", "speedup"
    );
    println!(
        "{:>10} {:>12} {:>12.3} {:>10}",
        "exact", "1.000", exact_ms, "1.0x"
    );
    for nprobe in [1usize, 2, 4, 8, 16, 32] {
        if nprobe > ivf.nlist() {
            break;
        }
        let (results, total) = timed(|| {
            queries
                .iter()
                .map(|q| ivf.search(q, K, nprobe))
                .collect::<Vec<_>>()
        });
        let ms = total * 1e3 / N_QUERIES as f64;
        let recall: f64 = truth
            .iter()
            .zip(&results)
            .map(|(t, a)| recall_at_k(t, a))
            .sum::<f64>()
            / N_QUERIES as f64;
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>9.1}x",
            nprobe,
            recall,
            ms,
            exact_ms / ms.max(1e-9)
        );
    }
}

fn main() {
    figure(
        "Ablation: approximate top-k indexing (IVF-Flat vs exact scan)",
        "paper: feature in progress; expectation: recall -> 1 as nprobe grows, large speedup at small nprobe",
    );
    let n = knob("ANN_VECTORS", 4_000, 40_000);
    let mut rng = Rng64::new(51);

    sweep(
        "gaussian-mixture embeddings",
        mixture_embeddings(n, 64, 32, &mut rng),
        Metric::Cosine,
        &mut rng,
    );

    // CLIP-sim features of the Figure 2 attachment corpus.
    let n_img = knob("ANN_IMAGES", 600, 2_000);
    let ds = generate_attachments(n_img, 24, 36, &mut rng);
    let mut feats = Vec::with_capacity(n_img * 9);
    for i in 0..n_img {
        feats.extend_from_slice(image_features(&ds.images.row(i)).data());
    }
    sweep(
        "CLIP-sim attachment features",
        Tensor::from_vec(feats, &[n_img, 9]),
        Metric::Cosine,
        &mut rng,
    );
}
