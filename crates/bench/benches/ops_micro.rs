//! Criterion micro-benchmarks of the tensor kernels that dominate query
//! execution: elementwise ops, matmul, conv2d and row selection, each on
//! CPU and on the simulated accelerator. These are the ablation data for
//! the device-simulation design choice in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdp_core::tensor::{Device, Rng64, Tensor};

fn bench_elementwise(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let n = 512 * 512;
    let a = Tensor::<f32>::randn(&[n], 0.0, 1.0, &mut rng);
    let b = Tensor::<f32>::randn(&[n], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("elementwise_mul_sigmoid");
    group.sample_size(20);
    for device in [Device::Cpu, Device::accel()] {
        let ad = a.to(device);
        let bd = b.to(device);
        group.bench_with_input(BenchmarkId::from_parameter(device), &device, |bch, _| {
            bch.iter(|| ad.mul(&bd).sigmoid())
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng64::new(2);
    let a = Tensor::<f32>::randn(&[256, 256], 0.0, 1.0, &mut rng);
    let b = Tensor::<f32>::randn(&[256, 256], 0.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("matmul_256");
    group.sample_size(20);
    for device in [Device::Cpu, Device::accel()] {
        let ad = a.to(device);
        let bd = b.to(device);
        group.bench_with_input(BenchmarkId::from_parameter(device), &device, |bch, _| {
            bch.iter(|| ad.matmul(&bd))
        });
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = Rng64::new(3);
    let img = Tensor::<f32>::randn(&[8, 8, 28, 28], 0.0, 1.0, &mut rng);
    let w = Tensor::<f32>::randn(&[16, 8, 3, 3], 0.0, 0.1, &mut rng);
    let mut group = c.benchmark_group("conv2d_8x8x28x28");
    group.sample_size(20);
    for device in [Device::Cpu, Device::accel()] {
        let im = img.to(device);
        let wd = w.to(device);
        group.bench_with_input(BenchmarkId::from_parameter(device), &device, |bch, _| {
            bch.iter(|| im.conv2d(&wd, None, 1, 1))
        });
    }
    group.finish();
}

fn bench_row_selection(c: &mut Criterion) {
    let mut rng = Rng64::new(4);
    let n = 100_000;
    let t = Tensor::<f32>::randn(&[n, 8], 0.0, 1.0, &mut rng);
    let mask = t.narrow(1, 0, 1).reshape(&[n]).gt_scalar(0.0);
    let mut group = c.benchmark_group("filter_rows_100k");
    group.sample_size(20);
    group.bench_function("mask_filter", |bch| bch.iter(|| t.filter_rows(&mask)));
    let idx = Tensor::<i64>::arange(n / 2);
    group.bench_function("gather_half", |bch| bch.iter(|| t.select_rows(&idx)));
    group.finish();
}

fn bench_sort_groupby_kernels(c: &mut Criterion) {
    let mut rng = Rng64::new(5);
    let n = 100_000;
    let keys: Vec<i64> = (0..n).map(|_| rng.below(100) as i64).collect();
    let keys = Tensor::from_vec(keys, &[n]);
    let mut group = c.benchmark_group("groupby_kernels_100k");
    group.sample_size(20);
    group.bench_function("argsort", |bch| bch.iter(|| keys.argsort()));
    group.bench_function("unique_inverse_counts", |bch| {
        bch.iter(|| tdp_core::tensor::sort::unique_i64(&keys))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_elementwise,
    bench_matmul,
    bench_conv2d,
    bench_row_selection,
    bench_sort_groupby_kernels
);
criterion_main!(benches);
