//! Criterion micro-benchmarks of the query engine: end-to-end SQL
//! operators plus the soft-vs-exact aggregation ablation that DESIGN.md
//! calls out (what does differentiability cost at execution time?).

use criterion::{criterion_group, criterion_main, Criterion};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::{Rng64, Tensor};
use tdp_core::{ParamValues, QueryConfig, Tdp};

fn session(n: usize) -> Tdp {
    let mut rng = Rng64::new(9);
    let tdp = Tdp::new();
    let cats = ["alpha", "beta", "gamma", "delta"];
    let labels: Vec<&str> = (0..n).map(|_| cats[rng.below(cats.len())]).collect();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .col_i64("k", (0..n).map(|_| rng.below(50) as i64).collect())
            .col_str("label", &labels)
            .build("t"),
    );
    tdp
}

fn bench_sql_operators(c: &mut Criterion) {
    let tdp = session(50_000);
    let mut group = c.benchmark_group("sql_50k_rows");
    group.sample_size(20);
    for (name, sql) in [
        ("filter", "SELECT v FROM t WHERE v > 0.5"),
        ("filter_string", "SELECT v FROM t WHERE label = 'alpha'"),
        ("groupby_count", "SELECT k, COUNT(*) FROM t GROUP BY k"),
        (
            "groupby_agg",
            "SELECT label, SUM(v), AVG(v) FROM t GROUP BY label",
        ),
        ("orderby_limit", "SELECT v FROM t ORDER BY v DESC LIMIT 10"),
    ] {
        let q = tdp.query(sql).expect("compile");
        group.bench_function(name, |b| b.iter(|| q.run().expect("run")));
    }
    group.finish();
}

fn bench_soft_vs_exact_groupby(c: &mut Criterion) {
    // Ablation: the differentiable (soft) group-by over an exact key
    // column vs the sort-based exact group-by, same query.
    let tdp = session(20_000);
    let sql = "SELECT k, COUNT(*) FROM t GROUP BY k";
    let exact = tdp.query(sql).expect("compile");
    let soft = tdp
        .query_with(sql, QueryConfig::default().trainable(true))
        .expect("compile");
    let mut group = c.benchmark_group("soft_vs_exact_groupby_20k");
    group.sample_size(20);
    group.bench_function("exact_sort_based", |b| b.iter(|| exact.run().expect("run")));
    group.bench_function("soft_khatri_rao", |b| {
        b.iter(|| soft.run_diff().expect("run_diff"))
    });
    group.finish();
}

fn bench_compilation(c: &mut Criterion) {
    let tdp = session(100);
    let sql = "SELECT label, SUM(v * 2 + 1) AS s FROM t WHERE k > 10 \
               GROUP BY label HAVING COUNT(*) > 5 ORDER BY s DESC LIMIT 3";
    let mut group = c.benchmark_group("compile");
    group.sample_size(50);
    // Full pipeline: parse → plan → optimize → lower (cache cleared).
    group.bench_function("parse_plan_optimize_lower", |b| {
        b.iter(|| {
            tdp.clear_plan_cache();
            tdp.query(sql).expect("compile")
        })
    });
    // Plan-cache hit: the same SQL re-compiled skips all of the above.
    group.bench_function("plan_cache_hit", |b| {
        b.iter(|| tdp.query(sql).expect("compile"))
    });
    group.finish();
}

fn bench_compiled_vs_uncompiled_repeated(c: &mut Criterion) {
    // The compile-once story, end to end: issuing the same query many
    // times. `recompile_uncached` pays parse → plan → optimize → lower on
    // every run; `recompile_cached` pays one plan-cache probe; the
    // compiled query pays neither — it is pure slot-indexed kernel
    // dispatch. Small table so per-run overhead (not kernels) dominates.
    let tdp = session(1_000);
    let sql = "SELECT label, SUM(v) AS s FROM t WHERE k > 10 GROUP BY label \
               ORDER BY s DESC LIMIT 3";
    let mut group = c.benchmark_group("repeated_query_1k_rows");
    group.sample_size(50);
    group.bench_function("recompile_uncached", |b| {
        b.iter(|| {
            tdp.clear_plan_cache();
            tdp.query(sql).expect("compile").run().expect("run")
        })
    });
    group.bench_function("recompile_cached", |b| {
        b.iter(|| tdp.query(sql).expect("compile").run().expect("run"))
    });
    let compiled = tdp.query(sql).expect("compile");
    group.bench_function("compile_once_run_many", |b| {
        b.iter(|| compiled.run().expect("run"))
    });
    group.finish();
}

fn bench_prepared_rebind_vs_requery(c: &mut Criterion) {
    // The prepared-statement story, per training-loop iteration: issuing
    // the same query shape with a fresh literal each time. `requery` pays
    // parse + literal extraction + a plan-cache probe per iteration (the
    // plan itself is shared — literals normalize to parameter slots);
    // `bind_and_run` pays only an arity check and a values vector. Small
    // table so per-iteration overhead (not kernels) dominates.
    let tdp = session(1_000);
    let sql = "SELECT label, SUM(v) AS s FROM t WHERE v > ? GROUP BY label";
    let prepared = tdp.prepare(sql).expect("prepare");
    let mut group = c.benchmark_group("prepared_rebind_1k_rows");
    group.sample_size(50);
    let mut i = 0u64;
    group.bench_function("requery_fresh_literal", |b| {
        b.iter(|| {
            i += 1;
            let t = (i % 100) as f64 * 0.01;
            tdp.query(&format!(
                "SELECT label, SUM(v) AS s FROM t WHERE v > {t} GROUP BY label"
            ))
            .expect("compile")
            .run()
            .expect("run")
        })
    });
    let mut j = 0u64;
    group.bench_function("bind_and_run", |b| {
        b.iter(|| {
            j += 1;
            let t = (j % 100) as f64 * 0.01;
            prepared
                .bind(ParamValues::new().number(t))
                .expect("bind")
                .run()
                .expect("run")
        })
    });
    group.finish();
}

fn bench_encodings(c: &mut Criterion) {
    use tdp_core::encoding::{RleColumn, StringDict};
    let mut rng = Rng64::new(11);
    let n = 100_000;
    let strings: Vec<String> = (0..n).map(|_| format!("cat{}", rng.below(64))).collect();
    let repetitive: Vec<i64> = (0..n).map(|i| (i / 1000) as i64).collect();
    let rep = Tensor::from_vec(repetitive, &[n]);
    let mut group = c.benchmark_group("encodings_100k");
    group.sample_size(20);
    group.bench_function("dict_encode", |b| b.iter(|| StringDict::encode(&strings)));
    group.bench_function("rle_encode", |b| b.iter(|| RleColumn::encode(&rep)));
    let rle = RleColumn::encode(&rep);
    group.bench_function("rle_eq_mask", |b| b.iter(|| rle.eq_mask(42)));
    group.finish();
}

fn bench_topk_vs_full_sort(c: &mut Criterion) {
    // Ablation: the optimizer's Limit(Sort) -> TopK fusion. The fused
    // operator selects in O(n) average; the unfused path sorts everything.
    use tdp_core::sql::ast::OrderItem;
    use tdp_core::sql::plan::LogicalPlan;
    let tdp = session(200_000);
    let fused = tdp
        .query("SELECT v FROM t ORDER BY v DESC LIMIT 10")
        .expect("compile");
    assert!(fused.explain().contains("TopK"), "fusion must fire");
    let mut group = c.benchmark_group("topk_200k");
    group.sample_size(20);
    group.bench_function("fused_topk", |b| b.iter(|| fused.run().expect("run")));
    // Hand-built unfused plan for the comparison.
    let unfused_plan = LogicalPlan::Limit {
        n: tdp_core::sql::ast::LimitCount::Const(10),
        input: Box::new(LogicalPlan::Sort {
            keys: vec![OrderItem {
                expr: tdp_core::sql::ast::Expr::col("v"),
                desc: true,
            }],
            input: Box::new(LogicalPlan::Project {
                items: vec![tdp_core::sql::ast::SelectItem {
                    expr: tdp_core::sql::ast::Expr::col("v"),
                    alias: None,
                }],
                input: Box::new(LogicalPlan::Scan { table: "t".into() }),
            }),
        }),
    };
    let catalog = tdp.catalog();
    let udfs = tdp_core::exec::UdfRegistry::new();
    let ctx = tdp_core::exec::ExecContext::new(catalog, &udfs);
    let unfused = tdp_core::exec::lower(&unfused_plan, catalog, &udfs).expect("lower");
    group.bench_function("full_sort_then_limit", |b| {
        b.iter(|| tdp_core::exec::execute(&unfused, &ctx).expect("run"))
    });
    group.finish();
}

fn bench_compressed_encodings(c: &mut Criterion) {
    // Ablation: encode/decode cost and end-to-end GROUP BY latency on the
    // new bit-packed and delta layouts vs plain i64.
    use tdp_core::encoding::{BitPackedColumn, DeltaColumn, EncodedTensor};
    let n = 100_000;
    let low_card: Vec<i64> = (0..n).map(|i| (i % 8) as i64).collect();
    let timestamps: Vec<i64> = (0..n).map(|i| 1_700_000_000 + 2 * i as i64).collect();
    let low = Tensor::from_vec(low_card.clone(), &[n]);
    let ts = Tensor::from_vec(timestamps.clone(), &[n]);

    let mut group = c.benchmark_group("compressed_encodings_100k");
    group.sample_size(20);
    group.bench_function("bitpack_encode", |b| {
        b.iter(|| BitPackedColumn::encode(&low))
    });
    group.bench_function("delta_encode", |b| b.iter(|| DeltaColumn::encode(&ts)));
    let packed = BitPackedColumn::encode(&low);
    let delta = DeltaColumn::encode(&ts).expect("encodable");
    group.bench_function("bitpack_decode", |b| b.iter(|| packed.decode()));
    group.bench_function("delta_decode", |b| b.iter(|| delta.decode()));
    group.bench_function("auto_compress", |b| {
        b.iter(|| EncodedTensor::compress_i64(&low))
    });

    // End-to-end: same GROUP BY over plain vs compressed storage.
    for (name, compress) in [("groupby_plain_i64", false), ("groupby_bitpacked", true)] {
        let tdp = Tdp::new();
        let table = TableBuilder::new()
            .col_i64("k", low_card.clone())
            .col_f32("v", vec![1.0; n])
            .build("t");
        tdp.register_table(if compress { table.compress() } else { table });
        let q = tdp
            .query("SELECT k, COUNT(*) FROM t GROUP BY k")
            .expect("compile");
        group.bench_function(name, |b| b.iter(|| q.run().expect("run")));
    }
    group.finish();
}

fn bench_parallel_scaling(c: &mut Criterion) {
    // The morsel-scheduler scaling story: the same compiled query at
    // 1/2/4/8 worker threads over a scan large enough to split into many
    // morsels. `filter_heavy` is a fused filter→project pipeline
    // (order-preserving concat sink); `aggregate_heavy` is a grouped
    // aggregation (parallel partial aggregation + combine sink). Results
    // are identical at every thread count; only wall-clock changes.
    let n = 2_000_000;
    let mut rng = Rng64::new(17);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .col_i64("k", (0..n).map(|_| rng.below(64) as i64).collect())
            .build("big"),
    );
    let mut group = c.benchmark_group("parallel_scaling_2m");
    group.sample_size(10);
    for (name, sql) in [
        (
            "filter_heavy",
            "SELECT v * 2 + 1 AS s FROM big WHERE v > 0.0 AND v < 1.5",
        ),
        (
            "aggregate_heavy",
            "SELECT k, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM big GROUP BY k",
        ),
    ] {
        let q = tdp.query(sql).expect("compile");
        for threads in [1usize, 2, 4, 8] {
            tdp.set_threads(threads);
            group.bench_function(format!("{name}/threads_{threads}"), |b| {
                b.iter(|| q.run().expect("run"))
            });
        }
    }
    tdp.set_threads(1);
    group.finish();
}

fn bench_parallel_barriers(c: &mut Criterion) {
    // The staged-barrier scaling story (PR 5): join-, sort- and
    // distinct-heavy queries at 1/2/4/8 worker threads over 2M-row
    // inputs. `join_heavy` probes a 50k-row build side through the
    // partitioned hash join (exchange → per-partition tables → parallel
    // probe); `sort_heavy` is a full parallel merge sort; `topk_heavy`
    // merges per-morsel top-k runs; `distinct_heavy` dedups 50k keys
    // shared-nothing across the exchange. Results are identical at
    // every thread count; only wall-clock changes.
    let n = 2_000_000;
    let keys = 50_000usize;
    let mut rng = Rng64::new(31);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .col_i64("k", (0..n).map(|_| rng.below(keys) as i64).collect())
            .build("big"),
    );
    tdp.register_table(
        TableBuilder::new()
            .col_i64("k", (0..keys as i64).collect())
            .col_f32("w", (0..keys).map(|_| rng.normal() as f32).collect())
            .build("d"),
    );
    let mut group = c.benchmark_group("parallel_barriers_2m");
    group.sample_size(10);
    for (name, sql) in [
        (
            "join_heavy",
            "SELECT COUNT(*), SUM(w) FROM big JOIN d ON big.k = d.k WHERE v > -3.0",
        ),
        ("sort_heavy", "SELECT v FROM big ORDER BY v"),
        (
            "topk_heavy",
            "SELECT v, k FROM big ORDER BY v DESC LIMIT 100",
        ),
        ("distinct_heavy", "SELECT DISTINCT k FROM big"),
    ] {
        let q = tdp.query(sql).expect("compile");
        for threads in [1usize, 2, 4, 8] {
            tdp.set_threads(threads);
            group.bench_function(format!("{name}/threads_{threads}"), |b| {
                b.iter(|| q.run().expect("run"))
            });
        }
    }
    tdp.set_threads(1);
    group.finish();
}

fn bench_parallel_udf_scaling(c: &mut Criterion) {
    // The declared-signature payoff: a `parallel_safe` scalar UDF chain
    // runs through the morsel worker pool instead of the sequential
    // whole-batch fallback. Same compiled query at 1/2/4/8 threads; the
    // UDF does real per-row work (decode + multiply + re-encode), so the
    // chain is compute-bound and should scale. `session_bound` is the
    // ablation: the identical implementation registered without
    // `Send + Sync` proof pins the chain to one thread.
    use std::sync::Arc;
    use tdp_core::encoding::EncodedTensor;
    use tdp_core::exec::{ArgValue, ExecContext, ExecError};
    use tdp_core::{ArgType, FunctionSpec, ScalarUdf, Volatility};

    struct Smooth;
    impl ScalarUdf for Smooth {
        fn name(&self) -> &str {
            "smooth"
        }
        fn spec(&self) -> FunctionSpec {
            FunctionSpec::scalar(self.name(), vec![ArgType::Column])
                .volatility(Volatility::Immutable)
                .parallel_safe(true)
        }
        fn invoke(
            &self,
            args: &[ArgValue],
            _ctx: &ExecContext,
        ) -> Result<EncodedTensor, ExecError> {
            let col = args[0].as_column()?.decode_f32();
            Ok(EncodedTensor::F32(col.map(|v| (v * 0.5).tanh())))
        }
    }

    let n = 1_000_000;
    let mut rng = Rng64::new(23);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .build("big"),
    );
    let sql = "SELECT smooth(v) AS s FROM big WHERE smooth(v) > 0.0";
    let mut group = c.benchmark_group("parallel_udf_1m");
    group.sample_size(10);

    tdp.register_udf_parallel(Arc::new(Smooth));
    let q = tdp.query(sql).expect("compile");
    for threads in [1usize, 2, 4, 8] {
        tdp.set_threads(threads);
        group.bench_function(format!("parallel_safe/threads_{threads}"), |b| {
            b.iter(|| q.run().expect("run"))
        });
    }

    // Ablation: same UDF, session-bound registration -> sequential path.
    tdp.register_udf(Arc::new(Smooth));
    let seq = tdp.query(sql).expect("compile");
    tdp.set_threads(8);
    group.bench_function("session_bound/threads_8", |b| {
        b.iter(|| seq.run().expect("run"))
    });
    tdp.set_threads(1);
    group.finish();
}

fn bench_chain_kernels(c: &mut Criterion) {
    // The chain-kernel story (PR 6): interpreter vs compiled
    // selection-vector execution for the fused filter→project chains,
    // at 1/2/4/8 worker threads over a 2M-row scan. `filter_heavy`
    // leads with a selective conjunct so the expensive sqrt conjunct
    // runs only on survivors (the interpreter evaluates every conjunct
    // over every row); `conjuncts_dense` stacks non-selective
    // conjuncts — the kernel's dense path evaluates those full-width
    // too, so this cell measures pure overhead; `project_heavy` is
    // computation-bound (the kernel's win is monomorphised loops under
    // the selection); the selectivity variants sweep survivor counts.
    // Results are bit-identical in every cell — only wall-clock
    // changes.
    let n = 2_000_000;
    let mut rng = Rng64::new(41);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .col_i64("k", (0..n).map(|_| rng.below(64) as i64).collect())
            .col_f32("w", (0..n).map(|_| rng.normal() as f32).collect())
            .build("big"),
    );
    let mut group = c.benchmark_group("chain_kernels_2m");
    group.sample_size(10);
    for (name, sql) in [
        (
            "filter_heavy",
            "SELECT v, k, w FROM big WHERE v > 1.0 AND sqrt(w * w + 4.0) + v < 3.5 AND k < 48",
        ),
        (
            "conjuncts_dense",
            "SELECT v, k, w FROM big WHERE v > -1.0 AND w < 1.0 AND k < 48",
        ),
        (
            "project_heavy",
            "SELECT v * 2.0 + w AS a, v - w * 0.5 AS b, k + 1 AS c FROM big WHERE v > -3.0",
        ),
        (
            "selective_1pct",
            "SELECT v, w FROM big WHERE v > 2.3 AND w > 0.0",
        ),
        ("selective_50pct", "SELECT v, w FROM big WHERE v > 0.0"),
    ] {
        let q = tdp.query(sql).expect("compile");
        for threads in [1usize, 2, 4, 8] {
            tdp.set_threads(threads);
            for (mode, kernels) in [("interpreted", false), ("compiled", true)] {
                tdp.set_chain_kernels(kernels);
                group.bench_function(format!("{name}/{mode}/threads_{threads}"), |b| {
                    b.iter(|| q.run().expect("run"))
                });
            }
        }
    }
    tdp.set_threads(1);
    tdp.set_chain_kernels(true);
    group.finish();
}

fn bench_concurrent_sessions(c: &mut Criterion) {
    // The engine/session split story (PR 7): T threads each open a fresh
    // session over one shared engine and run a small statement workload.
    // `shared_plan_cache` is the new architecture — the first session
    // compiles, every later session (on any thread) hits the engine-wide
    // cache. `private_plan_cache` is the ablation: one engine per thread
    // with its cache cleared each round, so every session recompiles its
    // own plans — the pre-split cost model. Execution work is identical;
    // the delta is compilation amortization across sessions.
    use std::sync::Arc;
    use tdp_core::TdpEngine;

    const STATEMENTS: &[&str] = &[
        "SELECT label, SUM(v * 2 + 1) AS s FROM t WHERE k > 10 GROUP BY label \
         HAVING COUNT(*) > 5 ORDER BY s DESC LIMIT 3",
        "SELECT k, COUNT(*), AVG(v) FROM t WHERE v > 0.25 GROUP BY k ORDER BY k LIMIT 5",
        "SELECT v FROM t WHERE label = 'alpha' ORDER BY v DESC LIMIT 10",
        "SELECT label, MIN(v), MAX(v) FROM t GROUP BY label ORDER BY label",
        "SELECT COUNT(*) FROM t WHERE v > 0.0 AND k < 25",
        "SELECT k, SUM(v) AS s FROM t GROUP BY k ORDER BY s LIMIT 3",
    ];

    fn make_engine(rows: usize, seed: u64) -> Arc<TdpEngine> {
        let mut rng = Rng64::new(seed);
        let engine = TdpEngine::new();
        let cats = ["alpha", "beta", "gamma", "delta"];
        let labels: Vec<&str> = (0..rows).map(|_| cats[rng.below(cats.len())]).collect();
        engine.register_table(
            TableBuilder::new()
                .col_f32("v", (0..rows).map(|_| rng.normal() as f32).collect())
                .col_i64("k", (0..rows).map(|_| rng.below(50) as i64).collect())
                .col_str("label", &labels)
                .build("t"),
        );
        engine
    }

    fn run_workload(engine: &Arc<TdpEngine>) {
        let session = engine.session();
        session.set_threads(1);
        for sql in STATEMENTS {
            session.query(sql).expect("compile").run().expect("run");
        }
    }

    let rows = 10_000;
    let mut group = c.benchmark_group("concurrent_sessions");
    group.sample_size(10);

    let shared = make_engine(rows, 9);
    for threads in [1usize, 2, 4, 8] {
        group.bench_function(format!("shared_plan_cache/threads_{threads}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        let engine = Arc::clone(&shared);
                        std::thread::spawn(move || run_workload(&engine))
                    })
                    .collect();
                for h in handles {
                    h.join().expect("worker");
                }
            })
        });
    }

    for threads in [1usize, 2, 4, 8] {
        let engines: Vec<Arc<TdpEngine>> = (0..threads)
            .map(|i| make_engine(rows, 9 + i as u64))
            .collect();
        group.bench_function(format!("private_plan_cache/threads_{threads}"), |b| {
            b.iter(|| {
                let handles: Vec<_> = engines
                    .iter()
                    .map(|engine| {
                        let engine = Arc::clone(engine);
                        std::thread::spawn(move || {
                            // A private cache never sees another session's
                            // compilations; clearing models a cold session.
                            engine.clear_plan_cache();
                            run_workload(&engine)
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("worker");
                }
            })
        });
    }
    group.finish();
}

fn bench_access_paths(c: &mut Criterion) {
    // The PR 8 access-path story over 2M rows. Pruning side: `v` is
    // block-ordered (insertion order ~ value order, the natural shape of
    // log/timestamp data), so a narrow range predicate can rule out
    // whole 4096-row chunks; the same compiled query runs with zone maps
    // on and off. ANN side: `ORDER BY distance(emb, ?) LIMIT 10` over
    // 20k 32-d embeddings through the AnnTopK operator — flat (exact)
    // vs IVF (nlist=64, nprobe=8) vs the unfused scan+sort oracle.
    let n = 2_000_000;
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|i| i as f32).collect())
            .col_i64("k", (0..n).map(|i| (i % 97) as i64).collect())
            .build("big"),
    );
    let mut group = c.benchmark_group("access_paths_2m");
    group.sample_size(10);
    let q = tdp
        .query("SELECT v, k FROM big WHERE v >= 1000000 AND v < 1010000")
        .expect("compile");
    for (name, zone_maps) in [("range_filter_pruned", true), ("range_filter_full", false)] {
        tdp.set_zone_maps(zone_maps);
        group.bench_function(name, |b| b.iter(|| q.run().expect("run")));
    }
    tdp.set_zone_maps(true);

    let nv = 20_000;
    let d = 32;
    let mut rng = Rng64::new(23);
    let emb = Tensor::randn(&[nv, d], 0.0, 1.0, &mut rng);
    tdp.register_table(
        TableBuilder::new()
            .col_i64("id", (0..nv as i64).collect())
            .col_tensor("emb", emb)
            .build("vecs"),
    );
    let probe = Tensor::randn(&[d], 0.0, 1.0, &mut rng);
    let run_ann = |sql: &str| {
        let prepared = tdp.prepare(sql).expect("prepare");
        let params = ParamValues::new().tensor(probe.clone());
        prepared.bind(params).expect("bind").run().expect("run")
    };
    let topk_sql = "SELECT id FROM vecs ORDER BY distance(emb, ?) LIMIT 10";
    group.bench_function("ann_flat_exact", |b| b.iter(|| run_ann(topk_sql)));
    tdp.execute("CREATE INDEX bench_ivf ON vecs (emb) USING ivf(64, 8) METRIC l2")
        .expect("create index");
    group.bench_function("ann_ivf_64_8", |b| b.iter(|| run_ann(topk_sql)));
    tdp.execute("DROP INDEX bench_ivf").expect("drop index");
    // No LIMIT → Sort, never AnnTopK: the full scan+sort cost.
    group.bench_function("ann_sort_oracle", |b| {
        b.iter(|| run_ann("SELECT id FROM vecs ORDER BY distance(emb, ?)"))
    });
    group.finish();
}

fn bench_memory_budget(c: &mut Criterion) {
    // The PR 9 memory-accounting overhead check: the same compiled
    // memory-heavy queries (the operators that charge per-query
    // ledgers: DISTINCT, partitioned join, sort) on an engine with no
    // budget vs one with a roomy 1 GiB budget no query comes near.
    // Ledger accounting itself is unconditional; the delta is the
    // budgeted pool's compare-and-rollback on every charge, and must
    // stay within the noise (≤ 2%).
    use std::sync::Arc;
    use tdp_core::TdpEngine;

    let n = 2_000_000;
    let keys = 50_000usize;
    fn load(engine: &Arc<TdpEngine>, n: usize, keys: usize) {
        let mut rng = Rng64::new(29);
        engine.register_table(
            TableBuilder::new()
                .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
                .col_i64("k", (0..n).map(|_| rng.below(keys) as i64).collect())
                .build("big"),
        );
        engine.register_table(
            TableBuilder::new()
                .col_i64("k", (0..keys as i64).collect())
                .col_f32("w", (0..keys).map(|_| rng.normal() as f32).collect())
                .build("d"),
        );
    }

    let mut group = c.benchmark_group("memory_budget_2m");
    group.sample_size(10);
    for (mode, engine) in [
        ("unlimited", TdpEngine::new()),
        ("budget_1g", TdpEngine::with_memory_budget(1 << 30)),
    ] {
        load(&engine, n, keys);
        let session = engine.session();
        session.set_threads(4);
        for (name, sql) in [
            ("distinct_heavy", "SELECT DISTINCT k FROM big"),
            (
                "join_heavy",
                "SELECT COUNT(*), SUM(w) FROM big JOIN d ON big.k = d.k WHERE v > -3.0",
            ),
            ("topk_heavy", "SELECT v FROM big ORDER BY v LIMIT 5"),
        ] {
            let q = session.query(sql).expect("compile");
            group.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| q.run().expect("run"))
            });
        }
    }
    group.finish();
}

fn bench_late_materialization(c: &mut Criterion) {
    // The PR 10 late-materialization story: a selective compiled filter
    // hands its selection vector straight to each barrier kind instead
    // of gathering survivors into a dense batch first. Selectivity
    // sweep 1%/10%/50%: the payoff shrinks as survivors grow (at 50%
    // the deferred gather saves little, so the modes should sit near
    // parity). `gathered` runs with chain kernels off — interpreter
    // chain, dense batch into the barrier; `selection_fed` with kernels
    // on — the barrier consumes survivor row ids (masked aggregation,
    // survivor probes, key-only sort runs) and gathers once at
    // assembly. The join places its filter in a derived table, the one
    // SQL shape that parks a chain directly under a join probe side.
    let n = 2_000_000;
    let keys = 50_000usize;
    let mut rng = Rng64::new(43);
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_f32("v", (0..n).map(|_| rng.normal() as f32).collect())
            .col_i64("k", (0..n).map(|_| rng.below(keys) as i64).collect())
            .build("big"),
    );
    tdp.register_table(
        TableBuilder::new()
            .col_i64("k", (0..keys as i64).collect())
            .col_f32("w", (0..keys).map(|_| rng.normal() as f32).collect())
            .build("d"),
    );
    tdp.set_threads(4);
    let mut group = c.benchmark_group("late_materialization_2m");
    // 20 samples (vs the usual 10): the 1-CPU container's noise bursts
    // span whole sample windows, and the close cells (join at 10%) need
    // the extra averaging to resolve.
    group.sample_size(20);
    for (sel, cutoff) in [("1pct", "2.33"), ("10pct", "1.28"), ("50pct", "0.0")] {
        for (name, sql) in [
            (
                "aggregate",
                format!(
                    "SELECT COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM big WHERE v > {cutoff}"
                ),
            ),
            (
                "join",
                format!(
                    "SELECT COUNT(*), SUM(d.w) FROM \
                     (SELECT v, k FROM big WHERE v > {cutoff}) AS s JOIN d ON s.k = d.k"
                ),
            ),
            (
                "sort",
                format!("SELECT v, k FROM big WHERE v > {cutoff} ORDER BY v DESC"),
            ),
            (
                "topk",
                format!("SELECT v, k FROM big WHERE v > {cutoff} ORDER BY v DESC LIMIT 100"),
            ),
            (
                "distinct",
                format!("SELECT DISTINCT k FROM big WHERE v > {cutoff}"),
            ),
        ] {
            let q = tdp.query(&sql).expect("compile");
            for (mode, kernels) in [("gathered", false), ("selection_fed", true)] {
                tdp.set_chain_kernels(kernels);
                group.bench_function(format!("{name}/{sel}/{mode}"), |b| {
                    b.iter(|| q.run().expect("run"))
                });
            }
        }
    }
    tdp.set_threads(1);
    tdp.set_chain_kernels(true);
    group.finish();
}

criterion_group!(
    benches,
    bench_sql_operators,
    bench_soft_vs_exact_groupby,
    bench_compilation,
    bench_compiled_vs_uncompiled_repeated,
    bench_prepared_rebind_vs_requery,
    bench_encodings,
    bench_compressed_encodings,
    bench_topk_vs_full_sort,
    bench_parallel_scaling,
    bench_parallel_barriers,
    bench_parallel_udf_scaling,
    bench_chain_kernels,
    bench_concurrent_sessions,
    bench_access_paths,
    bench_memory_budget,
    bench_late_materialization
);
criterion_main!(benches);
