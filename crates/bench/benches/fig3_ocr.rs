//! Figure 3 (left): OCR performance comparison — TDP's lazy in-query
//! extraction vs bulk conversion + an external analytical database.
//!
//! The paper loads 100 document images, then either (a) runs the Listing-8
//! query in TDP, converting only the one image that survives the timestamp
//! filter, or (b) converts *all* images up front and loads the extracted
//! tables into DuckDB. TDP ends up ~2 orders of magnitude faster
//! end-to-end, with the baseline's query time itself being negligible.
//!
//! Output: the same three stacked components the figure plots —
//! data loading, query, conversion.

use std::sync::Arc;

use tdp_baseline::{BaselineDb, BaselineTable, Predicate};
use tdp_bench::{figure, knob, secs, timed};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::Tdp;
use tdp_data::documents::{generate_documents, DocGeometry};
use tdp_ml::ExtractTableTvf;

fn main() {
    let n_docs = knob("FIG3_DOCS", 100, 100);
    let g = DocGeometry::iris();

    figure(
        "Figure 3 (left): OCR — TDP vs Bulk + external DB",
        "TDP ~1s query (single-image conversion) vs ~100x bulk conversion; \
         external DB query itself is milliseconds",
    );

    let mut rng = Rng64::new(7);
    println!(
        "generating {n_docs} document images of {}x{}...",
        g.height, g.width
    );
    let ds = generate_documents(n_docs, g, &mut rng);
    let target_ts = ds.timestamps[n_docs / 2].clone();

    // ---------------- TDP: lazy, in-query conversion ----------------
    let tdp = Tdp::new();
    let (_, tdp_load) = timed(|| {
        tdp.register_table(
            TableBuilder::new()
                .col_tensor("images", ds.images.clone())
                .col_str("timestamp", &ds.timestamps)
                .build("Document"),
        );
        tdp.register_tvf(Arc::new(ExtractTableTvf::new(g, ds.schema.clone())));
    });
    let sql = format!(
        "SELECT AVG(SepalLength), AVG(PetalLength) FROM \
         (SELECT extract_table(images) FROM Document WHERE timestamp = '{target_ts}')"
    );
    let (tdp_result, tdp_query) = timed(|| tdp.query(&sql).unwrap().run().unwrap());
    let tdp_avg = tdp_result
        .column("AVG(SepalLength)")
        .unwrap()
        .data
        .decode_f32()
        .at(0);

    // ------------- Baseline: bulk conversion + external DB -------------
    let tvf = ExtractTableTvf::new(g, ds.schema.clone());
    let mut db = BaselineDb::new();
    let (rows_loaded, bulk_convert) = timed(|| {
        // Convert EVERY image before anything is queryable.
        let table = tvf.extract_batch(&ds.images);
        let n_rows = table.shape()[0];
        let mut bt = BaselineTable::new();
        for (c, name) in ds.schema.iter().enumerate() {
            bt.add_num(
                name,
                (0..n_rows).map(|r| table.get(&[r, c]) as f64).collect(),
            );
        }
        bt.add_str(
            "timestamp",
            ds.timestamps
                .iter()
                .flat_map(|t| std::iter::repeat_n(t.clone(), g.rows))
                .collect(),
        );
        db.create("iris", bt);
        n_rows
    });
    let (base_avg, base_query) = timed(|| {
        db.avg(
            "iris",
            &["SepalLength", "PetalLength"],
            &Predicate::StrEq("timestamp".into(), target_ts.clone()),
        )
        .expect("rows for target timestamp")
    });

    // ---------------- Figure rows ----------------
    println!(
        "\n{:<18} {:>12} {:>12} {:>12} {:>12}",
        "system", "loading", "conversion", "query", "total"
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "TDP (lazy)",
        secs(tdp_load),
        "(in query)",
        secs(tdp_query),
        secs(tdp_load + tdp_query)
    );
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12}",
        "Bulk + ExternalDB",
        "(with conv)",
        secs(bulk_convert),
        secs(base_query),
        secs(bulk_convert + base_query)
    );
    let ratio = (bulk_convert + base_query) / (tdp_query).max(1e-12);
    println!("\nTDP query path is {ratio:.0}x faster end-to-end (paper: ~2 orders of magnitude)");
    println!(
        "semantic check: TDP AVG(SepalLength) {tdp_avg:.3} vs baseline {:.3} \
         (ground truth {:.3}); baseline loaded {rows_loaded} extracted rows",
        base_avg[0],
        ds.tables[n_docs / 2].narrow(1, 0, 1).mean()
    );
}
