//! Figure 2 (right): average execution time of the multimodal query mix
//! on 1,000 attachment images, CPU vs (simulated) GPU.
//!
//! Workload: 30 queries cycling through the three shapes of Figure 2
//! (similarity filter / filter + aggregate / top-k), executed once per
//! device. The paper measures ~31s CPU vs ~6s GPU (≈5×) on a V100; we
//! reproduce the *shape* (accelerator wins clearly) with thread-parallel
//! kernels standing in for the GPU.
//!
//! Laptop scale: 200 images at 48x72. `TDP_BENCH_FULL=1`: 1,000 images at
//! 100x150.

use std::sync::Arc;

use tdp_bench::{figure, knob, secs, timed};
use tdp_core::storage::TableBuilder;
use tdp_core::tensor::Rng64;
use tdp_core::{Device, QueryConfig, Tdp};
use tdp_data::attachments::generate_attachments;
use tdp_ml::{ClipSim, ImageTextSimilarityUdf};

fn main() {
    let n_images = knob("FIG2_IMAGES", 200, 1000);
    let (h, w) = if tdp_bench::full_scale() {
        (100, 150)
    } else {
        (48, 72)
    };
    let n_queries = knob("FIG2_QUERIES", 30, 30);

    figure(
        "Figure 2 (right): multimodal query latency, CPU vs accelerator",
        "GPU ~6s vs CPU ~31s average over 30 queries on 1000 images (~5x)",
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "host parallelism: {cores} hardware thread(s) — the simulated \
              accelerator can only beat the CPU device when this exceeds 1"
    );
    let mut rng = Rng64::new(2023);
    println!("generating {n_images} attachments at {h}x{w}...");
    let ds = generate_attachments(n_images, h, w, &mut rng);
    let model = ClipSim::pretrained(h, w, 8, 7);

    let queries = [
        "SELECT COUNT(*) FROM Attachments WHERE image_text_similarity('receipt', images) > 0.80",
        "SELECT images FROM Attachments WHERE image_text_similarity('dog', images) > 0.80",
        "SELECT image_text_similarity('KFC Receipt', images) AS score \
         FROM Attachments ORDER BY score DESC LIMIT 2",
        "SELECT COUNT(*) FROM Attachments WHERE image_text_similarity('logo', images) > 0.80",
        "SELECT images FROM Attachments WHERE image_text_similarity('landscape', images) > 0.80",
        "SELECT image_text_similarity('cat', images) AS score \
         FROM Attachments ORDER BY score DESC LIMIT 5",
    ];

    let mut rows = Vec::new();
    for device in [Device::Cpu, Device::accel()] {
        let tdp = Tdp::new();
        tdp.set_default_device(device);
        tdp.register_table(
            TableBuilder::new()
                .col_tensor("images", ds.images.clone())
                .build("Attachments"),
        );
        tdp.register_udf(Arc::new(ImageTextSimilarityUdf::new(model.clone())));

        let (_, total) = timed(|| {
            for i in 0..n_queries {
                let sql = queries[i % queries.len()];
                let q = tdp
                    .query_with(sql, QueryConfig::default().device(device))
                    .expect("compile");
                let _ = q.run().expect("run");
            }
        });
        let avg = total / n_queries as f64;
        rows.push((device, avg));
        println!(
            "device {:<8}  {} queries  total {:>8}  avg {:>8}",
            device.to_string(),
            n_queries,
            secs(total),
            secs(avg)
        );
    }

    let speedup = rows[0].1 / rows[1].1.max(1e-12);
    println!(
        "\nAvg. execution time: CPU {} vs {} {}  ->  {:.1}x speedup",
        secs(rows[0].1),
        rows[1].0,
        secs(rows[1].1),
        speedup
    );
    println!("paper shape: accelerator wins on the embedding-heavy workload (paper: ~5x)");

    // Sanity: the queries actually answer correctly on either device.
    let tdp = Tdp::new();
    tdp.register_table(
        TableBuilder::new()
            .col_tensor("images", ds.images.clone())
            .build("Attachments"),
    );
    tdp.register_udf(Arc::new(ImageTextSimilarityUdf::new(model)));
    let receipts = tdp
        .query(queries[0])
        .unwrap()
        .run()
        .unwrap()
        .column("COUNT(*)")
        .unwrap()
        .data
        .decode_i64()
        .at(0);
    let truth = ds.classes.iter().filter(|c| c.is_receipt()).count() as i64;
    println!("semantic check: receipt filter found {receipts} (ground truth {truth})");
}
