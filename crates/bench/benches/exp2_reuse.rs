//! §5.5 Experiment 2: component reuse / better generalisation.
//!
//! Train the MNISTGrid trainable query (count supervision only — the
//! digit parser never sees a digit label), then pull the digit parser CNN
//! out of the query and evaluate it as a standalone 10-class classifier
//! on held-out single digits.
//!
//! Paper: 98.15% MNIST accuracy on average. At laptop scale (fewer grids
//! and iterations than the paper's 5,000 images / 40,000 iterations) the
//! parser already reaches the high 90s; `TDP_BENCH_FULL=1` pushes the
//! budget up.

use std::sync::Arc;

use tdp_bench::{figure, knob, timed};
use tdp_core::autodiff::Var;
use tdp_core::nn::module::{accuracy, predict};
use tdp_core::nn::{Adam, Optimizer};
use tdp_core::tensor::Rng64;
use tdp_core::{QueryConfig, Tdp};
use tdp_data::digits::generate_digits;
use tdp_data::grid::generate_grids;
use tdp_ml::ParseMnistGridTvf;

const BATCH: usize = 8;

fn main() {
    let n_train = knob("REUSE_TRAIN", 512, 5000);
    let iters = knob("REUSE_ITERS", 1200, 6000);
    let n_eval = knob("REUSE_EVAL", 1000, 5000);

    figure(
        "Exp. 2 (§5.5): reuse of the digit parser trained through the query",
        "98.15% standalone digit accuracy without ever seeing digit labels",
    );
    println!(
        "{n_train} training grids, {iters} iterations (batch {BATCH}), {n_eval} eval digits\n"
    );

    let mut rng = Rng64::new(42);
    let train = generate_grids(n_train, &mut rng);

    let tdp = Tdp::new();
    let tvf = Arc::new(ParseMnistGridTvf::new(&mut rng));
    tdp.register_tvf(tvf.clone());
    let query = tdp
        .query_with(
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");
    let mut opt = Adam::new(query.parameters(), 0.005);

    let (_, train_secs) = timed(|| {
        for i in 0..iters {
            opt.zero_grad();
            let mut acc: Option<Var> = None;
            for b in 0..BATCH {
                let s = &train.samples[(i * BATCH + b) % train.len()];
                tdp.register_tensor("MNIST_Grid", s.image.reshape(&[1, 1, 84, 84]));
                let l = query.run_counts().expect("diff").mse_loss(&s.counts);
                acc = Some(match acc {
                    Some(a) => a.add(&l),
                    None => l,
                });
            }
            let loss = acc.unwrap().div_scalar(BATCH as f32);
            loss.backward();
            opt.step();
            if i % 200 == 0 || i + 1 == iters {
                println!("  iter {i:>5}  train count-mse {:.4}", loss.value().item());
            }
        }
    });

    // Extract the digit parser and evaluate standalone.
    let mut eval_rng = Rng64::new(777);
    let eval = generate_digits(n_eval, &mut eval_rng);
    let digit_logits = predict(&tvf.digit_parser, &eval.images);
    let digit_acc = accuracy(&digit_logits, &eval.digits);
    let size_logits = predict(&tvf.size_parser, &eval.images);
    let size_acc = accuracy(&size_logits, &eval.sizes);

    println!("\ntrained in {train_secs:.0}s through count supervision only");
    println!(
        "digit_parser standalone accuracy: {:.2}% (paper: 98.15%)",
        digit_acc * 100.0
    );
    println!("size_parser  standalone accuracy: {:.2}%", size_acc * 100.0);
}
