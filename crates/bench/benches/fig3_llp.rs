//! Figure 3 (middle): LLP classification error vs bag size, with the
//! label-DP variant (ε = 0.1) and the fully supervised (non-LLP) line.
//!
//! For each bag size the linear classifier of Listing 9 is trained purely
//! from per-bag class counts through the trainable GROUP BY/COUNT query;
//! the DP variant trains from Laplace-noised counts. Errors are measured
//! on instance labels of a held-out split.
//!
//! Paper shape: LLP ≈ non-LLP for small bags, slowly degrading with bag
//! size; LLP-DP catastrophic for tiny bags, best around bag size ~64.

use std::sync::Arc;

use tdp_bench::{figure, knob};
use tdp_core::autodiff::Var;
use tdp_core::nn::{Adam, Module, Optimizer};
use tdp_core::tensor::Rng64;
use tdp_core::{QueryConfig, Tdp};
use tdp_data::income::{
    add_label_dp_noise, generate_income, make_bags, Bag, IncomeDataset, NUM_FEATURES,
};
use tdp_ml::ClassifyIncomesTvf;

fn test_error(tvf: &ClassifyIncomesTvf, data: &IncomeDataset) -> f64 {
    let pred = tvf.predict(&data.features);
    pred.data()
        .iter()
        .zip(data.labels.data())
        .filter(|(p, l)| p != l)
        .count() as f64
        / data.len() as f64
}

fn train_llp(bags: &[Bag], epochs: usize, seed: u64) -> ClassifyIncomesTvf {
    let mut rng = Rng64::new(seed);
    let tvf = Arc::new(ClassifyIncomesTvf::new(NUM_FEATURES, &mut rng));
    let tdp = Tdp::new();
    tdp.register_tvf(tvf.clone());
    let query = tdp
        .query_with(
            "SELECT Income, COUNT(*) FROM classify_incomes(Adult_Income_Bag) GROUP BY Income",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");
    let mut opt = Adam::new(query.parameters(), 0.05);
    // Cycle bags for a bounded number of steps: small bags yield thousands
    // of cheap steps per epoch, large bags only a handful, so a step budget
    // equalises optimisation effort across bag sizes.
    let steps = (epochs * bags.len()).clamp(200, 1500);
    for step in 0..steps {
        let bag = &bags[step % bags.len()];
        opt.zero_grad();
        tdp.register_tensor("Adult_Income_Bag", bag.features.clone());
        let counts = query.run_counts().expect("diff run");
        counts.mse_loss(&bag.counts).backward();
        opt.step();
    }
    drop(tdp);
    Arc::try_unwrap(tvf).ok().expect("sole owner")
}

fn main() {
    let n_train = knob("LLP_TRAIN", 4096, 16384);
    let n_test = knob("LLP_TEST", 4096, 8192);
    let epochs = knob("LLP_EPOCHS", 3, 6);
    let runs = knob("LLP_RUNS", 1, 3);

    figure(
        "Figure 3 (middle): LLP classification error vs bag size",
        "LLP tracks non-LLP for small bags and degrades slowly; LLP-DP (eps=0.1) \
         very poor at tiny bags, optimum near bag size 64",
    );

    let mut rng = Rng64::new(31);
    let full = generate_income(n_train + n_test, 0.1, &mut rng);
    let (train, test) = full.split(n_train);
    println!("{n_train} train / {n_test} test records, {epochs} epochs, {runs} run(s)\n");

    // Non-LLP reference: train on instance labels directly.
    let mut sup_rng = Rng64::new(77);
    let sup = ClassifyIncomesTvf::new(NUM_FEATURES, &mut sup_rng);
    let mut opt = Adam::new(sup.model.parameters(), 0.05);
    for _ in 0..80 {
        opt.zero_grad();
        let logits = sup.model.forward(&Var::constant(train.features.clone()));
        logits.cross_entropy(&train.labels).backward();
        opt.step();
    }
    let non_llp = test_error(&sup, &test);

    println!(
        "{:>8} {:>12} {:>14} {:>12}",
        "bag_size", "LLP", "LLP-DP(e=0.1)", "non-LLP"
    );
    let bag_sizes = [1usize, 8, 16, 32, 64, 128, 256, 512];
    for &bag_size in &bag_sizes {
        let mut err_sum = 0.0;
        let mut dp_sum = 0.0;
        for run in 0..runs {
            let mut bag_rng = Rng64::new((bag_size * 1000 + run) as u64);
            let bags = make_bags(&train, bag_size, &mut bag_rng);
            let tvf = train_llp(&bags, epochs, 10_000 + bag_size as u64 + run as u64);
            err_sum += test_error(&tvf, &test);

            let mut noisy = bags.clone();
            add_label_dp_noise(&mut noisy, 0.1, &mut bag_rng);
            let tvf_dp = train_llp(&noisy, epochs, 20_000 + bag_size as u64 + run as u64);
            dp_sum += test_error(&tvf_dp, &test);
        }
        println!(
            "{bag_size:>8} {:>12.3} {:>14.3} {:>12.3}",
            err_sum / runs as f64,
            dp_sum / runs as f64,
            non_llp
        );
    }
    println!("\nseries above regenerate the three lines of Fig. 3 (middle)");
}
