//! Figure 3 (right): MNISTGrid training — TDP neurosymbolic query vs
//! pure deep learning (CNN-Small, ResNet-18).
//!
//! All three approaches regress the 20 grouped (digit, size) counts of a
//! grid image and are trained with MSE on mini-batches of grids; the TDP
//! approach decomposes the problem through the trainable query (parser
//! CNNs + differentiable GROUP BY/COUNT), the baselines map pixels to
//! counts monolithically. We report test MSE vs iteration.
//!
//! Paper shape: the neurosymbolic query converges to near-zero error while
//! both baselines drop to the predict-the-mean plateau (test MSE ~0.39,
//! the variance of the count labels) and stay there. The query needs
//! roughly 15 epochs over its grids before count-fitting disentangles the
//! digit classes, so its curve starts *above* the baselines' plateau and
//! then crosses far below it — the crossover is the figure's story. (The
//! paper runs 40,000 iterations on a V100; scale with `TDP_BENCH_FULL=1` /
//! `TDP_GRID_ITERS=...` as budget allows.)

use std::sync::Arc;

use tdp_bench::{figure, knob, timed};
use tdp_core::autodiff::Var;
use tdp_core::nn::{Adam, Module, Optimizer};
use tdp_core::tensor::{F32Tensor, Rng64, Tensor};
use tdp_core::{QueryConfig, Tdp};
use tdp_data::grid::{generate_grids, GridDataset};
use tdp_ml::{CnnSmall, ParseMnistGridTvf, ResNet18};

const BATCH: usize = 8;

fn grid_batch(ds: &GridDataset, start: usize) -> (F32Tensor, F32Tensor) {
    let imgs: Vec<F32Tensor> = (0..BATCH)
        .map(|b| {
            ds.samples[(start + b) % ds.len()]
                .image
                .reshape(&[1, 1, 84, 84])
        })
        .collect();
    let refs: Vec<&F32Tensor> = imgs.iter().collect();
    let images = tdp_core::tensor::index::concat_rows(&refs);
    let counts: Vec<f32> = (0..BATCH)
        .flat_map(|b| ds.samples[(start + b) % ds.len()].counts.to_vec())
        .collect();
    (images, Tensor::from_vec(counts, &[BATCH, 20]))
}

/// Test MSE of a monolithic regressor.
fn test_mse_model(model: &dyn Module, test: &GridDataset) -> f64 {
    let mut total = 0.0;
    for s in &test.samples {
        let pred = model
            .forward(&Var::constant(s.image.reshape(&[1, 1, 84, 84])))
            .value()
            .reshape(&[20]);
        total += pred.sub(&s.counts).powf_scalar(2.0).mean();
    }
    total / test.len() as f64
}

fn main() {
    let iters_tdp = knob("GRID_ITERS", 1000, 5000);
    let iters_cnn = knob("GRID_ITERS_CNN", 150, 4000);
    let iters_resnet = knob("GRID_ITERS_RESNET", 30, 1000);
    let eval_every = knob("GRID_EVAL_EVERY", 100, 250);
    let n_train = knob("GRID_TRAIN", 384, 5000);
    let n_test = knob("GRID_TEST", 16, 100);

    figure(
        "Figure 3 (right): MNISTGrid training, TDP query vs deep learning",
        "TDP neurosymbolic query -> near-zero test MSE quickly; CNN-Small and \
         ResNet-18 asymptote much higher",
    );
    println!(
        "train {n_train} grids / test {n_test}; iterations: TDP {iters_tdp}, \
         CNN-Small {iters_cnn}, ResNet-18 {iters_resnet} (batch {BATCH})\n"
    );

    let mut rng = Rng64::new(42);
    let train = generate_grids(n_train, &mut rng);
    let test = generate_grids(n_test, &mut rng);

    // -------------------- TDP neurosymbolic query --------------------
    println!("[TDP neurosymbolic query]");
    let tdp = Tdp::new();
    tdp.register_tvf(Arc::new(ParseMnistGridTvf::new(&mut rng)));
    let query = tdp
        .query_with(
            "SELECT Digit, Size, COUNT(*) FROM parse_mnist_grid(MNIST_Grid) GROUP BY Digit, Size",
            QueryConfig::default().trainable(true),
        )
        .expect("compile");
    let mut opt = Adam::new(query.parameters(), 0.005);
    let mut tdp_series = Vec::new();
    let (_, tdp_secs) = timed(|| {
        for i in 0..iters_tdp {
            opt.zero_grad();
            let mut acc: Option<Var> = None;
            for b in 0..BATCH {
                let s = &train.samples[(i * BATCH + b) % train.len()];
                tdp.register_tensor("MNIST_Grid", s.image.reshape(&[1, 1, 84, 84]));
                let l = query.run_counts().expect("diff").mse_loss(&s.counts);
                acc = Some(match acc {
                    Some(a) => a.add(&l),
                    None => l,
                });
            }
            acc.unwrap().div_scalar(BATCH as f32).backward();
            opt.step();
            if i % eval_every == 0 || i + 1 == iters_tdp {
                // Test MSE of the query's soft counts.
                let mut total = 0.0;
                for s in &test.samples {
                    tdp.register_tensor("MNIST_Grid", s.image.reshape(&[1, 1, 84, 84]));
                    let pred = query.run_counts().expect("diff").value();
                    total += pred.sub(&s.counts).powf_scalar(2.0).mean();
                }
                let mse = total / test.len() as f64;
                tdp_series.push((i, mse));
                println!("  iter {i:>5}  test mse {mse:.4}");
            }
        }
    });

    // -------------------- CNN-Small --------------------
    println!(
        "\n[CNN-Small, {} params]",
        CnnSmall::new(20, &mut rng).num_parameters()
    );
    let cnn = CnnSmall::new(20, &mut rng);
    let mut opt = Adam::new(cnn.parameters(), 0.001);
    let mut cnn_series = Vec::new();
    let (_, cnn_secs) = timed(|| {
        for i in 0..iters_cnn {
            opt.zero_grad();
            let (images, counts) = grid_batch(&train, i * BATCH);
            let pred = cnn.forward(&Var::constant(images));
            pred.mse_loss(&counts).backward();
            opt.step();
            if i % eval_every == 0 || i + 1 == iters_cnn {
                let mse = test_mse_model(&cnn, &test);
                cnn_series.push((i, mse));
                println!("  iter {i:>5}  test mse {mse:.4}");
            }
        }
    });

    // -------------------- ResNet-18 --------------------
    println!(
        "\n[ResNet-18, {} params]",
        ResNet18::new(20, &mut rng).num_parameters()
    );
    let resnet = ResNet18::new(20, &mut rng);
    let mut opt = Adam::new(resnet.parameters(), 0.0005);
    let mut res_series = Vec::new();
    let (_, res_secs) = timed(|| {
        for i in 0..iters_resnet {
            opt.zero_grad();
            let (images, counts) = grid_batch(&train, i * BATCH);
            let pred = resnet.forward(&Var::constant(images));
            pred.mse_loss(&counts).backward();
            tdp_core::nn::optim::clip_grad_norm(&resnet.parameters(), 5.0);
            opt.step();
            if i % (eval_every / 2).max(1) == 0 || i + 1 == iters_resnet {
                let mse = test_mse_model(&resnet, &test);
                res_series.push((i, mse));
                println!("  iter {i:>5}  test mse {mse:.4}");
            }
        }
    });

    // -------------------- Series summary --------------------
    println!("\nseries (iteration, avg MSE on test set):");
    println!("  TDP Neurosymbolic Query: {tdp_series:?}");
    println!("  CNN-Small              : {cnn_series:?}");
    println!("  Resnet-18              : {res_series:?}");
    let tdp_final = tdp_series.last().unwrap().1;
    let cnn_final = cnn_series.last().unwrap().1;
    let res_final = res_series.last().unwrap().1;
    println!(
        "\nfinal test MSE — TDP {tdp_final:.4} vs CNN-Small {cnn_final:.4} vs ResNet-18 {res_final:.4}"
    );
    println!(
        "wall-clock — TDP {:.0}s, CNN-Small {:.0}s, ResNet-18 {:.0}s",
        tdp_secs, cnn_secs, res_secs
    );
    println!("paper shape holds iff TDP's final MSE is clearly the lowest.");
}
