//! Shared harness utilities for the figure-regeneration benches.
//!
//! Every `[[bench]]` target with `harness = false` in this crate is one
//! figure of the paper; running `cargo bench` regenerates them all and
//! prints the same rows/series the paper reports. Scales default to a
//! laptop-friendly budget; set `TDP_BENCH_FULL=1` for paper-scale runs
//! (documented per bench in `EXPERIMENTS.md`).

use std::time::Instant;

/// Whether paper-scale mode is requested.
pub fn full_scale() -> bool {
    std::env::var("TDP_BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Integer knob with laptop/full defaults and an env override
/// (`TDP_<NAME>`).
pub fn knob(name: &str, laptop: usize, full: usize) -> usize {
    if let Ok(v) = std::env::var(format!("TDP_{name}")) {
        if let Ok(n) = v.parse() {
            return n;
        }
    }
    if full_scale() {
        full
    } else {
        laptop
    }
}

/// Run a closure and return (result, seconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Print a figure banner.
pub fn figure(title: &str, paper: &str) {
    println!("\n==========================================================");
    println!("{title}");
    println!("paper reports: {paper}");
    println!("==========================================================");
}

/// Format seconds for table output.
pub fn secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}
