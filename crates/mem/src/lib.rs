//! Per-query memory accounting: an engine-owned pool of budgeted bytes
//! and the per-query ledgers that charge against it.
//!
//! ## Ledger model
//!
//! One process-wide [`MemoryPool`] lives on the engine. Its budget is
//! the `TDP_MEM_BUDGET` environment variable (plain bytes, or with a
//! `k`/`m`/`g` suffix); unset means unlimited. Every query run gets its
//! own [`MemoryReservation`] — a ledger tied back to the pool — and the
//! executor charges that ledger wherever it materialises data whose
//! size is proportional to the input rather than the output:
//!
//! - batch materialization in the morsel scheduler (decoded partition
//!   columns and per-morsel result slots),
//! - exchange partition buckets (row-id vectors),
//! - join build-side hash tables (`JoinTable`),
//! - sort runs (permutation plus decoded key columns),
//! - DISTINCT key codes and per-partition dedup sets.
//!
//! Charges follow RAII: the executor wraps each charge in a guard that
//! shrinks the ledger when the operator's intermediate state drops, and
//! dropping the reservation itself returns any remainder to the pool.
//! Sizes are estimates of the dominant allocations (vector payloads,
//! hash-table entries), not a malloc shim — the point is that a query
//! whose intermediates are proportional to a huge input gets stopped
//! before it takes the process down, with bookkeeping cheap enough to
//! leave on unconditionally.
//!
//! ## Abort semantics (and the future spill seam)
//!
//! [`MemoryReservation::try_grow`] either succeeds or reports failure;
//! it never blocks and never kills anything itself. The executor turns
//! a failed grow into a typed `ExecError::MemoryBudget` naming the
//! operator that breached, which aborts *only* that query — concurrent
//! in-budget queries keep their reservations and complete unchanged.
//! A failed grow leaves the ledger exactly as it was, so when a
//! spill-to-disk path lands it can catch the same failure, spill the
//! operator's state, `shrink` the ledger, and retry the grow instead of
//! aborting: the reservation API is deliberately the whole seam.
//!
//! The pool additionally tracks a high-water mark and a count of
//! budget-aborted reservations for `EngineStats` / server `STATS`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide byte budget shared by every query's ledger.
///
/// `used` is the sum of all live reservations; `try_charge` admits a
/// grow only while `used + bytes` stays within the budget (when one is
/// set). All accounting is atomic — the pool is shared freely across
/// sessions and worker threads.
#[derive(Debug)]
pub struct MemoryPool {
    budget: Option<u64>,
    used: AtomicU64,
    high_water: AtomicU64,
    budget_aborts: AtomicU64,
}

impl MemoryPool {
    /// Pool with a hard byte budget.
    pub fn with_budget(budget: u64) -> MemoryPool {
        MemoryPool {
            budget: Some(budget),
            used: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            budget_aborts: AtomicU64::new(0),
        }
    }

    /// Pool that accounts usage but never refuses a charge.
    pub fn unlimited() -> MemoryPool {
        MemoryPool {
            budget: None,
            used: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            budget_aborts: AtomicU64::new(0),
        }
    }

    /// Pool configured from the `TDP_MEM_BUDGET` environment variable
    /// (bytes, optionally suffixed `k`/`m`/`g`); unset or unparsable
    /// means unlimited.
    pub fn from_env() -> MemoryPool {
        match std::env::var("TDP_MEM_BUDGET")
            .ok()
            .and_then(|s| parse_bytes(&s))
        {
            Some(b) => MemoryPool::with_budget(b),
            None => MemoryPool::unlimited(),
        }
    }

    /// Configured budget in bytes; `None` when unlimited.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Bytes currently reserved across all live ledgers.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Largest `used` value ever observed.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Relaxed)
    }

    /// Number of reservations that hit the budget (each counted once,
    /// on its first refused grow).
    pub fn budget_aborts(&self) -> u64 {
        self.budget_aborts.load(Ordering::Relaxed)
    }

    /// Open a fresh per-query ledger against this pool.
    pub fn reserve(self: &Arc<Self>) -> MemoryReservation {
        MemoryReservation {
            pool: Arc::clone(self),
            size: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            charged_total: AtomicU64::new(0),
            aborted: AtomicBool::new(false),
        }
    }

    /// Open a ledger pre-charged with an admission envelope of `bytes`,
    /// or `None` when the budget cannot cover it right now. Unlike
    /// [`MemoryReservation::try_grow`], a refusal is **not** counted as
    /// a budget abort: no query ran out of memory — the caller (server
    /// admission control) is deciding whether to start one, and tracks
    /// its rejections separately.
    pub fn try_reserve(self: &Arc<Self>, bytes: u64) -> Option<MemoryReservation> {
        if !self.try_charge(bytes) {
            return None;
        }
        let r = self.reserve();
        r.size.store(bytes, Ordering::Relaxed);
        r.peak.store(bytes, Ordering::Relaxed);
        r.charged_total.store(bytes, Ordering::Relaxed);
        Some(r)
    }

    /// Charge `bytes` against the pool, reporting whether the budget
    /// admits it. Optimistic: the add happens first and is rolled back
    /// on refusal, so concurrent charges never under-count.
    fn try_charge(&self, bytes: u64) -> bool {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if let Some(budget) = self.budget {
            if now > budget {
                self.used.fetch_sub(bytes, Ordering::Relaxed);
                return false;
            }
        }
        self.high_water.fetch_max(now, Ordering::Relaxed);
        true
    }

    fn release(&self, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }

    fn note_budget_abort(&self) {
        self.budget_aborts.fetch_add(1, Ordering::Relaxed);
    }
}

/// One query's memory ledger against a [`MemoryPool`].
///
/// Grows and shrinks are atomic, so the morsel scheduler's worker
/// threads can all charge the same reservation. Dropping the
/// reservation returns whatever is still charged to the pool.
#[derive(Debug)]
pub struct MemoryReservation {
    pool: Arc<MemoryPool>,
    size: AtomicU64,
    peak: AtomicU64,
    charged_total: AtomicU64,
    aborted: AtomicBool,
}

impl MemoryReservation {
    /// Stand-alone ledger against a private unlimited pool, for
    /// contexts built without an engine (tests, direct executor use).
    pub fn detached() -> MemoryReservation {
        Arc::new(MemoryPool::unlimited()).reserve()
    }

    /// Charge `bytes` more against the pool. On refusal the ledger is
    /// left unchanged (the seam where a spill path would shrink and
    /// retry instead of aborting) and the pool's abort counter is
    /// bumped — once per reservation, however many workers race here.
    #[must_use]
    pub fn try_grow(&self, bytes: u64) -> bool {
        if !self.pool.try_charge(bytes) {
            if !self.aborted.swap(true, Ordering::Relaxed) {
                self.pool.note_budget_abort();
            }
            return false;
        }
        let now = self.size.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(now, Ordering::Relaxed);
        self.charged_total.fetch_add(bytes, Ordering::Relaxed);
        true
    }

    /// Return `bytes` of this ledger to the pool.
    pub fn shrink(&self, bytes: u64) {
        let bytes = bytes.min(self.size.load(Ordering::Relaxed));
        self.size.fetch_sub(bytes, Ordering::Relaxed);
        self.pool.release(bytes);
    }

    /// Bytes currently charged to this ledger.
    pub fn size(&self) -> u64 {
        self.size.load(Ordering::Relaxed)
    }

    /// Largest `size` this ledger ever reached.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes of every successful grow (never decremented):
    /// interval deltas give per-operator charged bytes in profiles.
    pub fn charged_total(&self) -> u64 {
        self.charged_total.load(Ordering::Relaxed)
    }

    /// Whether any grow on this ledger was refused.
    pub fn aborted(&self) -> bool {
        self.aborted.load(Ordering::Relaxed)
    }

    /// The pool this ledger charges against.
    pub fn pool(&self) -> &Arc<MemoryPool> {
        &self.pool
    }
}

impl Drop for MemoryReservation {
    fn drop(&mut self) {
        let rest = self.size.load(Ordering::Relaxed);
        if rest > 0 {
            self.pool.release(rest);
        }
    }
}

/// Parse a byte count: plain digits, optionally suffixed with `k`, `m`
/// or `g` (case-insensitive, powers of 1024).
pub fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (digits, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        'g' | 'G' => (&s[..s.len() - 1], 1u64 << 30),
        _ => (s, 1),
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .map(|n| n.saturating_mul(mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemoryPool>();
        assert_send_sync::<MemoryReservation>();
    }

    #[test]
    fn grow_shrink_round_trip() {
        let pool = Arc::new(MemoryPool::with_budget(1000));
        let r = pool.reserve();
        assert!(r.try_grow(400));
        assert!(r.try_grow(300));
        assert_eq!(r.size(), 700);
        assert_eq!(pool.used(), 700);
        r.shrink(500);
        assert_eq!(r.size(), 200);
        assert_eq!(pool.used(), 200);
        assert_eq!(r.peak(), 700);
        assert_eq!(pool.high_water(), 700);
        drop(r);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn refusal_leaves_ledger_unchanged_and_counts_once() {
        let pool = Arc::new(MemoryPool::with_budget(100));
        let r = pool.reserve();
        assert!(r.try_grow(80));
        assert!(!r.try_grow(50));
        assert!(!r.try_grow(50), "second refusal");
        assert_eq!(r.size(), 80, "failed grow must not change the ledger");
        assert_eq!(pool.used(), 80);
        assert!(r.aborted());
        assert_eq!(pool.budget_aborts(), 1, "one abort per reservation");
    }

    #[test]
    fn sibling_reservation_unaffected_by_abort() {
        let pool = Arc::new(MemoryPool::with_budget(100));
        let small = pool.reserve();
        let big = pool.reserve();
        assert!(small.try_grow(10));
        assert!(!big.try_grow(1000));
        assert!(small.try_grow(10), "sibling keeps growing after abort");
        drop(big);
        assert_eq!(pool.used(), 20);
    }

    #[test]
    fn try_reserve_envelope_is_quiet_and_releases_on_drop() {
        let pool = Arc::new(MemoryPool::with_budget(100));
        let a = pool.try_reserve(60).expect("fits");
        assert_eq!(a.size(), 60);
        assert!(pool.try_reserve(60).is_none(), "would overrun");
        assert_eq!(pool.budget_aborts(), 0, "admission refusal is not an abort");
        drop(a);
        assert_eq!(pool.used(), 0);
        assert!(pool.try_reserve(60).is_some(), "envelope returned");
    }

    #[test]
    fn unlimited_pool_never_refuses() {
        let pool = Arc::new(MemoryPool::unlimited());
        let r = pool.reserve();
        assert!(r.try_grow(u64::MAX / 4));
        assert_eq!(pool.budget(), None);
        assert_eq!(pool.budget_aborts(), 0);
    }

    #[test]
    fn shrink_clamps_to_size() {
        let pool = Arc::new(MemoryPool::with_budget(1000));
        let r = pool.reserve();
        assert!(r.try_grow(100));
        r.shrink(500);
        assert_eq!(r.size(), 0);
        assert_eq!(pool.used(), 0);
    }

    #[test]
    fn parse_bytes_suffixes() {
        assert_eq!(parse_bytes("1024"), Some(1024));
        assert_eq!(parse_bytes("4k"), Some(4096));
        assert_eq!(parse_bytes("2M"), Some(2 << 20));
        assert_eq!(parse_bytes("1g"), Some(1 << 30));
        assert_eq!(parse_bytes(" 8 m "), Some(8 << 20));
        assert_eq!(parse_bytes("nope"), None);
        assert_eq!(parse_bytes(""), None);
    }

    #[test]
    fn concurrent_charges_balance() {
        let pool = Arc::new(MemoryPool::unlimited());
        let r = Arc::new(pool.reserve());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..1000 {
                        assert!(r.try_grow(64));
                        r.shrink(64);
                    }
                });
            }
        });
        assert_eq!(r.size(), 0);
        assert_eq!(pool.used(), 0);
        assert!(pool.high_water() >= 64);
    }
}
