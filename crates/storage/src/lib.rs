//! # tdp-storage
//!
//! Columnar tensor storage (paper §2, "Storage Model"): a table is a set of
//! named encoded-tensor columns sharing a row count. Because a column is
//! just a tensor, tabular data (1-d columns), vector data (2-d), and image
//! data (3-d/4-d) live side by side in one table and can be queried by one
//! engine — the property that makes mixed scalar-vector queries natural.
//!
//! The [`Catalog`] is the session-level namespace; registration APIs play
//! the role of `tdp.sql.register_df` / `register_tensor` in the paper
//! (Listing 1), converting and encoding inputs and placing them on the
//! requested device.

pub mod catalog;
pub mod csv;
pub mod format;
pub mod table;
pub mod vindex;
pub mod zonemap;

pub use catalog::Catalog;
pub use format::{load_table, save_table, FormatError};
pub use table::{Column, Table, TableBuilder, TableStats};
pub use vindex::{VectorIndex, VectorIndexEntry};
pub use zonemap::{ChunkStat, ColumnZoneMap, TableZoneMaps, ZONE_MAP_CHUNK_ROWS};
