//! Catalog-resident vector index registry.
//!
//! ANN indexes live *in the catalog*, next to the tables they index, so
//! invalidation rides the existing catalog-version machinery: any write
//! to a table (re-registration or drop) removes that table's index
//! entries, and queries planned against a now-stale index fall back to
//! the exact flat path at execution time.

use tdp_index::{FlatIndex, Hit, IvfFlatIndex, Metric};
use tdp_tensor::F32Tensor;

/// A built index over one embedding column.
#[derive(Debug, Clone)]
pub enum VectorIndex {
    /// Exact brute-force index (one kernel pass per query).
    Flat(FlatIndex),
    /// IVF-Flat approximate index with its declared probe width.
    Ivf {
        index: IvfFlatIndex,
        nlist: usize,
        nprobe: usize,
    },
}

/// One registry entry: a named index on `table.column` under `metric`.
#[derive(Debug, Clone)]
pub struct VectorIndexEntry {
    pub name: String,
    pub table: String,
    pub column: String,
    pub metric: Metric,
    /// Row count of the table at build time (staleness check).
    pub rows: usize,
    pub index: VectorIndex,
}

impl VectorIndexEntry {
    /// Top-k search through the built index. For IVF the registered
    /// `nprobe` applies; flat search is exact.
    pub fn search(&self, query: &F32Tensor, k: usize) -> Vec<Hit> {
        match &self.index {
            VectorIndex::Flat(f) => f.search(query, k),
            VectorIndex::Ivf { index, nprobe, .. } => index.search(query, k, *nprobe),
        }
    }

    /// Access-path description for EXPLAIN (`flat exact` or
    /// `ivf nlist=.. nprobe=..`).
    pub fn describe(&self) -> String {
        match &self.index {
            VectorIndex::Flat(_) => "flat exact".to_owned(),
            VectorIndex::Ivf { nlist, nprobe, .. } => {
                format!("ivf nlist={nlist} nprobe={nprobe}")
            }
        }
    }
}
