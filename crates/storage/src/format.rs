//! TDPF — the native binary columnar table format.
//!
//! The paper's Listing 1 registers Pandas dataframes, NumPy/Arrow arrays
//! and Parquet files into TDP. TDPF is our on-disk equivalent of that
//! last case: a self-describing columnar file that preserves each
//! column's *encoding* (plain, dictionary, RLE, bit-packed, delta,
//! probability), so a compressed table loads back compressed.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "TDPF" u8×4 | version u16 | name (u32 len + utf8)
//! n_rows u64 | n_cols u32
//! per column: name (u32 len + utf8) | tag u8 | payload (per encoding)
//! ```
//!
//! The reader validates magic, version, tags and lengths and reports
//! [`FormatError::Corrupt`] with a description rather than panicking.

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;

use tdp_encoding::{BitPackedColumn, DeltaColumn, EncodedTensor, PeTensor, RleColumn};
use tdp_tensor::{F32Tensor, Tensor};

use crate::table::{Column, Table};

const MAGIC: [u8; 4] = *b"TDPF";
const VERSION: u16 = 1;

/// Reading/writing failures.
#[derive(Debug)]
pub enum FormatError {
    Io(io::Error),
    /// Structural problem in the byte stream; the message says what.
    Corrupt(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Io(e) => write!(f, "tdpf io error: {e}"),
            FormatError::Corrupt(m) => write!(f, "tdpf corrupt file: {m}"),
        }
    }
}

impl std::error::Error for FormatError {}

impl From<io::Error> for FormatError {
    fn from(e: io::Error) -> FormatError {
        FormatError::Io(e)
    }
}

fn corrupt(msg: impl Into<String>) -> FormatError {
    FormatError::Corrupt(msg.into())
}

// ----------------------------------------------------------------------
// Primitive readers/writers
// ----------------------------------------------------------------------

fn write_u16(w: &mut impl Write, v: u16) -> Result<(), FormatError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn write_u32(w: &mut impl Write, v: u32) -> Result<(), FormatError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<(), FormatError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn write_i64(w: &mut impl Write, v: i64) -> Result<(), FormatError> {
    Ok(w.write_all(&v.to_le_bytes())?)
}

fn write_str(w: &mut impl Write, s: &str) -> Result<(), FormatError> {
    write_u32(w, s.len() as u32)?;
    Ok(w.write_all(s.as_bytes())?)
}

fn read_exact<const N: usize>(r: &mut impl Read) -> Result<[u8; N], FormatError> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn read_u16(r: &mut impl Read) -> Result<u16, FormatError> {
    Ok(u16::from_le_bytes(read_exact::<2>(r)?))
}

fn read_u32(r: &mut impl Read) -> Result<u32, FormatError> {
    Ok(u32::from_le_bytes(read_exact::<4>(r)?))
}

fn read_u64(r: &mut impl Read) -> Result<u64, FormatError> {
    Ok(u64::from_le_bytes(read_exact::<8>(r)?))
}

fn read_i64(r: &mut impl Read) -> Result<i64, FormatError> {
    Ok(i64::from_le_bytes(read_exact::<8>(r)?))
}

/// Cap for length prefixes: guards against allocating petabytes on a
/// corrupt or malicious length field.
const MAX_LEN: u64 = 1 << 33;

fn checked_len(v: u64, what: &str) -> Result<usize, FormatError> {
    if v > MAX_LEN {
        return Err(corrupt(format!("{what} length {v} is implausible")));
    }
    Ok(v as usize)
}

fn read_str(r: &mut impl Read) -> Result<String, FormatError> {
    let len = checked_len(read_u32(r)? as u64, "string")?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("non-utf8 string"))
}

fn write_f32_slice(w: &mut impl Write, data: &[f32]) -> Result<(), FormatError> {
    for v in data {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32_vec(r: &mut impl Read, n: usize) -> Result<Vec<f32>, FormatError> {
    let mut buf = vec![0u8; n * 4];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn read_i64_vec(r: &mut impl Read, n: usize) -> Result<Vec<i64>, FormatError> {
    let mut buf = vec![0u8; n * 8];
    r.read_exact(&mut buf)?;
    Ok(buf
        .chunks_exact(8)
        .map(|c| i64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

// ----------------------------------------------------------------------
// Tensors and columns
// ----------------------------------------------------------------------

fn write_f32_tensor(w: &mut impl Write, t: &F32Tensor) -> Result<(), FormatError> {
    write_u32(w, t.ndim() as u32)?;
    for &d in t.shape() {
        write_u64(w, d as u64)?;
    }
    write_f32_slice(w, t.data())
}

fn read_f32_tensor(r: &mut impl Read) -> Result<F32Tensor, FormatError> {
    let ndim = read_u32(r)? as usize;
    if ndim > 8 {
        return Err(corrupt(format!("tensor rank {ndim} is implausible")));
    }
    let mut dims = Vec::with_capacity(ndim);
    let mut numel: u64 = 1;
    for _ in 0..ndim {
        let d = read_u64(r)?;
        numel = numel.saturating_mul(d.max(1));
        dims.push(checked_len(d, "dimension")?);
    }
    let n = checked_len(numel.min(dims.iter().product::<usize>() as u64), "tensor")?;
    Ok(Tensor::from_vec(read_f32_vec(r, n)?, &dims))
}

fn write_i64_column(w: &mut impl Write, data: &[i64]) -> Result<(), FormatError> {
    write_u64(w, data.len() as u64)?;
    for &v in data {
        write_i64(w, v)?;
    }
    Ok(())
}

fn read_i64_column(r: &mut impl Read) -> Result<Vec<i64>, FormatError> {
    let n = checked_len(read_u64(r)?, "i64 column")?;
    read_i64_vec(r, n)
}

fn write_bitpacked(w: &mut impl Write, b: &BitPackedColumn) -> Result<(), FormatError> {
    let (min, width, words, len) = b.parts();
    write_i64(w, min)?;
    write_u32(w, width)?;
    write_u64(w, len as u64)?;
    write_u64(w, words.len() as u64)?;
    for &word in words {
        write_u64(w, word)?;
    }
    Ok(())
}

fn read_bitpacked(r: &mut impl Read) -> Result<BitPackedColumn, FormatError> {
    let min = read_i64(r)?;
    let width = read_u32(r)?;
    if width > 64 {
        return Err(corrupt(format!("bit width {width} exceeds 64")));
    }
    let len = checked_len(read_u64(r)?, "bitpacked column")?;
    let n_words = checked_len(read_u64(r)?, "bitpacked words")?;
    if n_words < (len * width as usize).div_ceil(64) {
        return Err(corrupt(
            "bitpacked word buffer shorter than declared length",
        ));
    }
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(read_u64(r)?);
    }
    Ok(BitPackedColumn::from_parts(min, width, words, len))
}

const TAG_F32: u8 = 0;
const TAG_I64: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_DICT: u8 = 3;
const TAG_RLE: u8 = 4;
const TAG_PE: u8 = 5;
const TAG_BITPACK: u8 = 6;
const TAG_DELTA: u8 = 7;

fn write_encoded(w: &mut impl Write, col: &EncodedTensor) -> Result<(), FormatError> {
    match col {
        EncodedTensor::F32(t) => {
            w.write_all(&[TAG_F32])?;
            write_f32_tensor(w, t)
        }
        EncodedTensor::I64(t) => {
            w.write_all(&[TAG_I64])?;
            write_i64_column(w, t.data())
        }
        EncodedTensor::Bool(t) => {
            w.write_all(&[TAG_BOOL])?;
            write_u64(w, t.numel() as u64)?;
            let bytes: Vec<u8> = t.data().iter().map(|&b| b as u8).collect();
            Ok(w.write_all(&bytes)?)
        }
        EncodedTensor::Dict { codes, dict } => {
            w.write_all(&[TAG_DICT])?;
            write_i64_column(w, codes.data())?;
            write_u32(w, dict.len() as u32)?;
            for v in dict.values() {
                write_str(w, v)?;
            }
            Ok(())
        }
        EncodedTensor::Rle(rle) => {
            w.write_all(&[TAG_RLE])?;
            write_u64(w, rle.run_values().len() as u64)?;
            for (&v, &run) in rle.run_values().iter().zip(rle.run_lengths()) {
                write_i64(w, v)?;
                write_u32(w, run)?;
            }
            Ok(())
        }
        EncodedTensor::Pe(pe) => {
            w.write_all(&[TAG_PE])?;
            write_f32_tensor(w, pe.probs())?;
            write_f32_tensor(w, pe.class_values())
        }
        EncodedTensor::BitPacked(b) => {
            w.write_all(&[TAG_BITPACK])?;
            write_bitpacked(w, b)
        }
        EncodedTensor::Delta(d) => {
            w.write_all(&[TAG_DELTA])?;
            let (first, deltas, len) = d.parts();
            write_i64(w, first)?;
            write_u64(w, len as u64)?;
            write_bitpacked(w, deltas)
        }
    }
}

fn read_encoded(r: &mut impl Read) -> Result<EncodedTensor, FormatError> {
    let tag = read_exact::<1>(r)?[0];
    Ok(match tag {
        TAG_F32 => EncodedTensor::F32(read_f32_tensor(r)?),
        TAG_I64 => {
            let data = read_i64_column(r)?;
            let n = data.len();
            EncodedTensor::I64(Tensor::from_vec(data, &[n]))
        }
        TAG_BOOL => {
            let n = checked_len(read_u64(r)?, "bool column")?;
            let mut buf = vec![0u8; n];
            r.read_exact(&mut buf)?;
            if buf.iter().any(|&b| b > 1) {
                return Err(corrupt("bool byte outside {0, 1}"));
            }
            EncodedTensor::Bool(Tensor::from_vec(
                buf.iter().map(|&b| b == 1).collect(),
                &[n],
            ))
        }
        TAG_DICT => {
            let codes = read_i64_column(r)?;
            let dict_len = read_u32(r)? as i64;
            let mut values = Vec::with_capacity(dict_len as usize);
            for _ in 0..dict_len {
                values.push(read_str(r)?);
            }
            if let Some(&bad) = codes.iter().find(|&&c| c < 0 || c >= dict_len) {
                return Err(corrupt(format!(
                    "dictionary code {bad} outside [0, {dict_len})"
                )));
            }
            if values.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("dictionary values not strictly sorted"));
            }
            // Decode + re-encode keeps StringDict's internal invariants
            // without exposing an unchecked constructor.
            let strings: Vec<&str> = codes.iter().map(|&c| values[c as usize].as_str()).collect();
            EncodedTensor::from_strings(&strings)
        }
        TAG_RLE => {
            let runs = checked_len(read_u64(r)?, "rle runs")?;
            let mut values = Vec::with_capacity(runs);
            let mut lengths = Vec::with_capacity(runs);
            for _ in 0..runs {
                values.push(read_i64(r)?);
                lengths.push(read_u32(r)?);
            }
            if lengths.contains(&0) {
                return Err(corrupt("zero-length RLE run"));
            }
            EncodedTensor::Rle(RleColumn::from_parts(values, lengths))
        }
        TAG_PE => {
            let probs = read_f32_tensor(r)?;
            let class_values = read_f32_tensor(r)?;
            if probs.ndim() != 2 || class_values.ndim() != 1 {
                return Err(corrupt("PE payload has wrong rank"));
            }
            if probs.shape()[1] != class_values.numel() {
                return Err(corrupt("PE class count mismatch"));
            }
            EncodedTensor::Pe(PeTensor::new(probs, class_values))
        }
        TAG_BITPACK => EncodedTensor::BitPacked(read_bitpacked(r)?),
        TAG_DELTA => {
            let first = read_i64(r)?;
            let len = checked_len(read_u64(r)?, "delta column")?;
            let deltas = read_bitpacked(r)?;
            if deltas.len() != len.saturating_sub(1) {
                return Err(corrupt("delta payload length mismatch"));
            }
            EncodedTensor::Delta(DeltaColumn::from_parts(first, deltas, len))
        }
        other => return Err(corrupt(format!("unknown encoding tag {other}"))),
    })
}

// ----------------------------------------------------------------------
// Tables
// ----------------------------------------------------------------------

/// Serialize a table into a writer.
pub fn write_table(w: &mut impl Write, table: &Table) -> Result<(), FormatError> {
    w.write_all(&MAGIC)?;
    write_u16(w, VERSION)?;
    write_str(w, table.name())?;
    write_u64(w, table.rows() as u64)?;
    write_u32(w, table.columns().len() as u32)?;
    for col in table.columns() {
        write_str(w, &col.name)?;
        write_encoded(w, &col.data)?;
    }
    Ok(())
}

/// Deserialize a table from a reader.
pub fn read_table(r: &mut impl Read) -> Result<Table, FormatError> {
    let magic = read_exact::<4>(r)?;
    if magic != MAGIC {
        return Err(corrupt("bad magic (not a TDPF file)"));
    }
    let version = read_u16(r)?;
    if version != VERSION {
        return Err(corrupt(format!("unsupported version {version}")));
    }
    let name = read_str(r)?;
    let rows = checked_len(read_u64(r)?, "table")?;
    let n_cols = read_u32(r)?;
    if n_cols > 100_000 {
        return Err(corrupt(format!("{n_cols} columns is implausible")));
    }
    let mut columns = Vec::with_capacity(n_cols as usize);
    for _ in 0..n_cols {
        let col_name = read_str(r)?;
        let data = read_encoded(r)?;
        if data.rows() != rows {
            return Err(corrupt(format!(
                "column '{col_name}' has {} rows, table declares {rows}",
                data.rows()
            )));
        }
        columns.push(Column::new(col_name, data));
    }
    Ok(Table::new(name, columns))
}

/// Write a table to a file path.
pub fn save_table(table: &Table, path: impl AsRef<Path>) -> Result<(), FormatError> {
    let mut f = io::BufWriter::new(std::fs::File::create(path)?);
    write_table(&mut f, table)?;
    Ok(f.flush()?)
}

/// Read a table from a file path.
pub fn load_table(path: impl AsRef<Path>) -> Result<Table, FormatError> {
    let mut f = io::BufReader::new(std::fs::File::open(path)?);
    read_table(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use tdp_tensor::Rng64;

    fn mixed_table() -> Table {
        let mut rng = Rng64::new(4);
        let images = F32Tensor::randn(&[6, 2, 3, 3], 0.0, 1.0, &mut rng);
        let pe = PeTensor::from_class_ids(
            &Tensor::from_vec(vec![0i64, 1, 2, 1, 0, 2], &[6]),
            PeTensor::range_classes(3),
        );
        TableBuilder::new()
            .col_f32("score", vec![0.5, -1.0, 2.25, 0.0, 3.5, -0.125])
            .col_i64("qty", vec![4, 4, 4, 9, 9, 1])
            .col_bool("flag", vec![true, false, true, true, false, false])
            .col_str("tag", &["b", "a", "b", "c", "a", "a"])
            .col_tensor("img", images)
            .col_encoded("label", EncodedTensor::Pe(pe))
            .build("mixed")
    }

    fn round_trip(t: &Table) -> Table {
        let mut buf = Vec::new();
        write_table(&mut buf, t).expect("write");
        read_table(&mut buf.as_slice()).expect("read")
    }

    #[test]
    fn mixed_encodings_round_trip() {
        let t = mixed_table();
        let back = round_trip(&t);
        assert_eq!(back.name(), "mixed");
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.column_names(), t.column_names());
        for col in t.columns() {
            let b = back.column(&col.name).unwrap();
            assert_eq!(b.data.kind(), col.data.kind(), "{}", col.name);
            assert_eq!(
                b.data.decode_strings(),
                col.data.decode_strings(),
                "{}",
                col.name
            );
        }
        // Payload tensor bytes match exactly.
        assert_eq!(
            back.column("img").unwrap().data.decode_f32().to_vec(),
            t.column("img").unwrap().data.decode_f32().to_vec()
        );
    }

    #[test]
    fn compressed_encodings_stay_compressed_on_disk() {
        let ts: Vec<i64> = (0..4_000).map(|i| 9_000 + i).collect();
        let t = TableBuilder::new()
            .col_i64("ts", ts.clone())
            .build("log")
            .compress();
        let kind = t.column("ts").unwrap().data.kind();
        assert_ne!(kind, tdp_encoding::EncodingKind::PlainI64);

        let mut buf = Vec::new();
        write_table(&mut buf, &t).expect("write");
        // The file is much smaller than 4000 × 8 bytes of plain i64.
        assert!(buf.len() < 8_000, "file is {} bytes", buf.len());
        let back = read_table(&mut buf.as_slice()).expect("read");
        assert_eq!(back.column("ts").unwrap().data.kind(), kind);
        assert_eq!(back.column("ts").unwrap().data.decode_i64().to_vec(), ts);
    }

    #[test]
    fn empty_table_round_trips() {
        let t = TableBuilder::new().col_f32("x", vec![]).build("empty");
        let back = round_trip(&t);
        assert_eq!(back.rows(), 0);
        assert_eq!(back.column_names(), vec!["x"]);
    }

    #[test]
    fn rejects_bad_magic_version_and_truncation() {
        let t = mixed_table();
        let mut buf = Vec::new();
        write_table(&mut buf, &t).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_table(&mut bad_magic.as_slice()),
            Err(FormatError::Corrupt(_))
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(matches!(
            read_table(&mut bad_version.as_slice()),
            Err(FormatError::Corrupt(_))
        ));

        // Truncation at any of a few prefixes must error, not panic.
        for cut in [5usize, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_table(&mut buf[..cut].as_ref()).is_err(),
                "truncated at {cut} must fail"
            );
        }
    }

    #[test]
    fn rejects_inconsistent_row_counts() {
        // Hand-craft a file whose column length disagrees with the header.
        let t = TableBuilder::new().col_f32("x", vec![1.0, 2.0]).build("t");
        let mut buf = Vec::new();
        write_table(&mut buf, &t).unwrap();
        // Patch declared row count (8 bytes after magic+version+name).
        let name_end = 4 + 2 + 4 + 1; // magic, version, len("t"), "t"
        buf[name_end] = 9;
        assert!(matches!(
            read_table(&mut buf.as_slice()),
            Err(FormatError::Corrupt(m)) if m.contains("rows")
        ));
    }

    #[test]
    fn save_and_load_via_path() {
        let dir = std::env::temp_dir().join("tdpf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.tdpf");
        let t = mixed_table();
        save_table(&t, &path).expect("save");
        let back = load_table(&path).expect("load");
        assert_eq!(back.rows(), t.rows());
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            load_table(dir.join("missing.tdpf")),
            Err(FormatError::Io(_))
        ));
    }
}
