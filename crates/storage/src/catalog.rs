//! The session catalog: a concurrent name → table registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::table::{Table, TableStats};

/// Thread-safe table namespace. Registration replaces silently (matching
/// the paper's training loop, which re-registers the input tensor under the
/// same name every iteration — Listing 5, line 6).
///
/// Lock poisoning is recovered, not propagated: the map holds complete
/// `Arc<Table>` values that are swapped in single `insert`/`remove`
/// calls, so a thread that panicked while holding the lock cannot have
/// left a half-written entry behind. Recovering keeps one crashed worker
/// from wedging every other session sharing the engine.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Monotonic change counter, bumped on every register/drop. Plan
    /// caches use it as a cheap "anything changed?" check before falling
    /// back to per-table schema validation.
    version: AtomicU64,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register (or replace) a table under its own name.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        self.tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(Self::key(arc.name()), Arc::clone(&arc));
        self.version.fetch_add(1, Ordering::Relaxed);
        arc
    }

    /// Current value of the change counter (any register/drop bumps it).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Fetch a table by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&Self::key(name))
            .cloned()
    }

    /// Remove a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self
            .tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&Self::key(name))
            .is_some();
        if existed {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|t| t.name().to_owned())
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate statistics over all tables.
    pub fn stats(&self) -> TableStats {
        let guard = self.tables.read().unwrap_or_else(|e| e.into_inner());
        let mut total = TableStats {
            rows: 0,
            columns: 0,
            bytes: 0,
        };
        for t in guard.values() {
            let s = t.stats();
            total.rows += s.rows;
            total.columns += s.columns;
            total.bytes += s.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn tbl(name: &str, n: usize) -> Table {
        TableBuilder::new()
            .col_f32("v", (0..n).map(|i| i as f32).collect())
            .build(name)
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register(tbl("t1", 3));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("T1").unwrap().rows(), 3, "case-insensitive");
        assert!(cat.drop_table("t1"));
        assert!(!cat.drop_table("t1"));
        assert!(cat.get("t1").is_none());
    }

    #[test]
    fn re_register_replaces() {
        let cat = Catalog::new();
        cat.register(tbl("grid", 5));
        cat.register(tbl("grid", 9));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("grid").unwrap().rows(), 9);
    }

    #[test]
    fn version_bumps_on_register_and_drop() {
        let cat = Catalog::new();
        let v0 = cat.version();
        cat.register(tbl("t", 1));
        assert!(cat.version() > v0);
        let v1 = cat.version();
        cat.register(tbl("t", 2)); // replacement bumps too
        assert!(cat.version() > v1);
        let v2 = cat.version();
        assert!(cat.drop_table("t"));
        assert!(cat.version() > v2);
        let v3 = cat.version();
        assert!(!cat.drop_table("t"), "missing drop is a no-op");
        assert_eq!(cat.version(), v3);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.register(tbl("zeta", 1));
        cat.register(tbl("alpha", 1));
        assert_eq!(cat.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn concurrent_access() {
        let cat = Arc::new(Catalog::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&cat);
            handles.push(std::thread::spawn(move || {
                c.register(tbl(&format!("t{i}"), i + 1));
                c.get(&format!("t{i}")).expect("just registered").rows()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.stats().rows, (1..=8).sum::<usize>());
    }
}
