//! The session catalog: a concurrent name → table registry.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::table::{Table, TableStats};

/// Thread-safe table namespace. Registration replaces silently (matching
/// the paper's training loop, which re-registers the input tensor under the
/// same name every iteration — Listing 5, line 6).
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register (or replace) a table under its own name.
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        self.tables
            .write()
            .expect("catalog lock poisoned")
            .insert(Self::key(arc.name()), Arc::clone(&arc));
        arc
    }

    /// Fetch a table by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables
            .read()
            .expect("catalog lock poisoned")
            .get(&Self::key(name))
            .cloned()
    }

    /// Remove a table; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.tables
            .write()
            .expect("catalog lock poisoned")
            .remove(&Self::key(name))
            .is_some()
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock poisoned")
            .values()
            .map(|t| t.name().to_owned())
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().expect("catalog lock poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate statistics over all tables.
    pub fn stats(&self) -> TableStats {
        let guard = self.tables.read().expect("catalog lock poisoned");
        let mut total = TableStats { rows: 0, columns: 0, bytes: 0 };
        for t in guard.values() {
            let s = t.stats();
            total.rows += s.rows;
            total.columns += s.columns;
            total.bytes += s.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn tbl(name: &str, n: usize) -> Table {
        TableBuilder::new()
            .col_f32("v", (0..n).map(|i| i as f32).collect())
            .build(name)
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register(tbl("t1", 3));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("T1").unwrap().rows(), 3, "case-insensitive");
        assert!(cat.drop_table("t1"));
        assert!(!cat.drop_table("t1"));
        assert!(cat.get("t1").is_none());
    }

    #[test]
    fn re_register_replaces() {
        let cat = Catalog::new();
        cat.register(tbl("grid", 5));
        cat.register(tbl("grid", 9));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("grid").unwrap().rows(), 9);
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.register(tbl("zeta", 1));
        cat.register(tbl("alpha", 1));
        assert_eq!(cat.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn concurrent_access() {
        let cat = Arc::new(Catalog::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&cat);
            handles.push(std::thread::spawn(move || {
                c.register(tbl(&format!("t{i}"), i + 1));
                c.get(&format!("t{i}")).expect("just registered").rows()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.stats().rows, (1..=8).sum::<usize>());
    }
}
