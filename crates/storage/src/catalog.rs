//! The session catalog: a concurrent name → table registry, with
//! per-table zone maps and the vector-index registry riding along.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tdp_encoding::EncodedTensor;

use crate::table::{Column, Table, TableStats};
use crate::vindex::VectorIndexEntry;
use crate::zonemap::TableZoneMaps;

/// Thread-safe table namespace. Registration replaces silently (matching
/// the paper's training loop, which re-registers the input tensor under the
/// same name every iteration — Listing 5, line 6).
///
/// Registration also computes [`TableZoneMaps`] for the new table and
/// **invalidates** any vector indexes built over the replaced table —
/// the write-invalidation half of the access-path contract: statistics
/// and indexes in the catalog always describe the table currently
/// registered under that name.
///
/// Lock poisoning is recovered, not propagated: the maps hold complete
/// `Arc` values that are swapped in single `insert`/`remove`
/// calls, so a thread that panicked while holding the lock cannot have
/// left a half-written entry behind. Recovering keeps one crashed worker
/// from wedging every other session sharing the engine.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>,
    /// Zone maps per table key, always in sync with `tables`.
    zone_maps: RwLock<HashMap<String, Arc<TableZoneMaps>>>,
    /// Vector indexes keyed by `table.column` (lowercased). Entries are
    /// removed whenever their table is re-registered or dropped.
    vector_indexes: RwLock<HashMap<String, Arc<VectorIndexEntry>>>,
    /// Stale-index ANN fallbacks per `table.column` key since that
    /// index was last (re)built — the trigger counter for opt-in
    /// auto-rebuild (`TDP_IVF_REBUILD_AFTER`). Reset whenever an index
    /// is registered under the key.
    stale_ann: RwLock<HashMap<String, u64>>,
    /// Monotonic change counter, bumped on every register/drop (of
    /// tables and of vector indexes). Plan caches use it as a cheap
    /// "anything changed?" check before falling back to per-table
    /// schema validation.
    version: AtomicU64,
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Register (or replace) a table under its own name. Zone maps are
    /// recomputed for the new contents; vector indexes over the old
    /// contents are invalidated (a write makes them stale).
    pub fn register(&self, table: Table) -> Arc<Table> {
        let arc = Arc::new(table);
        let key = Self::key(arc.name());
        let zm = Arc::new(TableZoneMaps::build(&arc));
        self.tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.clone(), Arc::clone(&arc));
        self.zone_maps
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.clone(), zm);
        self.invalidate_indexes_of(&key);
        self.version.fetch_add(1, Ordering::Relaxed);
        arc
    }

    /// Append rows to a registered table. Columns must match the
    /// existing schema positionally (case-insensitive names); payloads
    /// are concatenated row-wise and the table's zone maps are
    /// **extended incrementally** ([`TableZoneMaps::extend`]) rather
    /// than rebuilt, so the cost tracks the appended rows. Unlike
    /// [`Catalog::register`], vector indexes over the table are *kept*:
    /// they no longer cover the new rows, and the execution layer
    /// detects the row-count mismatch at query time and falls back to
    /// an exact scan (counted as an IVF stale fallback) until the index
    /// is rebuilt.
    ///
    /// Returns the combined table, or `None` when no table is
    /// registered under the name or the schemas disagree.
    pub fn append(&self, name: &str, rows: &Table) -> Option<Arc<Table>> {
        let key = Self::key(name);
        let old = self.get(&key)?;
        if old.columns().len() != rows.columns().len()
            || !old
                .columns()
                .iter()
                .zip(rows.columns())
                .all(|(a, b)| a.name.eq_ignore_ascii_case(&b.name))
        {
            return None;
        }
        let columns = old
            .columns()
            .iter()
            .zip(rows.columns())
            .map(|(a, b)| Column::new(a.name.clone(), EncodedTensor::concat(&[&a.data, &b.data])))
            .collect();
        let combined = Arc::new(Table::new(old.name(), columns));
        let old_zm = self.zone_map(&key);
        let zm = Arc::new(match &old_zm {
            Some(zm) => zm.extend(&combined),
            None => TableZoneMaps::build(&combined),
        });
        self.tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key.clone(), Arc::clone(&combined));
        self.zone_maps
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(key, zm);
        self.version.fetch_add(1, Ordering::Relaxed);
        Some(combined)
    }

    /// Zone maps of a table (always present for registered tables).
    pub fn zone_map(&self, name: &str) -> Option<Arc<TableZoneMaps>> {
        self.zone_maps
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&Self::key(name))
            .cloned()
    }

    /// Register (or replace) a vector index on `entry.table.column`.
    pub fn register_vector_index(&self, entry: VectorIndexEntry) -> Arc<VectorIndexEntry> {
        let key = format!("{}.{}", Self::key(&entry.table), Self::key(&entry.column));
        let arc = Arc::new(entry);
        let mut guard = self
            .vector_indexes
            .write()
            .unwrap_or_else(|e| e.into_inner());
        // An index name is unique: re-using one replaces the old index
        // even if it covered a different column.
        guard.retain(|_, e| !e.name.eq_ignore_ascii_case(&arc.name));
        guard.insert(key.clone(), Arc::clone(&arc));
        drop(guard);
        // A fresh build clears the stale-fallback tally for the key.
        self.stale_ann
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key);
        self.version.fetch_add(1, Ordering::Relaxed);
        arc
    }

    /// Count one stale-index ANN fallback on `table.column`, returning
    /// the total since the index there was last (re)built. Executors
    /// call this each time a query planned for the IVF path had to
    /// degrade to the exact scan; auto-rebuild compares the total to
    /// its threshold.
    pub fn note_stale_ann(&self, table: &str, column: &str) -> u64 {
        let key = format!("{}.{}", Self::key(table), Self::key(column));
        let mut guard = self.stale_ann.write().unwrap_or_else(|e| e.into_inner());
        let n = guard.entry(key).or_insert(0);
        *n += 1;
        *n
    }

    /// Fetch the vector index on `table.column`, if one is registered.
    pub fn vector_index(&self, table: &str, column: &str) -> Option<Arc<VectorIndexEntry>> {
        let key = format!("{}.{}", Self::key(table), Self::key(column));
        self.vector_indexes
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Drop a vector index by its (case-insensitive) name.
    pub fn drop_vector_index(&self, name: &str) -> bool {
        let mut guard = self
            .vector_indexes
            .write()
            .unwrap_or_else(|e| e.into_inner());
        let before = guard.len();
        guard.retain(|_, e| !e.name.eq_ignore_ascii_case(name));
        let dropped = guard.len() < before;
        drop(guard);
        if dropped {
            self.version.fetch_add(1, Ordering::Relaxed);
        }
        dropped
    }

    /// All registered vector indexes, sorted by name.
    pub fn vector_indexes(&self) -> Vec<Arc<VectorIndexEntry>> {
        let mut out: Vec<_> = self
            .vector_indexes
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Remove every vector index built over table `key` (lowercased).
    fn invalidate_indexes_of(&self, key: &str) {
        self.vector_indexes
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|_, e| Self::key(&e.table) != key);
    }

    /// Current value of the change counter (any register/drop bumps it).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Relaxed)
    }

    /// Fetch a table by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<Arc<Table>> {
        self.tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&Self::key(name))
            .cloned()
    }

    /// Remove a table (with its zone maps and vector indexes); returns
    /// whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let key = Self::key(name);
        let existed = self
            .tables
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&key)
            .is_some();
        if existed {
            self.zone_maps
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .remove(&key);
            self.invalidate_indexes_of(&key);
            self.version.fetch_add(1, Ordering::Relaxed);
        }
        existed
    }

    /// Registered table names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|t| t.name().to_owned())
            .collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate statistics over all tables.
    pub fn stats(&self) -> TableStats {
        let guard = self.tables.read().unwrap_or_else(|e| e.into_inner());
        let mut total = TableStats {
            rows: 0,
            columns: 0,
            bytes: 0,
        };
        for t in guard.values() {
            let s = t.stats();
            total.rows += s.rows;
            total.columns += s.columns;
            total.bytes += s.bytes;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn tbl(name: &str, n: usize) -> Table {
        TableBuilder::new()
            .col_f32("v", (0..n).map(|i| i as f32).collect())
            .build(name)
    }

    #[test]
    fn register_get_drop() {
        let cat = Catalog::new();
        cat.register(tbl("t1", 3));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("T1").unwrap().rows(), 3, "case-insensitive");
        assert!(cat.drop_table("t1"));
        assert!(!cat.drop_table("t1"));
        assert!(cat.get("t1").is_none());
    }

    #[test]
    fn re_register_replaces() {
        let cat = Catalog::new();
        cat.register(tbl("grid", 5));
        cat.register(tbl("grid", 9));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.get("grid").unwrap().rows(), 9);
    }

    #[test]
    fn version_bumps_on_register_and_drop() {
        let cat = Catalog::new();
        let v0 = cat.version();
        cat.register(tbl("t", 1));
        assert!(cat.version() > v0);
        let v1 = cat.version();
        cat.register(tbl("t", 2)); // replacement bumps too
        assert!(cat.version() > v1);
        let v2 = cat.version();
        assert!(cat.drop_table("t"));
        assert!(cat.version() > v2);
        let v3 = cat.version();
        assert!(!cat.drop_table("t"), "missing drop is a no-op");
        assert_eq!(cat.version(), v3);
    }

    #[test]
    fn zone_maps_follow_registration() {
        let cat = Catalog::new();
        cat.register(tbl("t", 4));
        let zm = cat.zone_map("T").expect("zone maps computed on register");
        assert_eq!(zm.range(0, 0, 4), Some((0.0, 3.0)));
        cat.register(tbl("t", 2));
        let zm = cat.zone_map("t").unwrap();
        assert_eq!(zm.range(0, 0, 4), Some((0.0, 1.0)), "recomputed on replace");
        cat.drop_table("t");
        assert!(cat.zone_map("t").is_none());
    }

    #[test]
    fn vector_indexes_invalidate_on_table_writes() {
        use crate::vindex::{VectorIndex, VectorIndexEntry};
        use tdp_index::{FlatIndex, Metric};
        use tdp_tensor::Tensor;

        let cat = Catalog::new();
        cat.register(tbl("docs", 2));
        let flat = FlatIndex::build(Tensor::from_vec(vec![0.0; 4], &[2, 2]), Metric::L2);
        cat.register_vector_index(VectorIndexEntry {
            name: "idx_docs".into(),
            table: "docs".into(),
            column: "emb".into(),
            metric: Metric::L2,
            rows: 2,
            index: VectorIndex::Flat(flat),
        });
        assert!(cat.vector_index("DOCS", "EMB").is_some(), "case-folded");
        let v = cat.version();
        // A write to the indexed table invalidates its indexes.
        cat.register(tbl("docs", 3));
        assert!(cat.vector_index("docs", "emb").is_none());
        assert!(cat.version() > v);
        assert!(!cat.drop_vector_index("idx_docs"), "already invalidated");
    }

    #[test]
    fn append_concatenates_and_extends_zone_maps() {
        let cat = Catalog::new();
        cat.register(tbl("t", 3));
        let v0 = cat.version();
        let combined = cat.append("T", &tbl("t", 2)).expect("schemas match");
        assert_eq!(combined.rows(), 5);
        assert_eq!(cat.get("t").unwrap().rows(), 5);
        assert!(cat.version() > v0);
        let zm = cat.zone_map("t").unwrap();
        assert_eq!(zm.rows(), 5, "zone maps follow the append");
        assert_eq!(zm.range(0, 0, 5), Some((0.0, 2.0)));
        // Missing table or mismatched schema: rejected, no change.
        assert!(cat.append("nope", &tbl("nope", 1)).is_none());
        let other = TableBuilder::new().col_i64("q", vec![1]).build("t");
        assert!(cat.append("t", &other).is_none());
        assert_eq!(cat.get("t").unwrap().rows(), 5);
    }

    #[test]
    fn append_keeps_vector_indexes_stale() {
        use crate::vindex::{VectorIndex, VectorIndexEntry};
        use tdp_index::{FlatIndex, Metric};
        use tdp_tensor::Tensor;

        let cat = Catalog::new();
        cat.register(tbl("docs", 2));
        let flat = FlatIndex::build(Tensor::from_vec(vec![0.0; 4], &[2, 2]), Metric::L2);
        cat.register_vector_index(VectorIndexEntry {
            name: "idx".into(),
            table: "docs".into(),
            column: "v".into(),
            metric: Metric::L2,
            rows: 2,
            index: VectorIndex::Flat(flat),
        });
        cat.append("docs", &tbl("docs", 1)).unwrap();
        let entry = cat
            .vector_index("docs", "v")
            .expect("append keeps the index (stale, detected at query time)");
        assert_eq!(entry.rows, 2, "entry still describes the pre-append rows");
        assert_ne!(entry.rows, cat.get("docs").unwrap().rows());
    }

    #[test]
    fn names_sorted() {
        let cat = Catalog::new();
        cat.register(tbl("zeta", 1));
        cat.register(tbl("alpha", 1));
        assert_eq!(cat.names(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn concurrent_access() {
        let cat = Arc::new(Catalog::new());
        let mut handles = Vec::new();
        for i in 0..8 {
            let c = Arc::clone(&cat);
            handles.push(std::thread::spawn(move || {
                c.register(tbl(&format!("t{i}"), i + 1));
                c.get(&format!("t{i}")).expect("just registered").rows()
            }));
        }
        for h in handles {
            assert!(h.join().unwrap() >= 1);
        }
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.stats().rows, (1..=8).sum::<usize>());
    }
}
