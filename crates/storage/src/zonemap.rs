//! Per-chunk column statistics (zone maps) for scan pruning.
//!
//! Every table registered in the [`crate::Catalog`] gets a
//! [`TableZoneMaps`]: for each numeric 1-d column, min/max (and
//! null-count) statistics over fixed-size row chunks of
//! [`ZONE_MAP_CHUNK_ROWS`] rows. The execution layer compiles eligible
//! filter conjuncts into chunk-pruning predicates and consults
//! [`TableZoneMaps::range`] to skip whole morsels before any kernel runs.
//!
//! ## Precision contract
//!
//! Statistics are stored in **f32 — the precision filter kernels compare
//! in**. Integer columns are cast with the same `as f32`
//! round-to-nearest conversion `decode_f32` applies at evaluation time,
//! so a pruning decision made against these bounds mirrors the kernel
//! comparison bit-for-bit: a chunk is only skipped when *no* row in it
//! could pass the f32 comparison the filter would actually execute.
//! Chunks containing NaN report no statistics (unprunable), as do
//! non-numeric and multi-dimensional payload columns.
//!
//! Null counts are carried per chunk for format compatibility with
//! conventional zone maps; this NULL-free dialect always records zero.

use tdp_encoding::EncodedTensor;

use crate::table::Table;

/// Rows per statistics chunk. A divisor of the default morsel size
/// (65 536) so default morsels align exactly to chunk boundaries, and
/// small enough that tiny custom morsels (`set_morsel_rows(7)`) still
/// get usable bounds from the chunk union.
pub const ZONE_MAP_CHUNK_ROWS: usize = 4096;

/// Min/max/null statistics of one chunk of one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkStat {
    pub min: f32,
    pub max: f32,
    /// Always zero in this NULL-free dialect; kept so the stat layout
    /// matches conventional zone maps.
    pub null_count: usize,
}

/// Zone map of a single column: one optional stat per chunk (`None`
/// marks an unprunable chunk, e.g. one containing NaN).
#[derive(Debug, Clone)]
pub struct ColumnZoneMap {
    chunks: Vec<Option<ChunkStat>>,
}

impl ColumnZoneMap {
    fn from_f32(values: &[f32]) -> ColumnZoneMap {
        let chunks = values
            .chunks(ZONE_MAP_CHUNK_ROWS)
            .map(|chunk| {
                let mut min = f32::INFINITY;
                let mut max = f32::NEG_INFINITY;
                for &v in chunk {
                    if v.is_nan() {
                        return None;
                    }
                    min = min.min(v);
                    max = max.max(v);
                }
                Some(ChunkStat {
                    min,
                    max,
                    null_count: 0,
                })
            })
            .collect();
        ColumnZoneMap { chunks }
    }

    /// Conservative `[min, max]` over the chunks overlapping the row
    /// range `[start, end)`. `None` when any overlapping chunk is
    /// unprunable (so callers must scan).
    pub fn range(&self, start: usize, end: usize) -> Option<(f32, f32)> {
        if start >= end {
            return None;
        }
        let first = start / ZONE_MAP_CHUNK_ROWS;
        let last = (end - 1) / ZONE_MAP_CHUNK_ROWS;
        let mut min = f32::INFINITY;
        let mut max = f32::NEG_INFINITY;
        for c in first..=last.min(self.chunks.len().saturating_sub(1)) {
            let stat = self.chunks.get(c).copied().flatten()?;
            min = min.min(stat.min);
            max = max.max(stat.max);
        }
        if min.is_infinite() && max.is_infinite() {
            return None;
        }
        Some((min, max))
    }

    /// Number of chunks covered.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Keep the first `complete` chunks verbatim and append chunks
    /// computed from `tail` — the rows from
    /// `complete * ZONE_MAP_CHUNK_ROWS` onward. The previously-partial
    /// last chunk is recomputed from `tail` rather than patched, so the
    /// result is identical to a from-scratch build over the full column.
    fn extended(&self, complete: usize, tail: &[f32]) -> ColumnZoneMap {
        let mut chunks: Vec<Option<ChunkStat>> =
            self.chunks[..complete.min(self.chunks.len())].to_vec();
        chunks.extend(ColumnZoneMap::from_f32(tail).chunks);
        ColumnZoneMap { chunks }
    }
}

/// Zone maps of every column of one table, indexed by column position
/// (the slot numbering physical plans resolve column refs to).
#[derive(Debug, Clone)]
pub struct TableZoneMaps {
    rows: usize,
    columns: Vec<Option<ColumnZoneMap>>,
}

impl TableZoneMaps {
    /// Compute statistics for every eligible column: plain 1-d f32 and
    /// the integer encodings (plain, run-length, bit-packed, delta).
    /// Strings, booleans, probability columns and multi-dimensional
    /// payloads get no stats (their filters never prune).
    pub fn build(table: &Table) -> TableZoneMaps {
        let columns = table
            .columns()
            .iter()
            .map(|c| Self::column_stats(&c.data))
            .collect();
        TableZoneMaps {
            rows: table.rows(),
            columns,
        }
    }

    /// Full-column statistics for one encoded column; `None` for
    /// stat-less kinds.
    fn column_stats(data: &EncodedTensor) -> Option<ColumnZoneMap> {
        match data {
            EncodedTensor::F32(t) if t.ndim() == 1 => Some(ColumnZoneMap::from_f32(t.data())),
            EncodedTensor::I64(_)
            | EncodedTensor::Rle(_)
            | EncodedTensor::BitPacked(_)
            | EncodedTensor::Delta(_) => {
                // Same `as f32` cast decode_f32 performs at filter
                // time, so bounds match evaluation exactly.
                let vals: Vec<f32> = data.decode_i64().data().iter().map(|&v| v as f32).collect();
                Some(ColumnZoneMap::from_f32(&vals))
            }
            _ => None,
        }
    }

    /// Incrementally extend these statistics to describe `table`, whose
    /// first `self.rows()` rows are unchanged and whose remainder was
    /// appended. Chunks fully covered by the old row count are reused
    /// verbatim; only the previously-partial tail chunk plus the new
    /// rows are rescanned, so append cost tracks the appended size, not
    /// the table size. (Integer-compressed columns still pay one full
    /// decode — there is no partial-decode API — but the stat scan
    /// itself stays incremental.) The result is equal to
    /// [`TableZoneMaps::build`] over the full table.
    pub fn extend(&self, table: &Table) -> TableZoneMaps {
        debug_assert!(table.rows() >= self.rows, "extend cannot shrink a table");
        let complete = self.rows / ZONE_MAP_CHUNK_ROWS;
        let tail_start = complete * ZONE_MAP_CHUNK_ROWS;
        let columns = table
            .columns()
            .iter()
            .enumerate()
            .map(|(slot, c)| {
                let old = self.columns.get(slot).and_then(|z| z.as_ref());
                match (&c.data, old) {
                    (EncodedTensor::F32(t), Some(oldz)) if t.ndim() == 1 => {
                        Some(oldz.extended(complete, &t.data()[tail_start..]))
                    }
                    (
                        EncodedTensor::I64(_)
                        | EncodedTensor::Rle(_)
                        | EncodedTensor::BitPacked(_)
                        | EncodedTensor::Delta(_),
                        Some(oldz),
                    ) => {
                        let vals: Vec<f32> = c.data.decode_i64().data()[tail_start..]
                            .iter()
                            .map(|&v| v as f32)
                            .collect();
                        Some(oldz.extended(complete, &vals))
                    }
                    // No prior stats (or the column changed shape):
                    // fall back to a full build for this column.
                    _ => Self::column_stats(&c.data),
                }
            })
            .collect();
        TableZoneMaps {
            rows: table.rows(),
            columns,
        }
    }

    /// Row count the stats were computed over (staleness check).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Per-column zone map by slot; `None` for stat-less columns.
    pub fn column(&self, slot: usize) -> Option<&ColumnZoneMap> {
        self.columns.get(slot).and_then(|c| c.as_ref())
    }

    /// Conservative bounds of `[start, end)` of column `slot`, `None`
    /// when the column or any overlapping chunk lacks stats.
    pub fn range(&self, slot: usize, start: usize, end: usize) -> Option<(f32, f32)> {
        self.column(slot)?.range(start, end.min(self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use tdp_tensor::Tensor;

    #[test]
    fn f32_column_bounds_per_chunk() {
        let n = ZONE_MAP_CHUNK_ROWS * 2 + 100;
        let t = TableBuilder::new()
            .col_f32("v", (0..n).map(|i| i as f32).collect())
            .build("t");
        let zm = TableZoneMaps::build(&t);
        assert_eq!(zm.rows(), n);
        // First chunk alone.
        assert_eq!(
            zm.range(0, 0, ZONE_MAP_CHUNK_ROWS),
            Some((0.0, (ZONE_MAP_CHUNK_ROWS - 1) as f32))
        );
        // Straddling two chunks unions their bounds.
        let r = zm.range(0, ZONE_MAP_CHUNK_ROWS - 1, ZONE_MAP_CHUNK_ROWS + 1);
        assert_eq!(r, Some((0.0, (2 * ZONE_MAP_CHUNK_ROWS - 1) as f32)));
        // Tail chunk is partial but still bounded.
        let r = zm.range(0, 2 * ZONE_MAP_CHUNK_ROWS, n);
        assert_eq!(r, Some(((2 * ZONE_MAP_CHUNK_ROWS) as f32, (n - 1) as f32)));
    }

    #[test]
    fn i64_column_uses_filter_cast() {
        let t = TableBuilder::new()
            .col_i64("q", vec![5, -3, 10, 7])
            .build("t");
        let zm = TableZoneMaps::build(&t);
        assert_eq!(zm.range(0, 0, 4), Some((-3.0, 10.0)));
    }

    #[test]
    fn nan_chunk_is_unprunable() {
        let t = TableBuilder::new()
            .col_f32("v", vec![1.0, f32::NAN, 3.0])
            .build("t");
        let zm = TableZoneMaps::build(&t);
        assert_eq!(zm.range(0, 0, 3), None);
    }

    #[test]
    fn string_and_payload_columns_have_no_stats() {
        let t = TableBuilder::new()
            .col_str("s", &["a", "b"])
            .col_tensor("emb", Tensor::<f32>::zeros(&[2, 4]))
            .col_f32("v", vec![1.0, 2.0])
            .build("t");
        let zm = TableZoneMaps::build(&t);
        assert!(zm.column(0).is_none());
        assert!(zm.column(1).is_none());
        assert_eq!(zm.range(2, 0, 2), Some((1.0, 2.0)));
    }

    #[test]
    fn extend_matches_wholesale_build() {
        // Old table ends mid-chunk, so extend must recompute the
        // partial tail chunk and append fresh ones.
        let old_n = ZONE_MAP_CHUNK_ROWS + 123;
        let new_n = 3 * ZONE_MAP_CHUNK_ROWS + 7;
        let vals: Vec<f32> = (0..new_n).map(|i| ((i * 37) % 1009) as f32).collect();
        let ints: Vec<i64> = (0..new_n).map(|i| (i as i64 % 97) - 48).collect();
        let old = TableBuilder::new()
            .col_f32("v", vals[..old_n].to_vec())
            .col_i64("q", ints[..old_n].to_vec())
            .col_str("s", &vec!["x"; old_n])
            .build("t");
        let new = TableBuilder::new()
            .col_f32("v", vals.clone())
            .col_i64("q", ints.clone())
            .col_str("s", &vec!["x"; new_n])
            .build("t");
        let extended = TableZoneMaps::build(&old).extend(&new);
        let rebuilt = TableZoneMaps::build(&new);
        assert_eq!(extended.rows(), rebuilt.rows());
        for slot in 0..3 {
            assert_eq!(
                extended.column(slot).map(ColumnZoneMap::chunk_count),
                rebuilt.column(slot).map(ColumnZoneMap::chunk_count),
                "slot {slot}"
            );
            for start in (0..new_n).step_by(ZONE_MAP_CHUNK_ROWS / 2) {
                let end = (start + ZONE_MAP_CHUNK_ROWS).min(new_n);
                assert_eq!(
                    extended.range(slot, start, end),
                    rebuilt.range(slot, start, end),
                    "slot {slot} rows {start}..{end}"
                );
            }
        }
    }

    #[test]
    fn extend_on_chunk_boundary_reuses_all_old_chunks() {
        let old_n = 2 * ZONE_MAP_CHUNK_ROWS;
        let new_n = old_n + 10;
        let vals: Vec<f32> = (0..new_n).map(|i| i as f32).collect();
        let old = TableBuilder::new()
            .col_f32("v", vals[..old_n].to_vec())
            .build("t");
        let new = TableBuilder::new().col_f32("v", vals).build("t");
        let extended = TableZoneMaps::build(&old).extend(&new);
        assert_eq!(extended.column(0).unwrap().chunk_count(), 3);
        assert_eq!(
            extended.range(0, old_n, new_n),
            Some((old_n as f32, (new_n - 1) as f32))
        );
    }

    #[test]
    fn out_of_range_rows_clamp() {
        let t = TableBuilder::new().col_f32("v", vec![1.0, 2.0]).build("t");
        let zm = TableZoneMaps::build(&t);
        assert_eq!(zm.range(0, 0, 100), Some((1.0, 2.0)));
        assert_eq!(zm.range(0, 5, 5), None, "empty range has no bounds");
    }
}
