//! Tables, columns and the table builder.

use tdp_encoding::{EncodedTensor, EncodingKind};
use tdp_tensor::{BoolTensor, Device, F32Tensor, I64Tensor, Tensor};

/// A named, encoded column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub data: EncodedTensor,
}

impl Column {
    pub fn new(name: impl Into<String>, data: EncodedTensor) -> Column {
        Column {
            name: name.into(),
            data,
        }
    }

    pub fn rows(&self) -> usize {
        self.data.rows()
    }

    pub fn kind(&self) -> EncodingKind {
        self.data.kind()
    }
}

/// Size/statistics summary of a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    pub rows: usize,
    pub columns: usize,
    pub bytes: usize,
}

/// A columnar table: equal-length encoded columns with unique names.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Assemble a table, validating column arity.
    ///
    /// Panics if column names repeat or row counts disagree — malformed
    /// tables must not enter the catalog.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Table {
        let name = name.into();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].iter().any(|p| p.name == c.name),
                "duplicate column '{}' in table '{name}'",
                c.name
            );
        }
        if let Some(first) = columns.first() {
            let n = first.rows();
            for c in &columns {
                assert_eq!(
                    c.rows(),
                    n,
                    "column '{}' has {} rows, expected {n}",
                    c.name,
                    c.rows()
                );
            }
        }
        Table { name, columns }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn rows(&self) -> usize {
        self.columns.first().map(|c| c.rows()).unwrap_or(0)
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Look up a column by (case-insensitive) name.
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns
            .iter()
            .find(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Statistics for catalog listings and memory accounting.
    pub fn stats(&self) -> TableStats {
        TableStats {
            rows: self.rows(),
            columns: self.columns.len(),
            bytes: self.columns.iter().map(|c| c.data.memory_bytes()).sum(),
        }
    }

    /// Row subset, applied to every column.
    pub fn filter_rows(&self, mask: &BoolTensor) -> Table {
        Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.data.filter_rows(mask)))
                .collect(),
        }
    }

    /// Row gather/reorder, applied to every column.
    pub fn select_rows(&self, idx: &I64Tensor) -> Table {
        Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.data.select_rows(idx)))
                .collect(),
        }
    }

    /// Re-encode every integer column with the smallest layout among
    /// plain / run-length / bit-packed / delta (see
    /// [`EncodedTensor::compress_i64`]). Other encodings pass through.
    pub fn compress(&self) -> Table {
        Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| {
                    let data = match &c.data {
                        EncodedTensor::I64(t) => EncodedTensor::compress_i64(t),
                        other => other.clone(),
                    };
                    Column::new(c.name.clone(), data)
                })
                .collect(),
        }
    }

    /// Total approximate memory footprint of all columns, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.data.memory_bytes()).sum()
    }

    /// Move all column payloads to a device.
    pub fn to_device(&self, device: Device) -> Table {
        Table {
            name: self.name.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Column::new(c.name.clone(), c.data.to_device(device)))
                .collect(),
        }
    }

    /// Render the first `limit` rows as an aligned text table (the
    /// `toPandas=True` analog for terminals).
    pub fn pretty(&self, limit: usize) -> String {
        let n = self.rows().min(limit);
        let mut cols: Vec<Vec<String>> = Vec::with_capacity(self.columns.len());
        for c in &self.columns {
            let mut rendered = c.data.decode_strings();
            rendered.truncate(n);
            cols.push(rendered);
        }
        let widths: Vec<usize> = self
            .columns
            .iter()
            .zip(&cols)
            .map(|(c, vals)| {
                vals.iter()
                    .map(|v| v.len())
                    .chain(std::iter::once(c.name.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let mut out = String::new();
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!("{:>w$}  ", c.name, w = w));
        }
        out.push('\n');
        for r in 0..n {
            for (vals, w) in cols.iter().zip(&widths) {
                out.push_str(&format!("{:>w$}  ", vals[r], w = w));
            }
            out.push('\n');
        }
        if self.rows() > n {
            out.push_str(&format!("... ({} rows total)\n", self.rows()));
        }
        out
    }
}

/// Fluent builder for assembling tables from host data — the ingestion
/// surface behind `register_df`-style APIs.
#[derive(Debug, Default)]
pub struct TableBuilder {
    columns: Vec<Column>,
}

impl TableBuilder {
    pub fn new() -> TableBuilder {
        TableBuilder {
            columns: Vec::new(),
        }
    }

    /// 1-d f32 column.
    pub fn col_f32(mut self, name: impl Into<String>, values: Vec<f32>) -> TableBuilder {
        let n = values.len();
        self.columns.push(Column::new(
            name,
            EncodedTensor::F32(Tensor::from_vec(values, &[n])),
        ));
        self
    }

    /// 1-d i64 column.
    pub fn col_i64(mut self, name: impl Into<String>, values: Vec<i64>) -> TableBuilder {
        let n = values.len();
        self.columns.push(Column::new(
            name,
            EncodedTensor::I64(Tensor::from_vec(values, &[n])),
        ));
        self
    }

    /// Dictionary-encoded string column.
    pub fn col_str(mut self, name: impl Into<String>, values: &[impl AsRef<str>]) -> TableBuilder {
        self.columns
            .push(Column::new(name, EncodedTensor::from_strings(values)));
        self
    }

    /// Boolean column.
    pub fn col_bool(mut self, name: impl Into<String>, values: Vec<bool>) -> TableBuilder {
        let n = values.len();
        self.columns.push(Column::new(
            name,
            EncodedTensor::Bool(Tensor::from_vec(values, &[n])),
        ));
        self
    }

    /// Multi-dimensional payload column (vectors, images): leading dim is
    /// the row dimension.
    pub fn col_tensor(mut self, name: impl Into<String>, tensor: F32Tensor) -> TableBuilder {
        assert!(
            tensor.ndim() >= 1,
            "payload columns need a leading row dimension"
        );
        self.columns
            .push(Column::new(name, EncodedTensor::F32(tensor)));
        self
    }

    /// Pre-encoded column.
    pub fn col_encoded(mut self, name: impl Into<String>, data: EncodedTensor) -> TableBuilder {
        self.columns.push(Column::new(name, data));
        self
    }

    pub fn build(self, name: impl Into<String>) -> Table {
        Table::new(name, self.columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        TableBuilder::new()
            .col_f32("price", vec![9.5, 1.0, 4.25])
            .col_i64("qty", vec![2, 7, 1])
            .col_str("item", &["pen", "ink", "pad"])
            .build("orders")
    }

    #[test]
    fn compress_shrinks_integer_columns_and_preserves_values() {
        let ts: Vec<i64> = (0..5_000).map(|i| 1_700_000_000 + i).collect();
        let cat: Vec<i64> = (0..5_000).map(|i| i % 3).collect();
        let t = TableBuilder::new()
            .col_i64("ts", ts.clone())
            .col_i64("cat", cat.clone())
            .col_f32("v", vec![0.5; 5_000])
            .build("log");
        let c = t.compress();
        assert!(
            c.memory_bytes() * 3 < t.memory_bytes(),
            "{} vs {}",
            c.memory_bytes(),
            t.memory_bytes()
        );
        assert_eq!(c.column("ts").unwrap().data.decode_i64().to_vec(), ts);
        assert_eq!(c.column("cat").unwrap().data.decode_i64().to_vec(), cat);
        // Float column untouched.
        assert_eq!(
            c.column("v").unwrap().data.kind(),
            tdp_encoding::EncodingKind::PlainF32
        );
    }

    #[test]
    fn table_shape_and_lookup() {
        let t = sample();
        assert_eq!(t.name(), "orders");
        assert_eq!(t.rows(), 3);
        assert_eq!(t.column_names(), vec!["price", "qty", "item"]);
        assert!(t.column("PRICE").is_some(), "lookups are case-insensitive");
        assert!(t.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        TableBuilder::new()
            .col_f32("x", vec![1.0])
            .col_i64("x", vec![1])
            .build("bad");
    }

    #[test]
    #[should_panic(expected = "rows, expected")]
    fn ragged_columns_rejected() {
        TableBuilder::new()
            .col_f32("a", vec![1.0, 2.0])
            .col_f32("b", vec![1.0])
            .build("bad");
    }

    #[test]
    fn filter_and_select_apply_to_all_columns() {
        let t = sample();
        let mask = Tensor::from_vec(vec![true, false, true], &[3]);
        let f = t.filter_rows(&mask);
        assert_eq!(f.rows(), 2);
        assert_eq!(
            f.column("item").unwrap().data.decode_strings(),
            vec!["pen", "pad"]
        );

        let idx = Tensor::from_vec(vec![2i64, 2, 0], &[3]);
        let s = t.select_rows(&idx);
        assert_eq!(
            s.column("qty").unwrap().data.decode_i64().to_vec(),
            vec![1, 1, 2]
        );
    }

    #[test]
    fn image_payload_column() {
        let imgs = Tensor::<f32>::zeros(&[5, 1, 4, 4]);
        let t = TableBuilder::new()
            .col_tensor("images", imgs)
            .col_i64("ts", vec![1, 1, 2, 2, 3])
            .build("docs");
        assert_eq!(t.rows(), 5);
        assert_eq!(t.column("images").unwrap().data.row_shape(), vec![1, 4, 4]);
    }

    #[test]
    fn stats_accounting() {
        let t = sample();
        let s = t.stats();
        assert_eq!(s.rows, 3);
        assert_eq!(s.columns, 3);
        assert!(s.bytes > 3 * 4 + 3 * 8);
    }

    #[test]
    fn pretty_renders_header_and_rows() {
        let out = sample().pretty(2);
        assert!(out.contains("price"));
        assert!(out.contains("pen"));
        assert!(out.contains("(3 rows total)"));
        assert!(!out.contains("pad"), "limit must truncate");
    }

    #[test]
    fn device_round_trip() {
        let t = sample().to_device(Device::Accel(2));
        assert_eq!(t.rows(), 3);
        assert_eq!(
            t.column("price").unwrap().data.decode_f32().to_vec(),
            vec![9.5, 1.0, 4.25]
        );
    }

    #[test]
    fn empty_table() {
        let t = Table::new("empty", vec![]);
        assert_eq!(t.rows(), 0);
        assert_eq!(t.stats().bytes, 0);
    }
}
