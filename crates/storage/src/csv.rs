//! Minimal CSV ingestion (header + comma separation, quoted fields).
//!
//! TDP "accepts input data in different formats" (paper §2); CSV is the
//! lowest common denominator we support natively. Columns where every value
//! parses as a number become plain f32; everything else becomes an
//! order-preserving dictionary column.

use crate::table::{Table, TableBuilder};

/// Parse CSV text into a table. The first line is the header.
///
/// Returns an error message for structural problems (ragged rows,
/// missing header, unterminated quotes).
pub fn parse_csv(name: &str, text: &str) -> Result<Table, String> {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        rows.push(split_csv_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    let Some(header) = rows.first().cloned() else {
        return Err("empty CSV: missing header".into());
    };
    let body = &rows[1..];
    for (i, r) in body.iter().enumerate() {
        if r.len() != header.len() {
            return Err(format!(
                "row {} has {} fields, header has {}",
                i + 1,
                r.len(),
                header.len()
            ));
        }
    }

    let mut builder = TableBuilder::new();
    for (c, col_name) in header.iter().enumerate() {
        let values: Vec<&str> = body.iter().map(|r| r[c].as_str()).collect();
        let parsed: Option<Vec<f32>> = values
            .iter()
            .map(|v| v.trim().parse::<f32>().ok())
            .collect();
        builder = match parsed {
            Some(nums) if !values.is_empty() => builder.col_f32(col_name.clone(), nums),
            _ => builder.col_str(col_name.clone(), &values),
        };
    }
    Ok(builder.build(name))
}

/// Split one CSV line, honouring double-quoted fields with `""` escapes.
fn split_csv_line(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_and_string_inference() {
        let t = parse_csv("iris", "sepal,species\n5.1,setosa\n4.9,virginica\n").unwrap();
        assert_eq!(t.rows(), 2);
        assert_eq!(
            t.column("sepal").unwrap().data.decode_f32().to_vec(),
            vec![5.1, 4.9]
        );
        assert_eq!(
            t.column("species").unwrap().data.decode_strings(),
            vec!["setosa", "virginica"]
        );
    }

    #[test]
    fn quoted_fields_and_escapes() {
        let t = parse_csv("q", "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(t.column("a").unwrap().data.decode_strings(), vec!["x,y"]);
        assert_eq!(
            t.column("b").unwrap().data.decode_strings(),
            vec!["he said \"hi\""]
        );
    }

    #[test]
    fn structural_errors() {
        assert!(parse_csv("e", "").is_err());
        assert!(parse_csv("e", "a,b\n1\n").unwrap_err().contains("fields"));
        assert!(parse_csv("e", "a\n\"oops\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let t = parse_csv("t", "x\n\n1\n\n2\n").unwrap();
        assert_eq!(t.rows(), 2);
    }

    #[test]
    fn mixed_column_falls_back_to_strings() {
        let t = parse_csv("m", "v\n1.5\nnot-a-number\n").unwrap();
        assert_eq!(
            t.column("v").unwrap().data.decode_strings(),
            vec!["1.5", "not-a-number"]
        );
    }
}
