//! Gradient-descent optimizers.
//!
//! The trainable-query loop of the paper (Listing 5) is
//! `zero_grad → run → loss.backward → optimizer.step`; these optimizers
//! close that loop. Parameters are [`Var`] leaves updated in place with
//! [`Var::set_value`], exactly as `torch.optim` mutates `Parameter.data`.

use tdp_autodiff::Var;
use tdp_tensor::F32Tensor;

/// Common optimizer surface.
pub trait Optimizer {
    /// Apply one update from the currently accumulated gradients.
    /// Parameters without a gradient are skipped.
    fn step(&mut self);

    /// Clear the gradients of all managed parameters.
    fn zero_grad(&self);

    /// The managed parameters.
    fn parameters(&self) -> &[Var];
}

/// Stochastic gradient descent with optional classical momentum.
pub struct Sgd {
    params: Vec<Var>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Option<F32Tensor>>,
}

impl Sgd {
    pub fn new(params: Vec<Var>, lr: f32, momentum: f32) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0,1)");
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            velocity: vec![None; n],
        }
    }

    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let update = if self.momentum > 0.0 {
                let v = match &self.velocity[i] {
                    Some(prev) => prev.mul_scalar(self.momentum).add(&g),
                    None => g,
                };
                self.velocity[i] = Some(v.clone());
                v
            } else {
                g
            };
            p.set_value(p.value().sub(&update.mul_scalar(self.lr)));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer used by the
/// paper's training loops (`Adam(compiled_query.parameters(), lr=0.01)`).
pub struct Adam {
    params: Vec<Var>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    m: Vec<Option<F32Tensor>>,
    v: Vec<Option<F32Tensor>>,
    t: i32,
}

impl Adam {
    /// Adam with the customary betas (0.9, 0.999) and eps 1e-8.
    pub fn new(params: Vec<Var>, lr: f32) -> Adam {
        Adam::with_config(params, lr, 0.9, 0.999, 1e-8)
    }

    pub fn with_config(params: Vec<Var>, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        let n = params.len();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            m: vec![None; n],
            v: vec![None; n],
            t: 0,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for (i, p) in self.params.iter().enumerate() {
            let Some(g) = p.grad() else { continue };
            let m = match &self.m[i] {
                Some(prev) => prev
                    .mul_scalar(self.beta1)
                    .add(&g.mul_scalar(1.0 - self.beta1)),
                None => g.mul_scalar(1.0 - self.beta1),
            };
            let g2 = g.mul(&g);
            let v = match &self.v[i] {
                Some(prev) => prev
                    .mul_scalar(self.beta2)
                    .add(&g2.mul_scalar(1.0 - self.beta2)),
                None => g2.mul_scalar(1.0 - self.beta2),
            };
            let m_hat = m.div_scalar(bc1);
            let v_hat = v.div_scalar(bc2);
            let denom = v_hat.sqrt().add_scalar(self.eps);
            p.set_value(p.value().sub(&m_hat.div(&denom).mul_scalar(self.lr)));
            self.m[i] = Some(m);
            self.v[i] = Some(v);
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// Clip gradients globally to a maximum L2 norm; returns the pre-clip norm.
/// Stabilises the deeper baselines (ResNet-18 on grid regression).
pub fn clip_grad_norm(params: &[Var], max_norm: f64) -> f64 {
    let mut total = 0.0f64;
    for p in params {
        if let Some(g) = p.grad() {
            total += g.norm().powi(2);
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = (max_norm / norm) as f32;
        for p in params {
            if let Some(g) = p.grad() {
                // Rescale in place by replacing the accumulated gradient.
                p.zero_grad();
                let scaled = g.mul_scalar(scale);
                // accumulate_grad is crate-private; emulate via backward-free
                // reconstruction: set through public API.
                p.add_grad(scaled);
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::{Rng64, Tensor};

    fn quadratic_loss(p: &Var) -> Var {
        // loss = mean((p - 3)^2); minimum at 3.
        p.sub_scalar(3.0).square().mean()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let p = Var::param(Tensor::from_vec(vec![0.0f32, 10.0], &[2]));
        let mut opt = Sgd::new(vec![p.clone()], 0.2, 0.0);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&p).backward();
            opt.step();
        }
        for v in p.value().to_vec() {
            assert!((v - 3.0).abs() < 1e-3, "sgd should reach 3, got {v}");
        }
    }

    #[test]
    fn sgd_momentum_converges_faster_than_plain_on_ill_conditioned() {
        // f(p) = p0^2 + 25 p1^2 — stiff quadratic.
        let run = |momentum: f32| -> f64 {
            let p = Var::param(Tensor::from_vec(vec![5.0f32, 5.0], &[2]));
            let scale = Var::constant(Tensor::from_vec(vec![1.0f32, 25.0], &[2]));
            let mut opt = Sgd::new(vec![p.clone()], 0.02, momentum);
            for _ in 0..60 {
                opt.zero_grad();
                p.square().mul(&scale).sum().backward();
                opt.step();
            }
            p.value().norm()
        };
        assert!(
            run(0.9) < run(0.0),
            "momentum should outpace plain SGD here"
        );
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let p = Var::param(Tensor::from_vec(vec![-4.0f32], &[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.1);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&p).backward();
            opt.step();
        }
        assert!((p.value().item() - 3.0).abs() < 1e-2);
    }

    #[test]
    fn step_skips_parameters_without_gradients() {
        let used = Var::param(Tensor::from_vec(vec![1.0f32], &[1]));
        let unused = Var::param(Tensor::from_vec(vec![9.0f32], &[1]));
        let mut opt = Sgd::new(vec![used.clone(), unused.clone()], 0.5, 0.0);
        opt.zero_grad();
        used.square().mean().backward();
        opt.step();
        assert_eq!(unused.value().item(), 9.0, "no gradient, no movement");
        assert!(used.value().item() < 1.0);
    }

    #[test]
    fn adam_handles_sparse_iterations() {
        // Alternating gradient availability must not corrupt moments.
        let p = Var::param(Tensor::from_vec(vec![2.0f32], &[1]));
        let mut opt = Adam::new(vec![p.clone()], 0.05);
        for i in 0..100 {
            opt.zero_grad();
            if i % 2 == 0 {
                quadratic_loss(&p).backward();
            }
            opt.step();
        }
        assert!(p.value().item().is_finite());
        assert!((p.value().item() - 3.0).abs() < 0.5);
    }

    #[test]
    fn clip_grad_norm_bounds_updates() {
        let p = Var::param(Tensor::from_vec(vec![100.0f32, 100.0], &[2]));
        p.square().sum().backward();
        let pre = clip_grad_norm(std::slice::from_ref(&p), 1.0);
        assert!(pre > 100.0);
        let g = p.grad().unwrap();
        assert!((g.norm() - 1.0).abs() < 1e-4, "clipped norm = {}", g.norm());
    }

    #[test]
    fn training_two_layer_net_learns_xor() {
        let mut rng = Rng64::new(11);
        let net = crate::Sequential::new(vec![
            Box::new(crate::Linear::new(2, 8, &mut rng)),
            Box::new(crate::ReLU),
            Box::new(crate::Linear::new(8, 1, &mut rng)),
        ]);
        use crate::Module;
        let x = Tensor::from_vec(vec![0.0f32, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], &[4, 2]);
        let y = Tensor::from_vec(vec![0.0f32, 1.0, 1.0, 0.0], &[4, 1]);
        let mut opt = Adam::new(net.parameters(), 0.05);
        let mut final_loss = f32::MAX;
        for _ in 0..400 {
            opt.zero_grad();
            let loss = net.forward(&Var::constant(x.clone())).mse_loss(&y);
            loss.backward();
            opt.step();
            final_loss = loss.value().item();
        }
        assert!(
            final_loss < 0.01,
            "XOR should be learnable, loss={final_loss}"
        );
    }
}
