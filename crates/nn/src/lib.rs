//! # tdp-nn
//!
//! Neural-network building blocks over [`tdp_autodiff`]: layers, composite
//! modules, losses and optimizers. This crate completes the Tensor
//! Computation Runtime substrate — it is the part of "PyTorch" that the
//! paper's UDFs/TVFs are written against (the digit/size parser CNNs of the
//! MNISTGrid query, the linear classifier of the LLP experiments, and the
//! pure-deep-learning baselines CNN-Small and ResNet-18).
//!
//! ```
//! use tdp_nn::{Linear, Module, Sgd, Optimizer};
//! use tdp_autodiff::Var;
//! use tdp_tensor::{Rng64, Tensor};
//!
//! let mut rng = Rng64::new(0);
//! let layer = Linear::new(4, 2, &mut rng);
//! let x = Var::constant(Tensor::ones(&[3, 4]));
//! assert_eq!(layer.forward(&x).shape(), vec![3, 2]);
//! let mut opt = Sgd::new(layer.parameters(), 0.1, 0.0);
//! opt.zero_grad();
//! ```

pub mod module;
pub mod optim;

pub use module::{
    Conv2d, Flatten, GlobalAvgPool, Linear, MaxPool2d, Module, ReLU, Residual, Sequential,
};
pub use optim::{Adam, Optimizer, Sgd};
