//! Layers and composite modules.

use tdp_autodiff::Var;
use tdp_tensor::{F32Tensor, Rng64, Tensor};

/// A neural module: a differentiable function with trainable parameters.
///
/// Mirrors `torch.nn.Module` in the essentials the platform needs: forward
/// application on [`Var`]s and parameter discovery for optimizers and for
/// `CompiledQuery::parameters()`.
pub trait Module {
    fn forward(&self, x: &Var) -> Var;

    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Var>;

    /// Total number of trainable scalars.
    fn num_parameters(&self) -> usize {
        self.parameters().iter().map(|p| p.numel()).sum()
    }

    /// Clear every parameter gradient.
    fn zero_grad(&self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }
}

/// Dense layer: `y = x W + b`, weight shaped `[in, out]`.
pub struct Linear {
    pub weight: Var,
    pub bias: Var,
}

impl Linear {
    /// Kaiming-initialised dense layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Linear {
        let weight = Var::param(F32Tensor::kaiming(
            &[in_features, out_features],
            in_features,
            rng,
        ));
        let bias = Var::param(F32Tensor::zeros(&[out_features]));
        Linear { weight, bias }
    }

    /// Layer with explicit weights (deterministic models, tests).
    pub fn from_weights(weight: F32Tensor, bias: F32Tensor) -> Linear {
        assert_eq!(weight.ndim(), 2, "Linear weight must be [in, out]");
        assert_eq!(bias.shape(), &[weight.shape()[1]], "bias must be [out]");
        Linear {
            weight: Var::param(weight),
            bias: Var::param(bias),
        }
    }

    pub fn in_features(&self) -> usize {
        self.weight.shape()[0]
    }

    pub fn out_features(&self) -> usize {
        self.weight.shape()[1]
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var) -> Var {
        x.matmul(&self.weight).add(&self.bias)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// 2-d convolution layer (NCHW).
pub struct Conv2d {
    pub weight: Var,
    pub bias: Var,
    pub stride: usize,
    pub pad: usize,
}

impl Conv2d {
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        rng: &mut Rng64,
    ) -> Conv2d {
        let fan_in = in_channels * kernel * kernel;
        let weight = Var::param(F32Tensor::kaiming(
            &[out_channels, in_channels, kernel, kernel],
            fan_in,
            rng,
        ));
        let bias = Var::param(F32Tensor::zeros(&[out_channels]));
        Conv2d {
            weight,
            bias,
            stride,
            pad,
        }
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var) -> Var {
        x.conv2d(&self.weight, Some(&self.bias), self.stride, self.pad)
    }

    fn parameters(&self) -> Vec<Var> {
        vec![self.weight.clone(), self.bias.clone()]
    }
}

/// Parameter-free rectifier.
pub struct ReLU;

impl Module for ReLU {
    fn forward(&self, x: &Var) -> Var {
        x.relu()
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Max pooling layer.
pub struct MaxPool2d {
    pub kernel: usize,
    pub stride: usize,
}

impl MaxPool2d {
    pub fn new(kernel: usize, stride: usize) -> MaxPool2d {
        MaxPool2d { kernel, stride }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Var) -> Var {
        x.max_pool2d(self.kernel, self.stride)
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Flatten `[n, ...] -> [n, prod(...)]`.
pub struct Flatten;

impl Module for Flatten {
    fn forward(&self, x: &Var) -> Var {
        let shape = x.shape();
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        x.reshape(&[n, rest])
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Global average pooling `[n, c, h, w] -> [n, c]`.
pub struct GlobalAvgPool;

impl Module for GlobalAvgPool {
    fn forward(&self, x: &Var) -> Var {
        x.global_avg_pool()
    }

    fn parameters(&self) -> Vec<Var> {
        Vec::new()
    }
}

/// Ordered composition of modules.
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Module>>) -> Sequential {
        Sequential { layers }
    }

    pub fn push(&mut self, layer: Box<dyn Module>) {
        self.layers.push(layer);
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var) -> Var {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn parameters(&self) -> Vec<Var> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }
}

/// Residual wrapper: `y = relu(f(x) + proj(x))`. The building block of our
/// ResNet-18-style baseline; `proj` (1x1 strided conv) reconciles shapes
/// when `f` changes resolution or width.
pub struct Residual {
    pub body: Sequential,
    pub proj: Option<Conv2d>,
}

impl Residual {
    pub fn new(body: Sequential, proj: Option<Conv2d>) -> Residual {
        Residual { body, proj }
    }
}

impl Module for Residual {
    fn forward(&self, x: &Var) -> Var {
        let fx = self.body.forward(x);
        let skip = match &self.proj {
            Some(p) => p.forward(x),
            None => x.clone(),
        };
        fx.add(&skip).relu()
    }

    fn parameters(&self) -> Vec<Var> {
        let mut ps = self.body.parameters();
        if let Some(p) = &self.proj {
            ps.extend(p.parameters());
        }
        ps
    }
}

/// Build a `[n, k]` prediction for a batch tensor using a module,
/// convenience for inference-only call sites.
pub fn predict(module: &dyn Module, input: &F32Tensor) -> F32Tensor {
    module.forward(&Var::constant(input.clone())).value()
}

/// Classification accuracy of logits/probabilities against integer labels.
pub fn accuracy(outputs: &F32Tensor, labels: &Tensor<i64>) -> f64 {
    assert_eq!(outputs.ndim(), 2, "accuracy expects [n, classes]");
    assert_eq!(outputs.rows(), labels.numel(), "one label per row");
    if outputs.rows() == 0 {
        return 0.0;
    }
    let pred = outputs.argmax_dim(1);
    let hits = pred
        .data()
        .iter()
        .zip(labels.data())
        .filter(|(p, l)| p == l)
        .count();
    hits as f64 / outputs.rows() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_shapes_and_param_count() {
        let mut rng = Rng64::new(1);
        let l = Linear::new(8, 3, &mut rng);
        assert_eq!(l.in_features(), 8);
        assert_eq!(l.out_features(), 3);
        assert_eq!(l.num_parameters(), 8 * 3 + 3);
        let x = Var::constant(F32Tensor::ones(&[5, 8]));
        assert_eq!(l.forward(&x).shape(), vec![5, 3]);
    }

    #[test]
    fn linear_from_weights_is_exact() {
        let w = Tensor::from_vec(vec![1.0f32, 0.0, 0.0, 1.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0f32, 20.0], &[2]);
        let l = Linear::from_weights(w, b);
        let x = Var::constant(Tensor::from_vec(vec![3.0f32, 4.0], &[1, 2]));
        assert_eq!(l.forward(&x).value().to_vec(), vec![13.0, 24.0]);
    }

    #[test]
    fn conv_layer_shapes() {
        let mut rng = Rng64::new(2);
        let c = Conv2d::new(1, 4, 3, 1, 1, &mut rng);
        let x = Var::constant(F32Tensor::ones(&[2, 1, 8, 8]));
        assert_eq!(c.forward(&x).shape(), vec![2, 4, 8, 8]);
        let strided = Conv2d::new(4, 8, 3, 2, 1, &mut rng);
        assert_eq!(strided.forward(&c.forward(&x)).shape(), vec![2, 8, 4, 4]);
    }

    #[test]
    fn sequential_composes_and_collects_params() {
        let mut rng = Rng64::new(3);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(1, 2, 3, 1, 1, &mut rng)),
            Box::new(ReLU),
            Box::new(MaxPool2d::new(2, 2)),
            Box::new(Flatten),
            Box::new(Linear::new(2 * 4 * 4, 5, &mut rng)),
        ]);
        let x = Var::constant(F32Tensor::ones(&[1, 1, 8, 8]));
        assert_eq!(net.forward(&x).shape(), vec![1, 5]);
        let expected = (2 * 9 + 2) + (2 * 16 * 5 + 5);
        assert_eq!(net.num_parameters(), expected);
    }

    #[test]
    fn residual_identity_skip() {
        let mut rng = Rng64::new(4);
        let body = Sequential::new(vec![
            Box::new(Conv2d::new(2, 2, 3, 1, 1, &mut rng)),
            Box::new(ReLU),
            Box::new(Conv2d::new(2, 2, 3, 1, 1, &mut rng)),
        ]);
        let res = Residual::new(body, None);
        let x = Var::constant(F32Tensor::ones(&[1, 2, 4, 4]));
        assert_eq!(res.forward(&x).shape(), vec![1, 2, 4, 4]);
        assert_eq!(res.parameters().len(), 4);
    }

    #[test]
    fn residual_projection_changes_width() {
        let mut rng = Rng64::new(5);
        let body = Sequential::new(vec![Box::new(Conv2d::new(2, 4, 3, 2, 1, &mut rng))]);
        let proj = Conv2d::new(2, 4, 1, 2, 0, &mut rng);
        let res = Residual::new(body, Some(proj));
        let x = Var::constant(F32Tensor::ones(&[1, 2, 8, 8]));
        assert_eq!(res.forward(&x).shape(), vec![1, 4, 4, 4]);
    }

    #[test]
    fn global_avg_pool_module() {
        let x = Var::constant(Tensor::from_vec(vec![1.0f32, 3.0, 5.0, 7.0], &[1, 1, 2, 2]));
        assert_eq!(GlobalAvgPool.forward(&x).value().to_vec(), vec![4.0]);
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let out = Tensor::from_vec(vec![0.9f32, 0.1, 0.2, 0.8, 0.6, 0.4], &[3, 2]);
        let labels = Tensor::from_vec(vec![0i64, 1, 1], &[3]);
        assert!((accuracy(&out, &labels) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn gradients_reach_all_layers() {
        let mut rng = Rng64::new(6);
        let net = Sequential::new(vec![
            Box::new(Linear::new(3, 4, &mut rng)),
            Box::new(ReLU),
            Box::new(Linear::new(4, 2, &mut rng)),
        ]);
        let x = Var::constant(F32Tensor::ones(&[2, 3]));
        let loss = net.forward(&x).square().mean();
        loss.backward();
        for p in net.parameters() {
            assert!(p.grad().is_some(), "every layer must receive gradient");
        }
        net.zero_grad();
        assert!(net.parameters().iter().all(|p| p.grad().is_none()));
    }
}
