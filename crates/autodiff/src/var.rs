//! The differentiable variable and the backward pass.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use tdp_tensor::F32Tensor;

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Gradient function: maps the output gradient to one gradient per parent,
/// each shaped like the corresponding parent's value.
pub(crate) type BackwardFn = Box<dyn Fn(&F32Tensor) -> Vec<F32Tensor>>;

pub(crate) struct VarInner {
    id: u64,
    value: RefCell<F32Tensor>,
    grad: RefCell<Option<F32Tensor>>,
    requires_grad: bool,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
}

impl Drop for VarInner {
    // Default recursive drop of a long `Rc` chain overflows the stack for
    // deep tapes (e.g. many-iteration unrolled programs); unlink iteratively.
    fn drop(&mut self) {
        let mut stack: Vec<Var> = std::mem::take(&mut self.parents);
        while let Some(v) = stack.pop() {
            if let Ok(mut inner) = Rc::try_unwrap(v.0) {
                stack.append(&mut inner.parents);
                // `inner` drops here with no parents left -> no recursion.
            }
        }
    }
}

/// A node in the dynamically-taped computation graph.
///
/// `Var` is a cheap handle (`Rc` clone). Graphs are built eagerly by calling
/// ops (see [`crate::ops`]); dropping the last handle to an output frees the
/// whole tape hanging off it.
#[derive(Clone)]
pub struct Var(pub(crate) Rc<VarInner>);

impl Var {
    fn make(
        value: F32Tensor,
        requires_grad: bool,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
    ) -> Var {
        Var(Rc::new(VarInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(None),
            requires_grad,
            parents,
            backward,
        }))
    }

    /// A leaf that does not require gradients (inputs, labels).
    pub fn constant(value: F32Tensor) -> Var {
        Var::make(value, false, Vec::new(), None)
    }

    /// A trainable leaf: its gradient is retained across the backward pass.
    pub fn param(value: F32Tensor) -> Var {
        Var::make(value, true, Vec::new(), None)
    }

    pub(crate) fn from_op(value: F32Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        Var::make(value, false, parents, Some(backward))
    }

    /// Unique node id (creation order).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Snapshot of the current value (O(1): tensors are copy-on-write).
    pub fn value(&self) -> F32Tensor {
        self.0.value.borrow().clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> Vec<usize> {
        self.0.value.borrow().shape().to_vec()
    }

    /// Number of elements in the value.
    pub fn numel(&self) -> usize {
        self.0.value.borrow().numel()
    }

    /// Whether this is a trainable leaf.
    pub fn is_param(&self) -> bool {
        self.0.requires_grad
    }

    /// Whether this is a leaf (no recorded parents).
    pub fn is_leaf(&self) -> bool {
        self.0.parents.is_empty()
    }

    /// Currently accumulated gradient, if any.
    pub fn grad(&self) -> Option<F32Tensor> {
        self.0.grad.borrow().clone()
    }

    /// Clear the accumulated gradient.
    pub fn zero_grad(&self) {
        *self.0.grad.borrow_mut() = None;
    }

    /// Accumulate a gradient contribution from outside the tape (gradient
    /// clipping, hand-written adjoints). Shape must match the value.
    pub fn add_grad(&self, g: F32Tensor) {
        self.accumulate_grad(g);
    }

    /// Replace the stored value in place — the optimizer update path.
    /// Only meaningful on leaves; interior nodes are recomputed each forward.
    pub fn set_value(&self, value: F32Tensor) {
        assert!(
            self.is_leaf(),
            "set_value on an interior graph node would desynchronise the tape"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// A new constant leaf sharing this node's current value — cuts the tape.
    pub fn detach(&self) -> Var {
        Var::constant(self.value())
    }

    pub(crate) fn accumulate_grad(&self, g: F32Tensor) {
        debug_assert_eq!(
            g.shape(),
            self.0.value.borrow().shape(),
            "gradient shape must match value shape"
        );
        let mut slot = self.0.grad.borrow_mut();
        match slot.as_mut() {
            Some(acc) => acc.add_assign(&g),
            None => *slot = Some(g),
        }
    }

    /// Run reverse-mode differentiation seeded with ones (suitable for a
    /// scalar loss; for non-scalar outputs this computes the gradient of the
    /// elementwise sum).
    pub fn backward(&self) {
        let seed = F32Tensor::ones(&self.shape());
        self.backward_with(seed);
    }

    /// Run reverse-mode differentiation with an explicit output gradient.
    pub fn backward_with(&self, seed: F32Tensor) {
        assert_eq!(
            seed.shape(),
            self.shape().as_slice(),
            "backward seed shape must match output shape"
        );
        let order = self.topo_order();
        self.accumulate_grad(seed);
        // `order` is parents-before-children; walk it childmost-first.
        for node in order.iter().rev() {
            let Some(bw) = node.0.backward.as_ref() else {
                continue;
            };
            // A node with no accumulated gradient is off the path from the
            // seed (e.g. an unused TVF output column): nothing to propagate.
            let Some(g) = node.grad() else { continue };
            let parent_grads = bw(&g);
            assert_eq!(
                parent_grads.len(),
                node.0.parents.len(),
                "backward closure must yield one gradient per parent"
            );
            for (p, pg) in node.0.parents.iter().zip(parent_grads) {
                p.accumulate_grad(pg);
            }
            // Interior gradients are no longer needed once propagated;
            // dropping them keeps long training loops lean.
            if !node.0.requires_grad && !node.is_leaf() {
                node.zero_grad();
            }
        }
    }

    /// Topological order (ancestors before descendants) of the subgraph
    /// reachable from `self`. Iterative DFS — query graphs can be deep.
    fn topo_order(&self) -> Vec<Var> {
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Stack frames: (node, next-parent-index).
        let mut stack: Vec<(Var, usize)> = vec![(self.clone(), 0)];
        visited.insert(self.0.id);
        while let Some((node, pi)) = stack.pop() {
            if pi < node.0.parents.len() {
                let parent = node.0.parents[pi].clone();
                stack.push((node, pi + 1));
                if visited.insert(parent.0.id) {
                    stack.push((parent, 0));
                }
            } else {
                order.push(node);
            }
        }
        order
    }

    /// All trainable leaves reachable from this node, in first-use order.
    /// This is how a compiled query discovers the parameters embedded in
    /// its UDFs/TVFs (paper Listing 5: `compiled_query.parameters()`).
    pub fn parameters(&self) -> Vec<Var> {
        self.topo_order()
            .into_iter()
            .filter(|v| v.is_param())
            .collect()
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Var(id={}, shape={:?}, param={}, leaf={})",
            self.0.id,
            self.shape(),
            self.is_param(),
            self.is_leaf()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdp_tensor::Tensor;

    fn t(v: Vec<f32>) -> F32Tensor {
        let n = v.len();
        Tensor::from_vec(v, &[n])
    }

    #[test]
    fn leaf_flags() {
        let p = Var::param(t(vec![1.0]));
        let c = Var::constant(t(vec![1.0]));
        assert!(p.is_param() && p.is_leaf());
        assert!(!c.is_param() && c.is_leaf());
        let s = p.add(&c);
        assert!(!s.is_leaf() && !s.is_param());
    }

    #[test]
    fn simple_chain_gradient() {
        let x = Var::param(t(vec![2.0]));
        let y = x.mul(&x).mul_scalar(3.0); // y = 3x^2, dy/dx = 6x = 12
        y.backward();
        assert_eq!(y.value().item(), 12.0);
        assert_eq!(x.grad().unwrap().item(), 12.0);
    }

    #[test]
    fn gradient_accumulates_across_backwards() {
        let x = Var::param(t(vec![1.0]));
        let y = x.mul_scalar(2.0);
        y.backward();
        let y2 = x.mul_scalar(2.0);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 4.0, "two backwards accumulate");
        x.zero_grad();
        assert!(x.grad().is_none());
    }

    #[test]
    fn diamond_graph_accumulates_fanout() {
        // y = x*x + x  ==> dy/dx = 2x + 1
        let x = Var::param(t(vec![3.0]));
        let y = x.mul(&x).add(&x);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 7.0);
    }

    #[test]
    fn set_value_updates_leaf() {
        let x = Var::param(t(vec![1.0]));
        x.set_value(t(vec![5.0]));
        let y = x.mul_scalar(2.0);
        assert_eq!(y.value().item(), 10.0);
    }

    #[test]
    #[should_panic(expected = "interior graph node")]
    fn set_value_on_interior_panics() {
        let x = Var::param(t(vec![1.0]));
        let y = x.mul_scalar(2.0);
        y.set_value(t(vec![0.0]));
    }

    #[test]
    fn detach_cuts_the_tape() {
        let x = Var::param(t(vec![2.0]));
        let y = x.mul(&x).detach().mul_scalar(5.0);
        y.backward();
        assert!(x.grad().is_none(), "no gradient may flow through detach");
    }

    #[test]
    fn parameters_discovery() {
        let w1 = Var::param(t(vec![1.0]));
        let w2 = Var::param(t(vec![2.0]));
        let x = Var::constant(t(vec![3.0]));
        let y = w1.mul(&x).add(&w2);
        let ps = y.parameters();
        assert_eq!(ps.len(), 2);
        let ids: Vec<u64> = ps.iter().map(|p| p.id()).collect();
        assert!(ids.contains(&w1.id()) && ids.contains(&w2.id()));
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let x = Var::param(t(vec![1.0]));
        let mut y = x.clone();
        for _ in 0..20_000 {
            y = y.add_scalar(0.0);
        }
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 1.0);
    }

    #[test]
    fn unused_branch_gets_no_gradient() {
        let x = Var::param(t(vec![1.0]));
        let _unused = x.mul_scalar(100.0);
        let y = x.mul_scalar(2.0);
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }
}
