//! Finite-difference gradient checking.
//!
//! Every differentiable operator in the platform is validated against
//! central finite differences; the soft relational operators in `tdp-exec`
//! reuse this harness, so a wrong adjoint anywhere in a trainable query is
//! caught by tests rather than by silently broken training curves.

use tdp_tensor::Tensor;

use crate::var::Var;

/// Analytic-vs-numeric gradient comparison.
///
/// Builds `Var::param`s from `(inputs, shapes)`, runs `f` to produce a
/// scalar-valued output (non-scalar outputs are summed), computes analytic
/// gradients by backprop and numeric gradients by central differences, and
/// panics with a diagnostic if any component differs by more than `tol`
/// (measured as absolute error relative to `max(1, |numeric|)`).
pub fn check_gradients<F>(inputs: &[Vec<f32>], shapes: &[Vec<usize>], f: F, tol: f64)
where
    F: Fn(&[Var]) -> Var,
{
    assert_eq!(inputs.len(), shapes.len(), "one shape per input");
    let params: Vec<Var> = inputs
        .iter()
        .zip(shapes)
        .map(|(data, shape)| Var::param(Tensor::from_vec(data.clone(), shape)))
        .collect();

    // Analytic pass.
    let out = f(&params);
    let out = if out.numel() == 1 { out } else { out.sum() };
    out.backward();
    let analytic: Vec<Vec<f32>> = params
        .iter()
        .map(|p| {
            p.grad()
                .map(|g| g.to_vec())
                .unwrap_or_else(|| vec![0.0; p.numel()])
        })
        .collect();

    // Numeric pass: central differences at a step balancing truncation
    // against f32 rounding error.
    let h = 1e-3f32;
    let eval = |perturbed: &[Vec<f32>]| -> f64 {
        let vars: Vec<Var> = perturbed
            .iter()
            .zip(shapes)
            .map(|(data, shape)| Var::param(Tensor::from_vec(data.clone(), shape)))
            .collect();
        let o = f(&vars);
        let o = if o.numel() == 1 { o } else { o.sum() };
        o.value().item() as f64
    };

    for (pi, input) in inputs.iter().enumerate() {
        for ei in 0..input.len() {
            let mut plus: Vec<Vec<f32>> = inputs.to_vec();
            let mut minus: Vec<Vec<f32>> = inputs.to_vec();
            plus[pi][ei] += h;
            minus[pi][ei] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h as f64);
            let got = analytic[pi][ei] as f64;
            let denom = numeric.abs().max(1.0);
            assert!(
                ((got - numeric) / denom).abs() <= tol,
                "gradient mismatch at input {pi} element {ei}: analytic {got}, numeric {numeric}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_correct_gradients() {
        check_gradients(
            &[vec![1.0, -2.0, 0.5]],
            &[vec![3]],
            |vars| vars[0].square().sum(),
            1e-3,
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn rejects_wrong_gradients() {
        // detach() drops the dependence on x, so the analytic gradient is 0
        // while x still influences the numeric value — a guaranteed mismatch.
        check_gradients(
            &[vec![1.0, 2.0]],
            &[vec![2]],
            |vars| vars[0].detach().mul(&vars[0]).sum(),
            1e-3,
        );
    }

    #[test]
    fn multi_input_functions() {
        check_gradients(
            &[vec![0.3, 0.7], vec![1.5]],
            &[vec![2], vec![1]],
            |vars| vars[0].mul(&vars[1]).sigmoid().sum(),
            1e-2,
        );
    }
}
