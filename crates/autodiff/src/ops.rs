//! Differentiable tensor operations on [`Var`].
//!
//! Each op computes the forward value eagerly with `tdp-tensor` kernels and
//! records a backward closure. Binary arithmetic is broadcast-aware: the
//! backward pass sums gradients over broadcast dimensions so parameters of
//! any shape (biases, thresholds, per-class scales) train correctly.

use tdp_tensor::conv::{col2im, im2col, Conv2dGeom};
use tdp_tensor::index::concat_rows as t_concat_rows;
use tdp_tensor::{F32Tensor, I64Tensor, Tensor};

use crate::var::Var;

/// Sum `g` down to `shape`, undoing NumPy-style broadcasting. The inverse of
/// `broadcast_to` in the adjoint sense.
pub fn reduce_to_shape(g: &F32Tensor, shape: &[usize]) -> F32Tensor {
    if g.shape() == shape {
        return g.clone();
    }
    let mut cur = g.clone();
    // Collapse leading extra dims.
    while cur.ndim() > shape.len() {
        cur = cur.sum_dim(0, false);
    }
    // Sum dims where the target is 1 but the gradient is larger.
    #[allow(clippy::needless_range_loop)] // d indexes two slices in lockstep
    for d in 0..shape.len() {
        if shape[d] == 1 && cur.shape()[d] != 1 {
            cur = cur.sum_dim(d, true);
        }
    }
    assert_eq!(cur.shape(), shape, "gradient not reducible to target shape");
    cur
}

impl Var {
    // ------------------------------------------------------------------
    // Binary arithmetic (broadcasting)
    // ------------------------------------------------------------------

    pub fn add(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.value().add(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![reduce_to_shape(g, &sa), reduce_to_shape(g, &sb)]),
        )
    }

    pub fn sub(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let value = self.value().sub(&other.value());
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| vec![reduce_to_shape(g, &sa), reduce_to_shape(&g.neg(), &sb)]),
        )
    }

    pub fn mul(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let (av, bv) = (self.value(), other.value());
        let value = av.mul(&bv);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                vec![
                    reduce_to_shape(&g.mul(&bv), &sa),
                    reduce_to_shape(&g.mul(&av), &sb),
                ]
            }),
        )
    }

    pub fn div(&self, other: &Var) -> Var {
        let (sa, sb) = (self.shape(), other.shape());
        let (av, bv) = (self.value(), other.value());
        let value = av.div(&bv);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let ga = g.div(&bv);
                // d/db (a/b) = -a / b^2
                let gb = g.mul(&av).div(&bv.mul(&bv)).neg();
                vec![reduce_to_shape(&ga, &sa), reduce_to_shape(&gb, &sb)]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Scalar arithmetic
    // ------------------------------------------------------------------

    pub fn add_scalar(&self, v: f32) -> Var {
        Var::from_op(
            self.value().add_scalar(v),
            vec![self.clone()],
            Box::new(move |g| vec![g.clone()]),
        )
    }

    pub fn sub_scalar(&self, v: f32) -> Var {
        self.add_scalar(-v)
    }

    pub fn mul_scalar(&self, v: f32) -> Var {
        Var::from_op(
            self.value().mul_scalar(v),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul_scalar(v)]),
        )
    }

    pub fn div_scalar(&self, v: f32) -> Var {
        self.mul_scalar(1.0 / v)
    }

    pub fn neg(&self) -> Var {
        self.mul_scalar(-1.0)
    }

    // ------------------------------------------------------------------
    // Unary maps
    // ------------------------------------------------------------------

    pub fn relu(&self) -> Var {
        let v = self.value();
        let mask = v.gt_scalar(0.0).to_f32_mask();
        Var::from_op(
            v.relu(),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&mask)]),
        )
    }

    pub fn sigmoid(&self) -> Var {
        let s = self.value().sigmoid();
        let s2 = s.clone();
        Var::from_op(
            s,
            vec![self.clone()],
            Box::new(move |g| {
                let one_minus = s2.neg().add_scalar(1.0);
                vec![g.mul(&s2).mul(&one_minus)]
            }),
        )
    }

    pub fn tanh(&self) -> Var {
        let t = self.value().tanh_t();
        let t2 = t.clone();
        Var::from_op(
            t,
            vec![self.clone()],
            Box::new(move |g| {
                let d = t2.mul(&t2).neg().add_scalar(1.0);
                vec![g.mul(&d)]
            }),
        )
    }

    pub fn exp(&self) -> Var {
        let e = self.value().exp();
        let e2 = e.clone();
        Var::from_op(e, vec![self.clone()], Box::new(move |g| vec![g.mul(&e2)]))
    }

    pub fn ln(&self) -> Var {
        let v = self.value();
        Var::from_op(
            v.ln(),
            vec![self.clone()],
            Box::new(move |g| vec![g.div(&v)]),
        )
    }

    pub fn sqrt(&self) -> Var {
        let r = self.value().sqrt();
        let r2 = r.clone();
        Var::from_op(
            r,
            vec![self.clone()],
            Box::new(move |g| vec![g.div(&r2.mul_scalar(2.0))]),
        )
    }

    /// Elementwise square — common enough in losses to deserve a fused op.
    pub fn square(&self) -> Var {
        let v = self.value();
        Var::from_op(
            v.mul(&v),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&v.mul_scalar(2.0))]),
        )
    }

    pub fn abs(&self) -> Var {
        let v = self.value();
        let sign = v.map(|x| if x >= 0.0 { 1.0f32 } else { -1.0 });
        Var::from_op(
            v.abs(),
            vec![self.clone()],
            Box::new(move |g| vec![g.mul(&sign)]),
        )
    }

    // ------------------------------------------------------------------
    // Shape ops
    // ------------------------------------------------------------------

    pub fn reshape(&self, shape: &[usize]) -> Var {
        let orig = self.shape();
        Var::from_op(
            self.value().reshape(shape),
            vec![self.clone()],
            Box::new(move |g| vec![g.reshape(&orig)]),
        )
    }

    pub fn flatten(&self) -> Var {
        let n = self.numel();
        self.reshape(&[n])
    }

    pub fn permute(&self, dims: &[usize]) -> Var {
        let dims_v = dims.to_vec();
        let mut inverse = vec![0usize; dims.len()];
        for (i, &d) in dims.iter().enumerate() {
            inverse[d] = i;
        }
        Var::from_op(
            self.value().permute(&dims_v),
            vec![self.clone()],
            Box::new(move |g| vec![g.permute(&inverse)]),
        )
    }

    pub fn transpose(&self) -> Var {
        self.permute(&[1, 0])
    }

    pub fn broadcast_to(&self, shape: &[usize]) -> Var {
        let orig = self.shape();
        Var::from_op(
            self.value().broadcast_to(shape),
            vec![self.clone()],
            Box::new(move |g| vec![reduce_to_shape(g, &orig)]),
        )
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements, as a scalar-shaped Var.
    pub fn sum(&self) -> Var {
        let shape = self.shape();
        let total = self.value().sum();
        Var::from_op(
            Tensor::scalar(total),
            vec![self.clone()],
            Box::new(move |g| vec![Tensor::full(&shape, g.item())]),
        )
    }

    /// Mean of all elements, as a scalar-shaped Var.
    pub fn mean(&self) -> Var {
        let n = self.numel() as f32;
        self.sum().div_scalar(n)
    }

    pub fn sum_dim(&self, dim: usize, keepdim: bool) -> Var {
        let orig = self.shape();
        Var::from_op(
            self.value().sum_dim(dim, keepdim),
            vec![self.clone()],
            Box::new(move |g| {
                // Re-expand the reduced axis and broadcast back.
                let mut with_axis = g.clone();
                if with_axis.ndim() < orig.len() {
                    with_axis = with_axis.unsqueeze(dim);
                }
                vec![with_axis.broadcast_to(&orig)]
            }),
        )
    }

    pub fn mean_dim(&self, dim: usize, keepdim: bool) -> Var {
        let n = self.shape()[dim] as f32;
        self.sum_dim(dim, keepdim).div_scalar(n)
    }

    // ------------------------------------------------------------------
    // Softmax family
    // ------------------------------------------------------------------

    pub fn softmax(&self, dim: usize) -> Var {
        let s = self.value().softmax(dim);
        let s2 = s.clone();
        Var::from_op(
            s,
            vec![self.clone()],
            Box::new(move |g| {
                // dx = s ⊙ (g − ⟨g, s⟩ along dim)
                let inner = g.mul(&s2).sum_dim(dim, true);
                vec![s2.mul(&g.sub(&inner))]
            }),
        )
    }

    pub fn log_softmax(&self, dim: usize) -> Var {
        let ls = self.value().log_softmax(dim);
        let soft = ls.exp();
        Var::from_op(
            ls,
            vec![self.clone()],
            Box::new(move |g| {
                let gsum = g.sum_dim(dim, true);
                vec![g.sub(&soft.mul(&gsum))]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    pub fn matmul(&self, other: &Var) -> Var {
        let (av, bv) = (self.value(), other.value());
        let value = av.matmul(&bv);
        Var::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let ga = g.matmul(&bv.transpose());
                let gb = av.transpose().matmul(g);
                vec![ga, gb]
            }),
        )
    }

    // ------------------------------------------------------------------
    // Convolution and pooling
    // ------------------------------------------------------------------

    /// Differentiable 2-d convolution; `self` is NCHW input, `weight` is
    /// `[o, c, kh, kw]`, optional `bias` `[o]`. Gradients flow to all three.
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, stride: usize, pad: usize) -> Var {
        let input_v = self.value();
        let weight_v = weight.value();
        let (n, c, h, w) = (
            input_v.shape()[0],
            input_v.shape()[1],
            input_v.shape()[2],
            input_v.shape()[3],
        );
        let (o, kh, kw) = (
            weight_v.shape()[0],
            weight_v.shape()[2],
            weight_v.shape()[3],
        );
        let g = Conv2dGeom::new(kh, kw, stride, pad);
        let (oh, ow) = g.out_size(h, w);

        let cols = im2col(&input_v, g); // [n*oh*ow, c*kh*kw]
        let wmat = weight_v.reshape(&[o, c * kh * kw]); // [o, ckk]
        let mut out = cols.matmul(&wmat.transpose()); // [n*oh*ow, o]
        if let Some(b) = bias {
            out = out.add(&b.value().reshape(&[1, o]));
        }
        let value = out.reshape(&[n, oh, ow, o]).permute(&[0, 3, 1, 2]);

        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(b) = bias {
            parents.push(b.clone());
        }
        let has_bias = bias.is_some();
        Var::from_op(
            value,
            parents,
            Box::new(move |grad| {
                // [n, o, oh, ow] -> [n*oh*ow, o]
                let gmat = grad.permute(&[0, 2, 3, 1]).reshape(&[n * oh * ow, o]);
                let d_w = gmat.transpose().matmul(&cols).reshape(&[o, c, kh, kw]);
                let d_cols = gmat.matmul(&wmat); // [n*oh*ow, ckk]
                let d_x = col2im(&d_cols, n, c, h, w, g);
                let mut grads = vec![d_x, d_w];
                if has_bias {
                    grads.push(gmat.sum_dim(0, false));
                }
                grads
            }),
        )
    }

    /// Differentiable max pooling (kernel `k`, stride `stride`).
    pub fn max_pool2d(&self, k: usize, stride: usize) -> Var {
        let input_v = self.value();
        let (n, c, h, w) = (
            input_v.shape()[0],
            input_v.shape()[1],
            input_v.shape()[2],
            input_v.shape()[3],
        );
        let (vals, idx) = input_v.max_pool2d(k, stride);
        let (oh, ow) = (vals.shape()[2], vals.shape()[3]);
        Var::from_op(
            vals,
            vec![self.clone()],
            Box::new(move |g| {
                let mut dx = vec![0.0f32; n * c * h * w];
                let gd = g.data();
                let id = idx.data();
                for bc in 0..n * c {
                    for p in 0..oh * ow {
                        let flat = bc * oh * ow + p;
                        dx[bc * h * w + id[flat] as usize] += gd[flat];
                    }
                }
                vec![Tensor::from_vec(dx, &[n, c, h, w])]
            }),
        )
    }

    /// Global average pooling `[n, c, h, w] -> [n, c]`.
    pub fn global_avg_pool(&self) -> Var {
        let s = self.shape();
        assert_eq!(s.len(), 4, "global_avg_pool expects NCHW");
        self.reshape(&[s[0], s[1], s[2] * s[3]]).mean_dim(2, false)
    }

    // ------------------------------------------------------------------
    // Data movement
    // ------------------------------------------------------------------

    /// Differentiable row gather: output row i is input row `idx[i]`.
    /// Backward scatter-adds, so repeated rows accumulate gradient.
    pub fn select_rows(&self, idx: &I64Tensor) -> Var {
        let orig = self.shape();
        let idx2 = idx.clone();
        Var::from_op(
            self.value().select_rows(idx),
            vec![self.clone()],
            Box::new(move |g| vec![F32Tensor::zeros(&orig).scatter_add_rows(&idx2, g)]),
        )
    }

    /// Contiguous sub-range along a dimension (differentiable).
    pub fn narrow(&self, dim: usize, start: usize, len: usize) -> Var {
        let orig = self.shape();
        Var::from_op(
            self.value().narrow(dim, start, len),
            vec![self.clone()],
            Box::new(move |g| {
                // Pad the gradient back with zeros around the window.
                let mut full = F32Tensor::zeros(&orig);
                let outer: usize = orig[..dim].iter().product();
                let inner: usize = orig[dim + 1..].iter().product();
                let gd = g.data().to_vec();
                let fd = full.data_mut();
                for o in 0..outer {
                    for l in 0..len {
                        let src = (o * len + l) * inner;
                        let dst = (o * orig[dim] + start + l) * inner;
                        fd[dst..dst + inner].copy_from_slice(&gd[src..src + inner]);
                    }
                }
                vec![full]
            }),
        )
    }

    /// Concatenate along the leading dimension (differentiable).
    pub fn concat_rows(parts: &[&Var]) -> Var {
        assert!(!parts.is_empty(), "concat of zero Vars");
        let values: Vec<F32Tensor> = parts.iter().map(|p| p.value()).collect();
        let refs: Vec<&F32Tensor> = values.iter().collect();
        let value = t_concat_rows(&refs);
        let row_counts: Vec<usize> = values.iter().map(|v| v.rows()).collect();
        Var::from_op(
            value,
            parts.iter().map(|p| (*p).clone()).collect(),
            Box::new(move |g| {
                let mut grads = Vec::with_capacity(row_counts.len());
                let mut start = 0usize;
                for &rc in &row_counts {
                    grads.push(g.narrow(0, start, rc));
                    start += rc;
                }
                grads
            }),
        )
    }

    // ------------------------------------------------------------------
    // Losses
    // ------------------------------------------------------------------

    /// Mean-squared error against a constant target.
    pub fn mse_loss(&self, target: &F32Tensor) -> Var {
        let t = Var::constant(target.clone());
        self.sub(&t).square().mean()
    }

    /// Cross-entropy with integer class targets; `self` is `[n, classes]`
    /// logits. Uses the log-softmax lowering.
    pub fn cross_entropy(&self, targets: &I64Tensor) -> Var {
        let n = self.shape()[0];
        let classes = self.shape()[1];
        assert_eq!(targets.numel(), n, "one target per row");
        let onehot = tdp_tensor::index::one_hot(targets, classes);
        let ls = self.log_softmax(1);
        ls.mul(&Var::constant(onehot))
            .sum()
            .div_scalar(n as f32)
            .neg()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use tdp_tensor::Rng64;

    fn v(data: Vec<f32>, shape: &[usize]) -> Var {
        Var::param(Tensor::from_vec(data, shape))
    }

    #[test]
    fn reduce_to_shape_handles_broadcast_axes() {
        let g = Tensor::from_vec(vec![1.0f32; 6], &[2, 3]);
        assert_eq!(reduce_to_shape(&g, &[2, 3]).shape(), &[2, 3]);
        assert_eq!(reduce_to_shape(&g, &[3]).to_vec(), vec![2.0, 2.0, 2.0]);
        assert_eq!(reduce_to_shape(&g, &[2, 1]).to_vec(), vec![3.0, 3.0]);
        assert_eq!(reduce_to_shape(&g, &[1, 3]).to_vec(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn broadcast_add_bias_gradient() {
        // [2,3] + [3] — the classic dense-layer bias pattern.
        let x = v(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = v(vec![0.1, 0.2, 0.3], &[3]);
        let y = x.add(&b).sum();
        y.backward();
        assert_eq!(b.grad().unwrap().to_vec(), vec![2.0, 2.0, 2.0]);
        assert_eq!(x.grad().unwrap().to_vec(), vec![1.0; 6]);
    }

    #[test]
    fn mul_div_gradients() {
        let a = v(vec![2.0], &[1]);
        let b = v(vec![4.0], &[1]);
        let y = a.mul(&b).div(&a.add_scalar(2.0)); // y = 2*4/(2+2) = 2
        y.backward();
        assert!((y.value().item() - 2.0).abs() < 1e-6);
        // Finite-difference verify both parameters.
        check_gradients(
            &[vec![2.0], vec![4.0]],
            &[vec![1], vec![1]],
            |vars| vars[0].mul(&vars[1]).div(&vars[0].add_scalar(2.0)),
            1e-2,
        );
    }

    #[test]
    fn matmul_gradient_matches_finite_difference() {
        let mut rng = Rng64::new(5);
        let a: Vec<f32> = (0..6).map(|_| rng.normal() as f32).collect();
        let b: Vec<f32> = (0..12).map(|_| rng.normal() as f32).collect();
        check_gradients(
            &[a, b],
            &[vec![2, 3], vec![3, 4]],
            |vars| vars[0].matmul(&vars[1]).sum(),
            1e-2,
        );
    }

    #[test]
    fn unary_gradients_match_finite_difference() {
        let xs = vec![0.5f32, -1.25, 2.0, 0.1];
        for f in [
            (|v: &Var| v.sigmoid().sum()) as fn(&Var) -> Var,
            |v| v.tanh().sum(),
            |v| v.exp().sum(),
            |v| v.square().sum(),
            |v| v.relu().sum(),
            |v| v.abs().sum(),
        ] {
            check_gradients(
                std::slice::from_ref(&xs),
                &[vec![4]],
                |vars| f(&vars[0]),
                1e-2,
            );
        }
        // ln and sqrt need positive inputs.
        let pos = vec![0.5f32, 1.25, 2.0, 0.1];
        check_gradients(
            std::slice::from_ref(&pos),
            &[vec![4]],
            |vars| vars[0].ln().sum(),
            1e-2,
        );
        check_gradients(&[pos], &[vec![4]], |vars| vars[0].sqrt().sum(), 1e-2);
    }

    #[test]
    fn softmax_gradient() {
        let xs = vec![0.2f32, -0.4, 1.1, 0.0, 0.7, -1.0];
        check_gradients(
            std::slice::from_ref(&xs),
            &[vec![2, 3]],
            |vars| {
                // weighted sum so the gradient is not trivially zero
                let w = Var::constant(Tensor::from_vec(
                    vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
                    &[2, 3],
                ));
                vars[0].softmax(1).mul(&w).sum()
            },
            1e-2,
        );
        check_gradients(
            &[xs],
            &[vec![2, 3]],
            |vars| {
                let w = Var::constant(Tensor::from_vec(
                    vec![0.5, -1.0, 2.0, 1.0, 0.0, -0.5],
                    &[2, 3],
                ));
                vars[0].log_softmax(1).mul(&w).sum()
            },
            1e-2,
        );
    }

    #[test]
    fn reductions_and_reshape_gradients() {
        let xs: Vec<f32> = (0..12).map(|i| i as f32 / 3.0 - 2.0).collect();
        check_gradients(
            std::slice::from_ref(&xs),
            &[vec![3, 4]],
            |vars| vars[0].sum_dim(0, false).square().sum(),
            1e-2,
        );
        check_gradients(
            std::slice::from_ref(&xs),
            &[vec![3, 4]],
            |vars| vars[0].mean_dim(1, true).square().sum(),
            1e-2,
        );
        check_gradients(
            &[xs],
            &[vec![3, 4]],
            |vars| vars[0].reshape(&[4, 3]).transpose().square().mean(),
            1e-2,
        );
    }

    #[test]
    fn broadcast_to_gradient_sums_over_copies() {
        // The trainable-threshold path: a [1] parameter broadcast to [n]
        // must receive the *sum* of the per-row gradients.
        let theta = Var::param(Tensor::from_vec(vec![0.5f32], &[1]));
        let weights = Var::constant(Tensor::from_vec(vec![1.0f32, 2.0, 3.0], &[3]));
        theta.broadcast_to(&[3]).mul(&weights).sum().backward();
        assert_eq!(theta.grad().unwrap().to_vec(), vec![6.0]);
        // Finite-difference check through a nonlinearity.
        check_gradients(
            &[vec![0.3f32]],
            &[vec![1]],
            |vars| vars[0].broadcast_to(&[4]).sigmoid().sum(),
            1e-2,
        );
    }

    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let mut rng = Rng64::new(9);
        let x: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect(); // [1,2,4,4]
        let w: Vec<f32> = (0..36).map(|_| rng.normal() as f32 * 0.5).collect(); // [2,2,3,3]
        let b: Vec<f32> = vec![0.1, -0.2];
        check_gradients(
            &[x, w, b],
            &[vec![1, 2, 4, 4], vec![2, 2, 3, 3], vec![2]],
            |vars| {
                vars[0]
                    .conv2d(&vars[1], Some(&vars[2]), 1, 1)
                    .square()
                    .mean()
            },
            2e-2,
        );
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let x = v(vec![1.0, 3.0, 2.0, 0.0], &[1, 1, 2, 2]);
        let y = x.max_pool2d(2, 2).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().to_vec(), vec![0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn select_rows_scatter_gradient() {
        let x = v(vec![1.0, 2.0, 3.0], &[3]);
        let idx = Tensor::from_vec(vec![2i64, 2, 0], &[3]);
        let y = x.select_rows(&idx).sum();
        y.backward();
        assert_eq!(x.grad().unwrap().to_vec(), vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn narrow_and_concat_gradients() {
        let a = v(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        let b = v(vec![5.0, 6.0], &[2]);
        let y = Var::concat_rows(&[&a, &b]).narrow(0, 3, 2).sum();
        y.backward();
        assert_eq!(a.grad().unwrap().to_vec(), vec![0.0, 0.0, 0.0, 1.0]);
        assert_eq!(b.grad().unwrap().to_vec(), vec![1.0, 0.0]);
    }

    #[test]
    fn mse_loss_value_and_gradient() {
        let x = v(vec![1.0, 2.0], &[2]);
        let target = Tensor::from_vec(vec![0.0f32, 0.0], &[2]);
        let loss = x.mse_loss(&target);
        assert!((loss.value().item() - 2.5).abs() < 1e-6); // (1+4)/2
        loss.backward();
        assert_eq!(x.grad().unwrap().to_vec(), vec![1.0, 2.0]); // 2(x-t)/n
    }

    #[test]
    fn cross_entropy_decreases_with_correct_logit() {
        let good = v(vec![5.0, -5.0], &[1, 2]);
        let bad = v(vec![-5.0, 5.0], &[1, 2]);
        let t = Tensor::from_vec(vec![0i64], &[1]);
        assert!(good.cross_entropy(&t).value().item() < bad.cross_entropy(&t).value().item());
        let loss = bad.cross_entropy(&t);
        loss.backward();
        let g = bad.grad().unwrap();
        assert!(g.at(0) < 0.0, "gradient must push the correct logit up");
        assert!(g.at(1) > 0.0);
    }

    #[test]
    fn training_converges_linear_regression() {
        // y = 2x - 1 learned by gradient descent through the tape.
        let mut rng = Rng64::new(77);
        let xs: Vec<f32> = (0..64)
            .map(|_| rng.uniform_range(-1.0, 1.0) as f32)
            .collect();
        let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x - 1.0).collect();
        let x = Tensor::from_vec(xs, &[64, 1]);
        let y = Tensor::from_vec(ys, &[64, 1]);
        let w = Var::param(Tensor::from_vec(vec![0.0f32], &[1, 1]));
        let b = Var::param(Tensor::from_vec(vec![0.0f32], &[1]));
        let mut last = f32::MAX;
        for _ in 0..200 {
            w.zero_grad();
            b.zero_grad();
            let pred = Var::constant(x.clone()).matmul(&w).add(&b);
            let loss = pred.mse_loss(&y);
            loss.backward();
            let lv = loss.value().item();
            assert!(lv.is_finite());
            last = lv;
            for p in [&w, &b] {
                let g = p.grad().unwrap();
                p.set_value(p.value().sub(&g.mul_scalar(0.5)));
            }
        }
        assert!(last < 1e-3, "regression should converge, loss={last}");
        assert!((w.value().item() - 2.0).abs() < 0.05);
        assert!((b.value().item() + 1.0).abs() < 0.05);
    }
}
