//! # tdp-autodiff
//!
//! Tape-based reverse-mode automatic differentiation over
//! [`tdp_tensor::F32Tensor`]. This is the autograd half of the Tensor
//! Computation Runtime substrate: it gives the Tensor Data Platform the
//! capability the paper gets from PyTorch's autograd — *trainable queries*
//! whose relational operators, UDFs and TVFs are differentiated end-to-end
//! (paper §4).
//!
//! ## Model
//!
//! A [`Var`] wraps a tensor value plus an optional backward edge into the
//! dynamically-built computation graph. Calling an op on `Var`s computes the
//! forward value eagerly and records a closure that maps the output gradient
//! to input gradients. [`Var::backward`] runs the closures in reverse
//! topological order and accumulates gradients into every node; parameters
//! (created with [`Var::param`]) keep their gradient until
//! [`Var::zero_grad`].
//!
//! ```
//! use tdp_autodiff::Var;
//! use tdp_tensor::Tensor;
//!
//! let w = Var::param(Tensor::from_vec(vec![3.0f32], &[1]));
//! let x = Var::constant(Tensor::from_vec(vec![2.0f32], &[1]));
//! let y = w.mul(&x).add_scalar(1.0); // y = 3*2 + 1
//! y.backward();
//! assert_eq!(y.value().item(), 7.0);
//! assert_eq!(w.grad().unwrap().item(), 2.0); // dy/dw = x
//! ```

pub mod gradcheck;
pub mod ops;
pub mod var;

pub use ops::reduce_to_shape;
pub use var::Var;
