//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This container has no network access to crates.io, so the workspace
//! ships a tiny API-compatible subset: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! warmup + sample loop reporting mean wall-clock per iteration; there
//! are no statistics, plots or baselines. Swap back to the real crate
//! by changing one line in `bench/Cargo.toml` when a registry is
//! available — the bench sources need no edits.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier used for parameterised benches.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{param}"))
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-benchmark timing driver handed to bench closures.
pub struct Bencher {
    /// Mean seconds per iteration, filled in by [`Bencher::iter`].
    mean_seconds: f64,
    samples: usize,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup: one call to fault in caches/allocations.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.mean_seconds = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(format!("{id}"), f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.0.clone(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        // `TDP_BENCH_FILTER=<substring>` runs only matching benchmarks
        // (matched against `group/id`) — the real criterion takes a CLI
        // filter argument; env is the least invasive stand-in here.
        if let Ok(filter) = std::env::var("TDP_BENCH_FILTER") {
            if !format!("{}/{id}", self.name).contains(&filter) {
                return;
            }
        }
        let mut b = Bencher {
            mean_seconds: 0.0,
            samples: self.sample_size,
        };
        f(&mut b);
        println!(
            "{}/{id:<32} {:>12.3} µs/iter  ({} samples)",
            self.name,
            b.mean_seconds * 1e6,
            self.sample_size
        );
    }

    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            name: format!("{name}"),
            sample_size: 10,
            _parent: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::from("bench"),
            sample_size: 10,
            _parent: self,
        };
        g.bench_function(id, f);
        self
    }
}

/// Re-export point used by `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
