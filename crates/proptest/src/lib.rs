//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The container cannot reach crates.io, so this workspace-local crate
//! implements the subset of proptest the integration tests use: the
//! `proptest!` macro over `arg in strategy` bindings, numeric range
//! strategies, `collection::vec`, `any::<bool>()`, and string strategies
//! written as simple character-class patterns (`"[a-z]{0,6}"`). Failing
//! cases panic with the generated inputs in the message; there is no
//! shrinking. The generator is a deterministic SplitMix64 seeded from the
//! test name (override with `PROPTEST_SEED`), so failures reproduce.

use std::ops::Range;

/// Deterministic generator state handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed | 1)
    }

    /// SplitMix64 step.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; bound 0 returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Seed a [`TestRng`] from the test name (or `PROPTEST_SEED`).
pub fn test_rng(name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(n) = seed.parse::<u64>() {
            return TestRng::new(n);
        }
    }
    // FNV-1a over the test name keeps runs deterministic per test.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::new(h)
}

/// A value generator. The proptest `Strategy` trait reduced to sampling.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )+};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start) as f64;
                (self.start as f64 + rng.unit() * span) as $t
            }
        }
    )+};
}

float_range_strategy!(f32, f64);

/// String strategies are written as character-class patterns:
/// `"[a-z]{0,6}"` — a bracketed class (ranges and literals) with an
/// optional `{min,max}` repeat, or bare literal characters. This covers
/// the regex subset the tests rely on.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let chars: Vec<char> = self.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // One atom: a class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let mut cls = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            cls.push(char::from_u32(c).unwrap());
                        }
                        i += 3;
                    } else {
                        cls.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                cls
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            // Optional {min,max} repeat count.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..].iter().position(|&c| c == '}').unwrap() + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (a, b) = body
                    .split_once(',')
                    .unwrap_or((body.as_str(), body.as_str()));
                i = close + 1;
                (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(0))
            } else {
                (1usize, 1usize)
            };
            let reps = lo + rng.below((hi.saturating_sub(lo) + 1) as u64) as usize;
            for _ in 0..reps {
                if !class.is_empty() {
                    out.push(class[rng.below(class.len() as u64) as usize]);
                }
            }
        }
        out
    }
}

/// Marker strategy for `any::<T>()` / the `ANY` constants.
pub struct Any<T>(std::marker::PhantomData<T>);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<i64> {
    type Value = i64;
    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// `proptest::arbitrary::any::<T>()` for the types the tests use.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod bool {
    /// `proptest::bool::ANY`.
    pub const ANY: super::Any<::core::primitive::bool> = super::Any(std::marker::PhantomData);
}

pub mod num {
    pub mod i64 {
        /// `proptest::num::i64::ANY`.
        pub const ANY: crate::Any<::core::primitive::i64> = crate::Any(std::marker::PhantomData);
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification: a fixed size or a half-open range.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration (`with_cases` is the only knob the tests use).
#[derive(Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Assertions that fail the current case. Without shrinking these simply
/// panic, which fails the test with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+); };
}

/// The `proptest!` macro: each `#[test] fn name(arg in strategy, ...)`
/// item becomes a plain test that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) { $($body:tt)* }
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    { $($body)* }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges");
        for _ in 0..200 {
            let v = (-3i64..4).generate(&mut rng);
            assert!((-3..4).contains(&v));
            let f = (0.05f32..2.0).generate(&mut rng);
            assert!((0.05..2.0).contains(&f));
            let u = (1u64..50).generate(&mut rng);
            assert!((1..50).contains(&u));
        }
    }

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = test_rng("strings");
        for _ in 0..100 {
            let s = "[a-z]{0,6}".generate(&mut rng);
            assert!(s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = "[ab%_]{0,5}".generate(&mut rng);
            assert!(t.chars().all(|c| matches!(c, 'a' | 'b' | '%' | '_')));
            let one = "[x-z]".generate(&mut rng);
            assert_eq!(one.len(), 1);
        }
    }

    #[test]
    fn vec_sizes_respect_range() {
        let mut rng = test_rng("vecs");
        for _ in 0..100 {
            let v = collection::vec(0i64..5, 1..40).generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            let fixed = collection::vec(0i64..5, 7usize).generate(&mut rng);
            assert_eq!(fixed.len(), 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_arguments(xs in collection::vec(0i64..10, 1..5), flag in any::<bool>()) {
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flag;
        }
    }
}
