//! Exact evaluation of compiled expression programs over batches.
//!
//! Expressions arrive here already lowered by [`crate::physical::lower`]:
//! columns are slot indices, built-ins are resolved kernels, scalar
//! subqueries are nested physical plans. Evaluation dispatches straight to
//! tensor kernels — comparisons become mask kernels, arithmetic becomes
//! elementwise kernels, string predicates become integer predicates on
//! dictionary codes (the encoding-aware strategy selection of paper §2).

use tdp_encoding::EncodedTensor;
use tdp_index::Metric;
use tdp_sql::ast::{BinOp, UnOp};
use tdp_tensor::{BoolTensor, F32Tensor, Tensor};

use crate::batch::Batch;
use crate::error::ExecError;
use crate::physical::{CompiledExpr, PhysicalPlan, ScalarFn};
use crate::udf::{ArgValue, ExecContext};

/// Result of evaluating an expression: a column or a scalar.
#[derive(Clone, Debug)]
pub enum Value {
    Column(EncodedTensor),
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Value {
    /// View as a row mask for `n` rows.
    pub fn into_mask(self, n: usize) -> Result<BoolTensor, ExecError> {
        match self {
            Value::Column(EncodedTensor::Bool(b)) => Ok(b),
            Value::Bool(b) => Ok(Tensor::full(&[n], b)),
            other => Err(ExecError::TypeMismatch(format!(
                "predicate did not evaluate to a boolean mask: {other:?}"
            ))),
        }
    }

    /// View as an f32 column for `n` rows (scalars broadcast).
    pub fn into_f32_column(self, n: usize) -> Result<F32Tensor, ExecError> {
        match self {
            Value::Column(c) => Ok(c.decode_f32()),
            Value::Num(v) => Ok(Tensor::full(&[n], v as f32)),
            Value::Bool(b) => Ok(Tensor::full(&[n], if b { 1.0 } else { 0.0 })),
            Value::Str(s) => Err(ExecError::TypeMismatch(format!(
                "string '{s}' used in numeric context"
            ))),
        }
    }

    /// Convert into a UDF argument.
    pub fn into_arg(self) -> ArgValue {
        match self {
            Value::Column(c) => ArgValue::Column(c),
            Value::Num(n) => ArgValue::Number(n),
            Value::Str(s) => ArgValue::Str(s),
            Value::Bool(b) => ArgValue::Bool(b),
        }
    }
}

/// Evaluate a compiled expression against `batch`.
pub fn eval_expr(
    expr: &CompiledExpr,
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<Value, ExecError> {
    match expr {
        CompiledExpr::Column(c) => Ok(Value::Column(c.resolve(batch)?.to_exact())),
        CompiledExpr::Num(n) => Ok(Value::Num(*n)),
        CompiledExpr::Str(s) => Ok(Value::Str(s.clone())),
        CompiledExpr::Bool(b) => Ok(Value::Bool(*b)),
        CompiledExpr::Unary {
            op: UnOp::Neg,
            expr,
        } => match eval_expr(expr, batch, ctx)? {
            Value::Num(n) => Ok(Value::Num(-n)),
            Value::Column(c) => Ok(Value::Column(EncodedTensor::F32(c.decode_f32().neg()))),
            other => Err(ExecError::TypeMismatch(format!("cannot negate {other:?}"))),
        },
        CompiledExpr::Unary {
            op: UnOp::Not,
            expr,
        } => match eval_expr(expr, batch, ctx)? {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            Value::Column(EncodedTensor::Bool(m)) => {
                Ok(Value::Column(EncodedTensor::Bool(m.not())))
            }
            other => Err(ExecError::TypeMismatch(format!("cannot NOT {other:?}"))),
        },
        CompiledExpr::Binary { op, left, right } => {
            let l = eval_expr(left, batch, ctx)?;
            let r = eval_expr(right, batch, ctx)?;
            eval_binary(*op, l, r, batch.rows())
        }
        CompiledExpr::Udf { name, args } => invoke_udf(name, args, batch, ctx),
        CompiledExpr::Builtin { name, func, args } => {
            // A session UDF registered *after* compilation shadows the
            // built-in, preserving the pre-compilation resolution order
            // for already-held queries.
            if ctx.udfs.is_scalar(name) {
                return invoke_udf(name, args, batch, ctx);
            }
            // Vector similarity takes a whole [n, d] column plus a
            // row-constant query — its arguments do not follow the
            // scalar broadcast rules, so it dispatches before them.
            if let ScalarFn::Vector(metric) = func {
                return eval_vector_builtin(name, *metric, args, batch, ctx);
            }
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(eval_expr(a, batch, ctx)?);
            }
            eval_builtin(name, *func, &vals, batch.rows())
        }
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => eval_case(
            operand.as_deref(),
            branches,
            else_expr.as_deref(),
            batch,
            ctx,
        ),
        CompiledExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, batch, ctx)?;
            let mut mask: Option<BoolTensor> = None;
            let n = batch.rows();
            for item in list {
                let rhs = eval_expr(item, batch, ctx)?;
                let eq = eval_binary(BinOp::Eq, v.clone(), rhs, n)?.into_mask(n)?;
                mask = Some(match mask {
                    Some(m) => m.or(&eq),
                    None => eq,
                });
            }
            let m =
                mask.ok_or_else(|| ExecError::TypeMismatch("IN requires a non-empty list".into()))?;
            Ok(Value::Column(EncodedTensor::Bool(if *negated {
                m.not()
            } else {
                m
            })))
        }
        CompiledExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let mask = match eval_expr(expr, batch, ctx)? {
                Value::Column(EncodedTensor::Dict { codes, dict }) => {
                    // Evaluate the pattern once per dictionary entry, then
                    // broadcast the verdicts through the codes — the
                    // encoding-aware strategy of paper §2.
                    let verdicts: Vec<bool> = dict
                        .values()
                        .iter()
                        .map(|v| like_match(pattern, v))
                        .collect();
                    codes.map(|c| verdicts[c as usize])
                }
                Value::Str(s) => Tensor::full(&[batch.rows()], like_match(pattern, &s)),
                other => {
                    return Err(ExecError::TypeMismatch(format!(
                        "LIKE applies to string columns, got {other:?}"
                    )))
                }
            };
            Ok(Value::Column(EncodedTensor::Bool(if *negated {
                mask.not()
            } else {
                mask
            })))
        }
        CompiledExpr::ScalarSubquery(plan) => eval_scalar_subquery(plan, ctx),
        CompiledExpr::Param { idx } => eval_param(*idx, batch.rows(), ctx),
    }
}

/// Resolve a parameter slot against the context binding. `rows` is the
/// row count of the batch the value will combine with: tensor bindings do
/// not broadcast, so their leading dimension must match.
pub(crate) fn eval_param(idx: usize, rows: usize, ctx: &ExecContext) -> Result<Value, ExecError> {
    use crate::params::ParamValue;
    match ctx.params.get(idx) {
        Some(ParamValue::Number(n)) => Ok(Value::Num(*n)),
        Some(ParamValue::String(s)) => Ok(Value::Str(s.clone())),
        Some(ParamValue::Bool(b)) => Ok(Value::Bool(*b)),
        Some(ParamValue::Tensor(t)) => {
            if t.shape().first() != Some(&rows) {
                return Err(ExecError::Param(format!(
                    "parameter ${} is a tensor of shape {:?}, but the batch has {rows} row(s) \
                     (tensor bindings do not broadcast)",
                    idx + 1,
                    t.shape()
                )));
            }
            Ok(Value::Column(EncodedTensor::F32(t.clone())))
        }
        Some(ParamValue::Null) => Err(ExecError::Param(format!(
            "parameter ${} is bound to NULL, which this NULL-free dialect cannot evaluate",
            idx + 1
        ))),
        None => Err(ExecError::Param(format!(
            "parameter ${} is not bound ({} value(s) provided)",
            idx + 1,
            ctx.params.len()
        ))),
    }
}

/// Resolve a LIMIT count against the context binding: structural
/// constants pass through; `LIMIT ?` slots must be bound to a
/// non-negative integer number, anything else is a clean
/// [`ExecError::Param`].
pub(crate) fn resolve_limit(
    n: &tdp_sql::ast::LimitCount,
    ctx: &ExecContext,
) -> Result<usize, ExecError> {
    use crate::params::ParamValue;
    use tdp_sql::ast::LimitCount;
    match n {
        LimitCount::Const(v) => Ok(*v as usize),
        LimitCount::Param { idx } => match ctx.params.get(*idx) {
            Some(ParamValue::Number(v)) if *v >= 0.0 && v.fract() == 0.0 => Ok(*v as usize),
            Some(ParamValue::Number(v)) => Err(ExecError::Param(format!(
                "LIMIT parameter ${} must be a non-negative integer, got {v}",
                idx + 1
            ))),
            Some(other) => Err(ExecError::Param(format!(
                "LIMIT parameter ${} must be an integer number, got {other:?}",
                idx + 1
            ))),
            None => Err(ExecError::Param(format!(
                "LIMIT parameter ${} is not bound ({} value(s) provided)",
                idx + 1,
                ctx.params.len()
            ))),
        },
    }
}

/// Evaluate arguments and invoke a session scalar UDF by name.
fn invoke_udf(
    name: &str,
    args: &[CompiledExpr],
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<Value, ExecError> {
    let udf = ctx.udfs.scalar(name)?.clone();
    let mut arg_values = Vec::with_capacity(args.len());
    for a in args {
        arg_values.push(eval_expr(a, batch, ctx)?.into_arg());
    }
    Ok(Value::Column(udf.invoke(&arg_values, ctx)?))
}

/// Execute a lowered scalar-subquery plan against the session catalog; it
/// must return exactly one row and one column. Subqueries always run on
/// the sequential whole-batch path so their value never depends on the
/// outer query's morsel scheduling.
pub(crate) fn eval_scalar_subquery(
    plan: &PhysicalPlan,
    ctx: &ExecContext,
) -> Result<Value, ExecError> {
    let batch = crate::exact::execute_seq(plan, ctx)?;
    if batch.rows() != 1 || batch.columns().len() != 1 {
        return Err(ExecError::TypeMismatch(format!(
            "scalar subquery must return 1 row x 1 column, got {} x {}",
            batch.rows(),
            batch.columns().len()
        )));
    }
    let col = batch.columns()[0].1.to_exact();
    Ok(match col {
        EncodedTensor::Dict { codes, dict } => Value::Str(dict.decode_one(codes.at(0)).to_owned()),
        EncodedTensor::Bool(b) => Value::Bool(b.at(0)),
        other => Value::Num(other.decode_f32().at(0) as f64),
    })
}

/// SQL `LIKE` with `%` (any run) and `_` (any one char); case-sensitive.
/// Shared with the compiled chain kernels ([`crate::kernel`]) so both
/// paths match byte-for-byte.
pub(crate) fn like_match(pattern: &str, s: &str) -> bool {
    fn rec(p: &[char], s: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some(('%', rest)) => (0..=s.len()).any(|i| rec(rest, &s[i..])),
            Some(('_', rest)) => !s.is_empty() && rec(rest, &s[1..]),
            Some((c, rest)) => s.first() == Some(c) && rec(rest, &s[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let sc: Vec<char> = s.chars().collect();
    rec(&p, &sc)
}

/// Evaluate `CASE` by blending branch outputs under masks. Branches are
/// tested in order; earlier matches win. The NULL-free dialect defaults a
/// missing ELSE to 0.
fn eval_case(
    operand: Option<&CompiledExpr>,
    branches: &[(CompiledExpr, CompiledExpr)],
    else_expr: Option<&CompiledExpr>,
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<Value, ExecError> {
    let n = batch.rows();
    let operand_val = operand.map(|o| eval_expr(o, batch, ctx)).transpose()?;

    // Start from the ELSE value and overwrite backwards so the *first*
    // matching WHEN wins.
    let mut out = match else_expr {
        Some(e) => eval_expr(e, batch, ctx)?.into_f32_column(n)?,
        None => F32Tensor::zeros(&[n]),
    };
    for (when, then) in branches.iter().rev() {
        let cond = match &operand_val {
            Some(op_v) => {
                let rhs = eval_expr(when, batch, ctx)?;
                eval_binary(BinOp::Eq, op_v.clone(), rhs, n)?.into_mask(n)?
            }
            None => eval_expr(when, batch, ctx)?.into_mask(n)?,
        };
        let then_col = eval_expr(then, batch, ctx)?.into_f32_column(n)?;
        let cf = cond.to_f32_mask();
        out = cf.mul(&then_col).add(&cf.neg().add_scalar(1.0).mul(&out));
    }
    Ok(Value::Column(EncodedTensor::F32(out)))
}

/// Dispatch a pre-resolved built-in math kernel. Scalar-only arguments
/// stay scalar so literals keep folding through plans.
fn eval_builtin(name: &str, func: ScalarFn, args: &[Value], n: usize) -> Result<Value, ExecError> {
    if args.len() != func.arity() {
        return Err(ExecError::TypeMismatch(format!(
            "{name} expects {} argument(s), got {}",
            func.arity(),
            args.len()
        )));
    }
    let all_scalar = args.iter().all(|a| matches!(a, Value::Num(_)));
    match func {
        ScalarFn::Unary(f) => {
            if all_scalar {
                let Value::Num(x) = args[0] else {
                    unreachable!()
                };
                return Ok(Value::Num(f(x as f32) as f64));
            }
            let c = args[0].clone().into_f32_column(n)?;
            Ok(Value::Column(EncodedTensor::F32(c.map(f))))
        }
        ScalarFn::Binary(f) => {
            if all_scalar {
                let (Value::Num(a), Value::Num(b)) = (&args[0], &args[1]) else {
                    unreachable!()
                };
                return Ok(Value::Num(f(*a as f32, *b as f32) as f64));
            }
            let a = args[0].clone().into_f32_column(n)?;
            let b = args[1].clone().into_f32_column(n)?;
            let out: Vec<f32> = a
                .data()
                .iter()
                .zip(b.data())
                .map(|(&x, &y)| f(x, y))
                .collect();
            Ok(Value::Column(EncodedTensor::F32(Tensor::from_vec(
                out,
                a.shape(),
            ))))
        }
        // Intercepted in the Builtin arm of `eval_expr`.
        ScalarFn::Vector(_) => Err(ExecError::TypeMismatch(format!(
            "{name} is a vector builtin and cannot broadcast as a scalar kernel"
        ))),
    }
}

/// Evaluate a vector-similarity builtin: score every row of an `[n, d]`
/// embedding column against one query vector. The score kernel is
/// [`Metric::scores`] — the same kernel the vector indexes run, so a
/// sequential scan computing this expression agrees bit-for-bit with the
/// flat index path. `distance` returns positive squared L2 distance
/// (ascending-better); `inner_product`/`cosine_sim` return
/// descending-better scores.
fn eval_vector_builtin(
    name: &str,
    metric: Metric,
    args: &[CompiledExpr],
    batch: &Batch,
    ctx: &ExecContext,
) -> Result<Value, ExecError> {
    let [col_expr, query_expr] = args else {
        return Err(ExecError::TypeMismatch(format!(
            "{name} expects 2 arguments, got {}",
            args.len()
        )));
    };
    let data = match eval_expr(col_expr, batch, ctx)? {
        Value::Column(c) => c.decode_f32(),
        other => {
            return Err(ExecError::TypeMismatch(format!(
                "argument 1 of {name} must be an embedding column, got {other:?}"
            )))
        }
    };
    if data.ndim() != 2 {
        return Err(ExecError::TypeMismatch(format!(
            "argument 1 of {name} must be an [n, d] embedding column, got shape {:?}",
            data.shape()
        )));
    }
    let query = vector_query(name, query_expr, ctx)?;
    if query.numel() != data.shape()[1] {
        return Err(ExecError::TypeMismatch(format!(
            "{name} query has {} element(s), but the embedding column is {}-dimensional",
            query.numel(),
            data.shape()[1]
        )));
    }
    let scores = metric.scores(&data, &query);
    // `Metric::L2.scores` is *negated* squared distance (higher-better,
    // matching the indexes). The SQL function reports the positive
    // distance; negation is exact, so ORDER BY distance ASC selects the
    // same rows as top-k by score.
    let out = if matches!(metric, Metric::L2) {
        scores.neg()
    } else {
        scores
    };
    Ok(Value::Column(EncodedTensor::F32(out)))
}

/// Resolve the query-vector argument of a vector builtin to a 1-d f32
/// tensor. A `$n` tensor binding is taken whole — deliberately bypassing
/// [`eval_param`]'s leading-dimension check, since a query vector's
/// length is the embedding dimension, not the batch's row count. Numbers
/// become single-element vectors (1-d embeddings).
pub(crate) fn vector_query(
    name: &str,
    expr: &CompiledExpr,
    ctx: &ExecContext,
) -> Result<F32Tensor, ExecError> {
    use crate::params::ParamValue;
    match expr {
        CompiledExpr::Param { idx } => match ctx.params.get(*idx) {
            Some(ParamValue::Tensor(t)) => match t.ndim() {
                1 => Ok(t.clone()),
                2 if t.shape()[0] == 1 => Ok(Tensor::from_vec(t.data().to_vec(), &[t.shape()[1]])),
                _ => Err(ExecError::Param(format!(
                    "parameter ${} must be a [d] query vector for {name}, got shape {:?}",
                    idx + 1,
                    t.shape()
                ))),
            },
            Some(ParamValue::Number(v)) => Ok(Tensor::from_vec(vec![*v as f32], &[1])),
            Some(other) => Err(ExecError::Param(format!(
                "parameter ${} must be a tensor query vector for {name}, got {other:?}",
                idx + 1
            ))),
            None => Err(ExecError::Param(format!(
                "parameter ${} is not bound ({} value(s) provided)",
                idx + 1,
                ctx.params.len()
            ))),
        },
        CompiledExpr::Num(v) => Ok(Tensor::from_vec(vec![*v as f32], &[1])),
        other => Err(ExecError::TypeMismatch(format!(
            "argument 2 of {name} must be a parameter or literal query vector, got {other}"
        ))),
    }
}

pub(crate) fn eval_binary(op: BinOp, l: Value, r: Value, rows: usize) -> Result<Value, ExecError> {
    use BinOp::*;

    // Logical connectives.
    if op.is_logical() {
        let lm = l.into_mask(rows)?;
        let rm = r.into_mask(rows)?;
        let out = match op {
            And => lm.and(&rm),
            Or => lm.or(&rm),
            _ => unreachable!(),
        };
        return Ok(Value::Column(EncodedTensor::Bool(out)));
    }

    // String comparisons against dictionary columns run on codes.
    match (&l, &r) {
        (Value::Column(EncodedTensor::Dict { codes, dict }), Value::Str(s)) => {
            return Ok(Value::Column(EncodedTensor::Bool(compare_dict(
                op, codes, dict, s, false,
            )?)))
        }
        (Value::Str(s), Value::Column(EncodedTensor::Dict { codes, dict })) => {
            return Ok(Value::Column(EncodedTensor::Bool(compare_dict(
                op, codes, dict, s, true,
            )?)))
        }
        _ => {}
    }

    // Scalar-scalar fast paths.
    if let (Value::Num(a), Value::Num(b)) = (&l, &r) {
        let (a, b) = (*a, *b);
        return Ok(match op {
            Add => Value::Num(a + b),
            Sub => Value::Num(a - b),
            Mul => Value::Num(a * b),
            Div => Value::Num(a / b),
            Mod => Value::Num(a % b),
            Eq => Value::Bool(a == b),
            NotEq => Value::Bool(a != b),
            Lt => Value::Bool(a < b),
            LtEq => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            GtEq => Value::Bool(a >= b),
            And | Or => unreachable!(),
        });
    }
    if let (Value::Str(a), Value::Str(b)) = (&l, &r) {
        return Ok(match op {
            Eq => Value::Bool(a == b),
            NotEq => Value::Bool(a != b),
            Lt => Value::Bool(a < b),
            LtEq => Value::Bool(a <= b),
            Gt => Value::Bool(a > b),
            GtEq => Value::Bool(a >= b),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "operator {other:?} on strings"
                )))
            }
        });
    }

    // Numeric column paths.
    let lc = l.into_f32_column(rows)?;
    let rc = r.into_f32_column(rows)?;
    Ok(match op {
        Add => Value::Column(EncodedTensor::F32(lc.add(&rc))),
        Sub => Value::Column(EncodedTensor::F32(lc.sub(&rc))),
        Mul => Value::Column(EncodedTensor::F32(lc.mul(&rc))),
        Div => Value::Column(EncodedTensor::F32(lc.div(&rc))),
        Mod => {
            let out: Vec<f32> = lc
                .data()
                .iter()
                .zip(rc.data())
                .map(|(a, b)| a % b)
                .collect();
            Value::Column(EncodedTensor::F32(Tensor::from_vec(out, lc.shape())))
        }
        Eq => Value::Column(EncodedTensor::Bool(lc.eq_t(&rc))),
        NotEq => Value::Column(EncodedTensor::Bool(lc.ne_t(&rc))),
        Lt => Value::Column(EncodedTensor::Bool(lc.lt_t(&rc))),
        LtEq => Value::Column(EncodedTensor::Bool(lc.le_t(&rc))),
        Gt => Value::Column(EncodedTensor::Bool(lc.gt_t(&rc))),
        GtEq => Value::Column(EncodedTensor::Bool(lc.ge_t(&rc))),
        And | Or => unreachable!(),
    })
}

/// Compare a dictionary column against a string literal using codes only.
/// `flipped` means the literal was on the left (`'x' < col`).
fn compare_dict(
    op: BinOp,
    codes: &Tensor<i64>,
    dict: &tdp_encoding::StringDict,
    s: &str,
    flipped: bool,
) -> Result<BoolTensor, ExecError> {
    let op = if flipped {
        match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::LtEq => BinOp::GtEq,
            BinOp::Gt => BinOp::Lt,
            BinOp::GtEq => BinOp::LtEq,
            other => other,
        }
    } else {
        op
    };
    Ok(match op {
        BinOp::Eq => match dict.code_of(s) {
            Some(c) => codes.eq_scalar(c),
            None => Tensor::full(&[codes.numel()], false),
        },
        BinOp::NotEq => match dict.code_of(s) {
            Some(c) => codes.eq_scalar(c).not(),
            None => Tensor::full(&[codes.numel()], true),
        },
        // Order-preserving property: value < s  <=>  code < lower_bound(s).
        BinOp::Lt => codes.lt_scalar(dict.lower_bound(s)),
        BinOp::GtEq => codes.ge_scalar(dict.lower_bound(s)),
        BinOp::LtEq => {
            // value <= s <=> value < next(s); with codes: code < lb(s) or code == code_of(s)
            match dict.code_of(s) {
                Some(c) => codes.le_scalar(c),
                None => codes.lt_scalar(dict.lower_bound(s)),
            }
        }
        BinOp::Gt => match dict.code_of(s) {
            Some(c) => codes.gt_scalar(c),
            None => codes.ge_scalar(dict.lower_bound(s)),
        },
        other => {
            return Err(ExecError::TypeMismatch(format!(
                "operator {other:?} between dictionary column and string"
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{lower_expr, Schema};
    use crate::udf::UdfRegistry;
    use tdp_sql::parse;
    use tdp_storage::{Catalog, TableBuilder};

    fn test_batch() -> Batch {
        Batch::from_table(
            &TableBuilder::new()
                .col_f32("x", vec![1.0, 2.0, 3.0, 4.0])
                .col_f32("y", vec![10.0, 20.0, 30.0, 40.0])
                .col_str("tag", &["a", "b", "a", "c"])
                .col_i64("ts", vec![5, 6, 5, 7])
                .build("t"),
        )
    }

    fn compile(sql_expr: &str, batch: &Batch, udfs: &UdfRegistry) -> CompiledExpr {
        let q = parse(&format!("SELECT {sql_expr} FROM t")).unwrap();
        let schema = Schema::new(batch.names().iter().map(|n| n.to_string()).collect());
        let catalog = Catalog::new();
        lower_expr(&q.select[0].expr, Some(&schema), &catalog, udfs).unwrap()
    }

    fn eval(sql_expr: &str, batch: &Batch) -> Value {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let compiled = compile(sql_expr, batch, &udfs);
        let ctx = ExecContext::new(&catalog, &udfs);
        eval_expr(&compiled, batch, &ctx).unwrap()
    }

    fn as_f32(v: Value) -> Vec<f32> {
        v.into_f32_column(4).unwrap().to_vec()
    }

    fn as_mask(v: Value) -> Vec<bool> {
        v.into_mask(4).unwrap().to_vec()
    }

    #[test]
    fn arithmetic_on_columns() {
        let b = test_batch();
        assert_eq!(as_f32(eval("x + y", &b)), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(as_f32(eval("y / x", &b)), vec![10.0, 10.0, 10.0, 10.0]);
        assert_eq!(as_f32(eval("x * 2 + 1", &b)), vec![3.0, 5.0, 7.0, 9.0]);
        assert_eq!(as_f32(eval("-x", &b)), vec![-1.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn comparisons_and_logic() {
        let b = test_batch();
        assert_eq!(as_mask(eval("x > 2", &b)), vec![false, false, true, true]);
        assert_eq!(
            as_mask(eval("x > 1 AND y < 40", &b)),
            vec![false, true, true, false]
        );
        assert_eq!(
            as_mask(eval("NOT (x >= 2)", &b)),
            vec![true, false, false, false]
        );
        assert_eq!(
            as_mask(eval("x = 1 OR ts = 7", &b)),
            vec![true, false, false, true]
        );
        assert_eq!(
            as_mask(eval("x BETWEEN 2 AND 3", &b)),
            vec![false, true, true, false]
        );
    }

    #[test]
    fn dictionary_string_predicates() {
        let b = test_batch();
        assert_eq!(
            as_mask(eval("tag = 'a'", &b)),
            vec![true, false, true, false]
        );
        assert_eq!(
            as_mask(eval("tag <> 'a'", &b)),
            vec![false, true, false, true]
        );
        assert_eq!(
            as_mask(eval("tag >= 'b'", &b)),
            vec![false, true, false, true]
        );
        // Absent literal: equality is empty, ranges still work.
        assert_eq!(as_mask(eval("tag = 'zz'", &b)), vec![false; 4]);
        assert_eq!(
            as_mask(eval("tag < 'b'", &b)),
            vec![true, false, true, false]
        );
        // Flipped operand order.
        assert_eq!(
            as_mask(eval("'b' <= tag", &b)),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn scalar_folding_at_runtime() {
        let b = test_batch();
        match eval("1 + 2 * 3", &b) {
            Value::Num(n) => assert_eq!(n, 7.0),
            other => panic!("expected scalar, got {other:?}"),
        }
        match eval("'a' = 'a'", &b) {
            Value::Bool(b) => assert!(b),
            other => panic!("expected bool, got {other:?}"),
        }
    }

    #[test]
    fn unknown_column_is_reported_at_compile_time() {
        let b = test_batch();
        let q = parse("SELECT missing FROM t").unwrap();
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let schema = Schema::new(b.names().iter().map(|n| n.to_string()).collect());
        assert!(matches!(
            lower_expr(&q.select[0].expr, Some(&schema), &catalog, &udfs),
            Err(ExecError::UnknownColumn(_))
        ));
    }

    #[test]
    fn name_fallback_resolves_through_batch_index() {
        // Downstream of a TVF the schema is unknown: refs lower to names
        // and resolve per batch via the O(1) map.
        let b = test_batch();
        let q = parse("SELECT x + 1 FROM t").unwrap();
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let compiled = lower_expr(&q.select[0].expr, None, &catalog, &udfs).unwrap();
        let ctx = ExecContext::new(&catalog, &udfs);
        assert_eq!(
            eval_expr(&compiled, &b, &ctx)
                .unwrap()
                .into_f32_column(4)
                .unwrap()
                .to_vec(),
            vec![2.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    fn udf_registered_after_compile_shadows_builtin() {
        use std::sync::Arc;
        struct NegAbs;
        impl crate::udf::ScalarUdf for NegAbs {
            fn name(&self) -> &str {
                "abs"
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().map(|v| -v.abs()),
                ))
            }
        }
        let b = test_batch();
        // Compiled while 'abs' resolves to the built-in…
        let compiled = compile("ABS(x)", &b, &UdfRegistry::new());
        assert!(matches!(compiled, CompiledExpr::Builtin { .. }));
        // …but a UDF of the same name registered afterwards wins at
        // evaluation, matching pre-compilation resolution order.
        let catalog = Catalog::new();
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(NegAbs));
        let ctx = ExecContext::new(&catalog, &udfs);
        assert_eq!(
            eval_expr(&compiled, &b, &ctx)
                .unwrap()
                .into_f32_column(4)
                .unwrap()
                .to_vec(),
            vec![-1.0, -2.0, -3.0, -4.0]
        );
    }

    #[test]
    fn scalar_udf_call_in_expression() {
        use std::sync::Arc;
        struct PlusTen;
        impl crate::udf::ScalarUdf for PlusTen {
            fn name(&self) -> &str {
                "plus_ten"
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().add_scalar(10.0),
                ))
            }
        }
        let b = test_batch();
        let catalog = Catalog::new();
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(PlusTen));
        let compiled = compile("plus_ten(x) > 12", &b, &udfs);
        let ctx = ExecContext::new(&catalog, &udfs);
        let v = eval_expr(&compiled, &b, &ctx).unwrap();
        assert_eq!(
            v.into_mask(4).unwrap().to_vec(),
            vec![false, false, true, true]
        );
    }
}
