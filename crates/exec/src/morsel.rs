//! The morsel scheduler: partitions a batch into fixed-size row ranges
//! and runs fused operator chains over them across a worker pool.
//!
//! Determinism is the contract: morsel boundaries depend only on
//! [`crate::ExecContext::morsel_rows`], results are reassembled in morsel
//! order, and the partial-aggregation combine folds morsels in index
//! order — so every thread count (including 1) produces bitwise-identical
//! batches. Parallelism only changes *who* processes each morsel.
//!
//! Work distribution is work-stealing-lite: workers claim the next
//! morsel index from a shared atomic counter, so a slow morsel never
//! stalls the queue behind it. The LIMIT sink additionally publishes a
//! stop bound once the contiguous output prefix holds enough rows;
//! morsels past the bound are never claimed (early exit).
//!
//! Not every chain can leave the session thread: session UDFs hold
//! `Rc`-based autodiff parameters, scalar subqueries execute nested plans
//! and tensor-valued bindings are row-aligned with the whole batch. Such
//! chains — detected per execution against the live registry and binding
//! — fall back to whole-batch sequential execution, which is equally
//! deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use tdp_encoding::EncodedTensor;
use tdp_sql::ast::AggFunc;
use tdp_storage::Catalog;
use tdp_tensor::{F32Tensor, I64Tensor, Tensor};

use crate::batch::{Batch, ColumnData};
use crate::error::ExecError;
use crate::exact;
use crate::expr::{eval_expr, Value};
use crate::params::ParamValue;
use crate::physical::{CompiledExpr, PhysAggregate, PhysKey};
use crate::pipeline::MorselOp;
use crate::udf::{ExecContext, UdfRegistry};

// ----------------------------------------------------------------------
// Parallel-safety analysis
// ----------------------------------------------------------------------

/// Why a chain must stay on the session thread. `None` = parallel-safe.
/// Session UDFs without a `parallel_safe` declaration (and built-ins
/// currently shadowed by one) may hold non-`Send` parameters; scalar
/// subqueries execute nested plans against the session; tensor bindings
/// are row-aligned with the *whole* input, not a morsel of it.
/// UDFs registered through
/// [`crate::udf::UdfRegistry::register_scalar_parallel`] with a
/// `parallel_safe` spec cross threads freely.
fn expr_fallback(e: &CompiledExpr, ctx: &ExecContext) -> Option<String> {
    match e {
        CompiledExpr::Udf { name, args } => {
            if !ctx.udfs.is_parallel_safe_scalar(name) {
                return Some(format!("udf-not-parallel-safe({name})"));
            }
            args.iter().find_map(|a| expr_fallback(a, ctx))
        }
        CompiledExpr::ScalarSubquery(_) => Some("scalar-subquery".into()),
        CompiledExpr::Builtin { name, args, .. } => {
            // A session UDF registered after compilation shadows the
            // built-in at evaluation time; the shadow decides.
            if ctx.udfs.is_scalar(name) && !ctx.udfs.is_parallel_safe_scalar(name) {
                return Some(format!("udf-not-parallel-safe({name})"));
            }
            args.iter().find_map(|a| expr_fallback(a, ctx))
        }
        CompiledExpr::Param { idx } => matches!(ctx.params.get(*idx), Some(ParamValue::Tensor(_)))
            .then(|| format!("tensor-param(${})", idx + 1)),
        CompiledExpr::Binary { left, right, .. } => {
            expr_fallback(left, ctx).or_else(|| expr_fallback(right, ctx))
        }
        CompiledExpr::Unary { expr, .. } => expr_fallback(expr, ctx),
        CompiledExpr::Case {
            operand,
            branches,
            else_expr,
        } => operand
            .as_deref()
            .and_then(|o| expr_fallback(o, ctx))
            .or_else(|| {
                branches
                    .iter()
                    .find_map(|(w, t)| expr_fallback(w, ctx).or_else(|| expr_fallback(t, ctx)))
            })
            .or_else(|| else_expr.as_deref().and_then(|e| expr_fallback(e, ctx))),
        CompiledExpr::InList { expr, list, .. } => {
            expr_fallback(expr, ctx).or_else(|| list.iter().find_map(|i| expr_fallback(i, ctx)))
        }
        CompiledExpr::Like { expr, .. } => expr_fallback(expr, ctx),
        CompiledExpr::Column(_)
        | CompiledExpr::Num(_)
        | CompiledExpr::Str(_)
        | CompiledExpr::Bool(_) => None,
    }
}

fn op_fallback(op: &MorselOp<'_>, ctx: &ExecContext) -> Option<String> {
    match op {
        MorselOp::Filter(pred) => expr_fallback(pred, ctx),
        MorselOp::Project(items) => items.iter().find_map(|i| expr_fallback(&i.expr, ctx)),
    }
}

/// First reason a fused chain (and optional aggregate sink) cannot leave
/// the session thread — the single source of truth for the sequential
/// fallback, reported by EXPLAIN and profiled runs so fallbacks are
/// observable instead of silent. `None` = the chain is parallel-safe.
pub(crate) fn chain_fallback_reason(
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> Option<String> {
    ops.iter()
        .find_map(|op| op_fallback(op, ctx))
        .or_else(|| sink.and_then(|(keys, aggs)| aggregate_fallback(keys, aggs, ctx)))
}

// ----------------------------------------------------------------------
// Fused-chain execution
// ----------------------------------------------------------------------

/// Apply a fused operator chain to one (morsel) batch.
fn apply_ops(
    mut batch: Batch,
    ops: &[MorselOp<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    for op in ops {
        batch = match op {
            MorselOp::Filter(pred) => {
                let mask = eval_expr(pred, &batch, ctx)?.into_mask(batch.rows())?;
                exact::filter_batch(&batch, &mask)
            }
            MorselOp::Project(items) => exact::project_batch(&batch, items, ctx)?,
        };
    }
    Ok(batch)
}

/// Owned, `Send` view of a batch's columns (exact encodings only).
type MorselCols = Vec<(String, EncodedTensor)>;

fn to_cols(batch: &Batch) -> MorselCols {
    batch
        .columns()
        .iter()
        .map(|(n, c)| (n.clone(), c.to_exact()))
        .collect()
}

/// Owned view of a partition *source*: integer-compressed layouts
/// (RLE / bit-packed / delta) are decoded to plain i64 once, up front —
/// their `slice_rows` otherwise decodes the whole column per morsel,
/// turning partitioning into O(rows × morsels). Plain, dictionary and PE
/// layouts slice in a single memcpy and stay as they are.
fn to_partition_cols(batch: &Batch) -> MorselCols {
    batch
        .columns()
        .iter()
        .map(|(n, c)| {
            let col = match c.to_exact() {
                e @ (EncodedTensor::Rle(_)
                | EncodedTensor::BitPacked(_)
                | EncodedTensor::Delta(_)) => EncodedTensor::I64(e.decode_i64()),
                other => other,
            };
            (n.clone(), col)
        })
        .collect()
}

fn from_cols(cols: MorselCols) -> Batch {
    let mut out = Batch::new();
    for (name, col) in cols {
        out.push(name, ColumnData::Exact(col));
    }
    out
}

fn slice_cols(cols: &[(String, EncodedTensor)], start: usize, end: usize) -> Batch {
    let mut out = Batch::new();
    for (name, col) in cols {
        out.push(name.clone(), ColumnData::Exact(col.slice_rows(start, end)));
    }
    out
}

/// The `Send` subset of an [`ExecContext`] a worker needs. The session
/// context itself cannot cross threads (the UDF registry may hold
/// `Rc`-based autodiff parameters), but parallel-safe chains reference
/// only the binding, the device knobs, and the `Send + Sync` slice of
/// the function registry (UDFs registered through
/// [`UdfRegistry::register_scalar_parallel`]).
struct WorkerCfg {
    device: tdp_tensor::Device,
    temperature: f32,
    params: crate::params::ParamValues,
    morsel_rows: usize,
    /// Thread-safe scalar UDFs, rebuilt into a per-worker registry so
    /// `CompiledExpr::Udf` resolution works identically off-thread.
    shared_udfs: crate::udf::SharedScalars,
}

impl WorkerCfg {
    fn of(ctx: &ExecContext) -> WorkerCfg {
        WorkerCfg {
            device: ctx.device,
            temperature: ctx.temperature,
            params: ctx.params.clone(),
            morsel_rows: ctx.morsel_rows,
            shared_udfs: ctx.udfs.shared_snapshot(),
        }
    }
}

/// Build a worker-side context over a thread-local registry holding the
/// shared (parallel-safe) functions and an empty catalog.
fn worker_ctx<'a>(catalog: &'a Catalog, udfs: &'a UdfRegistry, cfg: &WorkerCfg) -> ExecContext<'a> {
    ExecContext {
        catalog,
        udfs,
        device: cfg.device,
        trainable: false,
        temperature: cfg.temperature,
        params: cfg.params.clone(),
        threads: 1,
        morsel_rows: cfg.morsel_rows,
    }
}

/// Run `work` on `workers` threads (or inline when 1), each with its own
/// worker context.
fn run_workers(workers: usize, cfg: &WorkerCfg, work: &(impl Fn(&ExecContext) + Sync)) {
    if workers <= 1 {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::from_shared(cfg.shared_udfs.clone());
        work(&worker_ctx(&catalog, &udfs, cfg));
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || {
                let catalog = Catalog::new();
                let udfs = UdfRegistry::from_shared(cfg.shared_udfs.clone());
                work(&worker_ctx(&catalog, &udfs, cfg));
            });
        }
    });
}

/// Number of morsels a batch splits into.
fn num_morsels(rows: usize, morsel_rows: usize) -> usize {
    rows.div_ceil(morsel_rows.max(1))
}

/// Why this execution falls back to the whole-batch sequential path
/// (`None` = it is morsel-parallel). Unlike [`chain_fallback_reason`]
/// this sees the materialised input, so it also covers differentiable
/// batches flowing out of trainable TVFs.
pub(crate) fn run_fallback_reason(
    input: &Batch,
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> Option<String> {
    if input.has_diff() {
        return Some("differentiable-input".into());
    }
    chain_fallback_reason(ops, sink, ctx)
}

/// Morsel count and fallback reason from one analysis pass (the reason
/// implies the count, so callers needing both — the profiler — pay for
/// the registry/param walk once).
pub(crate) fn planned_and_reason(
    input: &Batch,
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> (usize, Option<String>) {
    let reason = run_fallback_reason(input, ops, sink, ctx);
    let morsels = if reason.is_none() {
        num_morsels(input.rows(), ctx.morsel_rows)
    } else {
        1
    };
    (morsels, reason)
}

/// How many morsels this pipeline will actually schedule: 1 when the
/// input fits one morsel or the chain (or aggregate sink) must stay on
/// the session thread, the partition count otherwise. The single source
/// of truth for the fallback decision — the profiler reports it too.
pub(crate) fn planned_morsels(
    input: &Batch,
    ops: &[MorselOp<'_>],
    sink: Option<(&[PhysKey], &[PhysAggregate])>,
    ctx: &ExecContext,
) -> usize {
    planned_and_reason(input, ops, sink, ctx).0
}

/// Run a fused chain over a materialised input, morsel-parallel where
/// safe, with an optional LIMIT sink (early exit + truncation).
pub(crate) fn run_ops(
    input: &Batch,
    ops: &[MorselOp<'_>],
    limit: Option<usize>,
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let rows = input.rows();
    let morsels = planned_morsels(input, ops, None, ctx);
    // Single-morsel inputs, unsafe chains and differentiable inputs take
    // the whole-batch path — identical at every thread count.
    if morsels <= 1 {
        let out = apply_ops(input.clone(), ops, ctx)?;
        return Ok(match limit {
            Some(n) => out.head(n),
            None => out,
        });
    }

    let cols = to_partition_cols(input);
    let results = process_morsels(&cols, rows, morsels, ops, limit, ctx)?;

    // Order-preserving reassembly; with a LIMIT sink, take the shortest
    // morsel prefix that covers `n` rows and truncate.
    let mut parts: Vec<Batch> = Vec::new();
    let mut have = 0usize;
    for r in results {
        let part = from_cols(r.expect("prefix morsels are always processed"));
        have += part.rows();
        parts.push(part);
        if let Some(n) = limit {
            if have >= n {
                break;
            }
        }
    }
    let out = Batch::concat(&parts);
    Ok(match limit {
        Some(n) => out.head(n),
        None => out,
    })
}

/// Claim-and-process loop shared by the worker pool. Returns per-morsel
/// outputs in morsel order; entries past a LIMIT stop bound may be
/// `None`.
fn process_morsels(
    cols: &[(String, EncodedTensor)],
    rows: usize,
    morsels: usize,
    ops: &[MorselOp<'_>],
    limit: Option<usize>,
    ctx: &ExecContext,
) -> Result<Vec<Option<MorselCols>>, ExecError> {
    struct Shared {
        /// Per-morsel output (None = not yet / never processed).
        results: Vec<Option<Result<MorselCols, ExecError>>>,
        /// Longest contiguous prefix of completed morsels and its rows.
        prefix_idx: usize,
        prefix_rows: usize,
    }

    let next = AtomicUsize::new(0);
    // Morsels with index >= stop bound are never claimed (LIMIT early exit).
    let stop = AtomicUsize::new(usize::MAX);
    let shared = Mutex::new(Shared {
        results: (0..morsels).map(|_| None).collect(),
        prefix_idx: 0,
        prefix_rows: 0,
    });
    let morsel_rows = ctx.morsel_rows;

    let work = |wctx: &ExecContext| {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= morsels || i >= stop.load(Ordering::Acquire) {
                break;
            }
            let start = i * morsel_rows;
            let end = (start + morsel_rows).min(rows);
            let out = apply_ops(slice_cols(cols, start, end), ops, wctx).map(|b| to_cols(&b));
            let mut s = shared.lock().expect("morsel state poisoned");
            s.results[i] = Some(out);
            // Advance the contiguous prefix; once it covers the limit,
            // publish the stop bound so later morsels are skipped.
            while s.prefix_idx < morsels {
                let Some(done) = &s.results[s.prefix_idx] else {
                    break;
                };
                if let Ok(c) = done {
                    s.prefix_rows += c.first().map_or(0, |(_, t)| t.rows());
                }
                s.prefix_idx += 1;
            }
            if let Some(n) = limit {
                if s.prefix_rows >= n {
                    stop.store(s.prefix_idx, Ordering::Release);
                }
            }
        }
    };

    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &work);

    let state = shared.into_inner().expect("morsel state poisoned");
    let mut out = Vec::with_capacity(morsels);
    for r in state.results {
        match r {
            // First error in morsel order wins — deterministic reporting.
            Some(Err(e)) => return Err(e),
            Some(Ok(c)) => out.push(Some(c)),
            None => out.push(None),
        }
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Parallel partial aggregation
// ----------------------------------------------------------------------

/// Cross-morsel group identity for one key column. Dictionary columns
/// merge on decoded strings (the order-preserving dictionary makes
/// string order = code order, so the combine's sorted output matches the
/// sequential kernel's); everything else merges on its grouping code.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum MergeKey {
    Int(i64),
    Str(String),
}

/// Per-aggregate partial state over one morsel's groups.
enum AccColumn {
    /// COUNT(*) / COUNT(expr): rows (or trues) per group.
    Count(Vec<i64>),
    /// SUM partials (f32, matching the sequential segment-sum kernel).
    Sum(Vec<f32>),
    /// AVG: sum partials; the divisor is the merged group size.
    Avg(Vec<f32>),
    Min(Vec<f32>),
    Max(Vec<f32>),
    /// VARIANCE / STDDEV: f64 power sums, as in the sequential kernel.
    Moments {
        sum: Vec<f64>,
        sumsq: Vec<f64>,
    },
}

/// Partial aggregation state of one morsel.
struct PartialAgg {
    /// Representative key rows (first in-morsel occurrence), encoding
    /// preserved; one `[groups]` column per GROUP BY key.
    key_reps: Vec<EncodedTensor>,
    /// Cross-morsel merge identity, `[num_keys][groups]`.
    merge_keys: Vec<Vec<MergeKey>>,
    /// Group sizes.
    counts: Vec<i64>,
    accs: Vec<AccColumn>,
    groups: usize,
}

/// First reason the aggregate sink cannot fold morsels in parallel.
fn aggregate_fallback(
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Option<String> {
    keys.iter()
        .find_map(|k| expr_fallback(&k.expr, ctx))
        .or_else(|| {
            aggregates.iter().find_map(|a| {
                // COUNT(DISTINCT …) needs a cross-morsel value set; it
                // stays on the sequential path.
                if a.func == AggFunc::CountDistinct {
                    return Some("count-distinct".into());
                }
                a.arg.as_ref().and_then(|e| expr_fallback(e, ctx))
            })
        })
}

/// Run a fused chain + grouped aggregation, morsel-parallel where safe:
/// each morsel folds into per-group partial states, merged by a combine
/// step that walks morsels in index order (deterministic at any thread
/// count).
pub(crate) fn run_aggregate(
    input: &Batch,
    ops: &[MorselOp<'_>],
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    let rows = input.rows();
    let morsels = planned_morsels(input, ops, Some((keys, aggregates)), ctx);
    if morsels <= 1 {
        let inp = apply_ops(input.clone(), ops, ctx)?;
        return exact::aggregate_batch(&inp, keys, aggregates, ctx);
    }

    type PartialSlot = Option<Result<Option<PartialAgg>, ExecError>>;
    let cols = to_partition_cols(input);
    let morsel_rows = ctx.morsel_rows;
    let next = AtomicUsize::new(0);
    let slots: Mutex<Vec<PartialSlot>> = Mutex::new((0..morsels).map(|_| None).collect());

    let work = |wctx: &ExecContext| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= morsels {
            break;
        }
        let start = i * morsel_rows;
        let end = (start + morsel_rows).min(rows);
        let out = apply_ops(slice_cols(&cols, start, end), ops, wctx)
            .and_then(|b| partial_aggregate(&b, keys, aggregates, wctx));
        slots.lock().expect("agg state poisoned")[i] = Some(out);
    };

    let workers = ctx.threads.min(morsels).max(1);
    run_workers(workers, &WorkerCfg::of(ctx), &work);

    let mut partials = Vec::with_capacity(morsels);
    for slot in slots.into_inner().expect("agg state poisoned") {
        match slot.expect("aggregate morsels are never skipped") {
            Err(e) => return Err(e),
            Ok(Some(p)) => partials.push(p),
            Ok(None) => {} // empty morsel after filtering
        }
    }
    merge_partials(partials, keys, aggregates, input, ops, ctx)
}

/// Fold one morsel into per-group partial states. Returns `None` for an
/// empty morsel (every row filtered out) — it contributes no groups.
fn partial_aggregate(
    batch: &Batch,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    ctx: &ExecContext,
) -> Result<Option<PartialAgg>, ExecError> {
    use tdp_tensor::sort::group_ids;
    let n = batch.rows();
    if n == 0 {
        return Ok(None);
    }

    let mut key_cols: Vec<EncodedTensor> = Vec::with_capacity(keys.len());
    for k in keys {
        match eval_expr(&k.expr, batch, ctx)? {
            Value::Column(c) => key_cols.push(c),
            other => {
                return Err(ExecError::TypeMismatch(format!(
                    "GROUP BY expression must be a column, got {other:?}"
                )))
            }
        }
    }

    let (ids, groups, rep_rows) = if key_cols.is_empty() {
        (
            Tensor::from_vec(vec![0i64; n], &[n]),
            1usize,
            Tensor::from_vec(vec![0i64], &[1]),
        )
    } else {
        let codes: Vec<I64Tensor> = key_cols
            .iter()
            .map(exact::key_codes)
            .collect::<Result<_, _>>()?;
        let refs: Vec<&I64Tensor> = codes.iter().collect();
        let (ids, distinct) = group_ids(&refs);
        let groups = distinct.shape()[0];
        let mut rep = vec![-1i64; groups];
        for (row, &g) in ids.data().iter().enumerate() {
            if rep[g as usize] < 0 {
                rep[g as usize] = row as i64;
            }
        }
        (ids, groups, Tensor::from_vec(rep, &[groups]))
    };

    let key_reps: Vec<EncodedTensor> = key_cols.iter().map(|c| c.select_rows(&rep_rows)).collect();
    let merge_keys: Vec<Vec<MergeKey>> = key_cols
        .iter()
        .map(|c| {
            Ok(match c {
                EncodedTensor::Dict { codes, dict } => rep_rows
                    .data()
                    .iter()
                    .map(|&r| MergeKey::Str(dict.decode_one(codes.at(r as usize)).to_owned()))
                    .collect(),
                other => {
                    let codes = exact::key_codes(other)?;
                    rep_rows
                        .data()
                        .iter()
                        .map(|&r| MergeKey::Int(codes.at(r as usize)))
                        .collect()
                }
            })
        })
        .collect::<Result<_, ExecError>>()?;

    let counts: Vec<i64> = {
        let ones = F32Tensor::ones(&[n]);
        ones.segment_sum(&ids, groups)
            .data()
            .iter()
            .map(|&c| c as i64)
            .collect()
    };

    let mut accs = Vec::with_capacity(aggregates.len());
    for agg in aggregates {
        let acc = match (agg.func, &agg.arg) {
            (AggFunc::Count, None) => AccColumn::Count(counts.clone()),
            (AggFunc::Count, Some(e)) => match eval_expr(e, batch, ctx)? {
                Value::Column(EncodedTensor::Bool(m)) => AccColumn::Count(
                    m.to_f32_mask()
                        .segment_sum(&ids, groups)
                        .data()
                        .iter()
                        .map(|&v| v as i64)
                        .collect(),
                ),
                _ => AccColumn::Count(counts.clone()),
            },
            (AggFunc::Sum, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                AccColumn::Sum(vals.segment_sum(&ids, groups).to_vec())
            }
            (AggFunc::Avg, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                AccColumn::Avg(vals.segment_sum(&ids, groups).to_vec())
            }
            (AggFunc::Min, Some(e)) | (AggFunc::Max, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let is_min = agg.func == AggFunc::Min;
                let init = if is_min {
                    f32::INFINITY
                } else {
                    f32::NEG_INFINITY
                };
                let mut acc = vec![init; groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row);
                    let slot = &mut acc[g as usize];
                    if (is_min && v < *slot) || (!is_min && v > *slot) {
                        *slot = v;
                    }
                }
                if is_min {
                    AccColumn::Min(acc)
                } else {
                    AccColumn::Max(acc)
                }
            }
            (AggFunc::Variance, Some(e)) | (AggFunc::Stddev, Some(e)) => {
                let vals = eval_expr(e, batch, ctx)?.into_f32_column(n)?;
                let mut sum = vec![0.0f64; groups];
                let mut sumsq = vec![0.0f64; groups];
                for (row, &g) in ids.data().iter().enumerate() {
                    let v = vals.at(row) as f64;
                    sum[g as usize] += v;
                    sumsq[g as usize] += v * v;
                }
                AccColumn::Moments { sum, sumsq }
            }
            (AggFunc::CountDistinct, _) => {
                unreachable!("COUNT(DISTINCT) is filtered by aggregate_fallback")
            }
            (f, None) => {
                return Err(ExecError::Unsupported(format!(
                    "{}(*) is not meaningful",
                    f.name()
                )))
            }
        };
        accs.push(acc);
    }

    Ok(Some(PartialAgg {
        key_reps,
        merge_keys,
        counts,
        accs,
        groups,
    }))
}

/// Merged accumulator of one output group.
struct MergedGroup {
    /// `(partial index, group index)` of the first-seen representative.
    rep: (usize, usize),
    count: i64,
    accs: Vec<AccVal>,
}

#[derive(Clone, Copy)]
enum AccVal {
    Count(i64),
    Sum(f32),
    Avg(f32),
    Min(f32),
    Max(f32),
    Moments { sum: f64, sumsq: f64 },
}

/// Combine morsel partials into the final grouped batch. Walks partials
/// in morsel order (first occurrence picks the representative key rows,
/// matching the sequential kernel's first-occurrence rule) and emits
/// groups in merge-key order, which equals the sequential kernel's
/// code-sorted group order.
fn merge_partials(
    partials: Vec<PartialAgg>,
    keys: &[PhysKey],
    aggregates: &[PhysAggregate],
    input: &Batch,
    ops: &[MorselOp<'_>],
    ctx: &ExecContext,
) -> Result<Batch, ExecError> {
    if partials.is_empty() {
        // Every morsel filtered to nothing: the sequential kernel's
        // zero-row behaviour (e.g. a global COUNT of 0) is authoritative.
        let empty = apply_ops(input.slice_rows(0, 0), ops, ctx)?;
        return exact::aggregate_batch(&empty, keys, aggregates, ctx);
    }

    let mut merged: BTreeMap<Vec<MergeKey>, MergedGroup> = BTreeMap::new();
    for (pi, p) in partials.iter().enumerate() {
        for g in 0..p.groups {
            let key: Vec<MergeKey> = p.merge_keys.iter().map(|col| col[g].clone()).collect();
            let entry = merged.entry(key).or_insert_with(|| MergedGroup {
                rep: (pi, g),
                count: 0,
                accs: p
                    .accs
                    .iter()
                    .map(|a| match a {
                        AccColumn::Count(_) => AccVal::Count(0),
                        AccColumn::Sum(_) => AccVal::Sum(0.0),
                        AccColumn::Avg(_) => AccVal::Avg(0.0),
                        AccColumn::Min(_) => AccVal::Min(f32::INFINITY),
                        AccColumn::Max(_) => AccVal::Max(f32::NEG_INFINITY),
                        AccColumn::Moments { .. } => AccVal::Moments {
                            sum: 0.0,
                            sumsq: 0.0,
                        },
                    })
                    .collect(),
            });
            entry.count += p.counts[g];
            for (acc, col) in entry.accs.iter_mut().zip(&p.accs) {
                match (acc, col) {
                    (AccVal::Count(t), AccColumn::Count(v)) => *t += v[g],
                    (AccVal::Sum(t), AccColumn::Sum(v)) => *t += v[g],
                    (AccVal::Avg(t), AccColumn::Avg(v)) => *t += v[g],
                    (AccVal::Min(t), AccColumn::Min(v)) => *t = t.min(v[g]),
                    (AccVal::Max(t), AccColumn::Max(v)) => *t = t.max(v[g]),
                    (AccVal::Moments { sum, sumsq }, AccColumn::Moments { sum: s, sumsq: q }) => {
                        *sum += s[g];
                        *sumsq += q[g];
                    }
                    _ => unreachable!("partial accumulator kinds are per-aggregate"),
                }
            }
        }
    }

    let groups: Vec<(&Vec<MergeKey>, &MergedGroup)> = merged.iter().collect();
    let num_groups = groups.len();

    let mut out = Batch::new();
    // Key columns: gather first-seen representatives out of the
    // concatenated per-morsel representative columns (encoding-preserving
    // concat + one gather per key).
    let mut offsets = Vec::with_capacity(partials.len());
    let mut total = 0usize;
    for p in &partials {
        offsets.push(total);
        total += p.groups;
    }
    for (ki, key) in keys.iter().enumerate() {
        let parts: Vec<&EncodedTensor> = partials.iter().map(|p| &p.key_reps[ki]).collect();
        let combined = EncodedTensor::concat(&parts);
        let idx: Vec<i64> = groups
            .iter()
            .map(|(_, m)| (offsets[m.rep.0] + m.rep.1) as i64)
            .collect();
        out.push(
            key.name.clone(),
            ColumnData::Exact(combined.select_rows(&Tensor::from_vec(idx, &[num_groups]))),
        );
    }

    for (ai, agg) in aggregates.iter().enumerate() {
        let col = match agg.func {
            AggFunc::Count => EncodedTensor::I64(Tensor::from_vec(
                groups
                    .iter()
                    .map(|(_, m)| match m.accs[ai] {
                        AccVal::Count(v) => v,
                        _ => unreachable!(),
                    })
                    .collect(),
                &[num_groups],
            )),
            AggFunc::Sum => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Sum(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Avg => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Avg(v) => v / m.count as f32,
                _ => unreachable!(),
            }),
            AggFunc::Min => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Min(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Max => f32_out(&groups, |m| match m.accs[ai] {
                AccVal::Max(v) => v,
                _ => unreachable!(),
            }),
            AggFunc::Variance | AggFunc::Stddev => {
                let is_stddev = agg.func == AggFunc::Stddev;
                f32_out(&groups, |m| match m.accs[ai] {
                    AccVal::Moments { sum, sumsq } => {
                        let c = m.count as f64;
                        if c <= 1.0 {
                            return 0.0;
                        }
                        let var = ((sumsq - sum * sum / c) / (c - 1.0)).max(0.0);
                        if is_stddev {
                            var.sqrt() as f32
                        } else {
                            var as f32
                        }
                    }
                    _ => unreachable!(),
                })
            }
            AggFunc::CountDistinct => unreachable!("filtered by aggregate_fallback"),
        };
        out.push(agg.output.clone(), ColumnData::Exact(col));
    }
    Ok(out)
}

fn f32_out(
    groups: &[(&Vec<MergeKey>, &MergedGroup)],
    f: impl Fn(&MergedGroup) -> f32,
) -> EncodedTensor {
    EncodedTensor::F32(Tensor::from_vec(
        groups.iter().map(|(_, m)| f(m)).collect(),
        &[groups.len()],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::lower;
    use tdp_sql::plan::{build_plan, PlannerContext};
    use tdp_sql::{optimizer, parse};
    use tdp_storage::TableBuilder;

    fn setup(n: usize) -> Catalog {
        let catalog = Catalog::new();
        let tags: Vec<String> = (0..n).map(|i| format!("t{}", i % 7)).collect();
        catalog.register(
            TableBuilder::new()
                .col_f32("v", (0..n).map(|i| (i as f32 * 0.37).sin()).collect())
                .col_i64("k", (0..n).map(|i| (i % 13) as i64).collect())
                .col_str("tag", &tags)
                .build("t"),
        );
        catalog
    }

    fn run_with(catalog: &Catalog, sql: &str, threads: usize, morsel_rows: usize) -> Batch {
        let udfs = UdfRegistry::new();
        let ctx = ExecContext::new(catalog, &udfs).with_scheduler(threads, morsel_rows);
        let plan = optimizer::optimize(
            build_plan(&parse(sql).unwrap(), &PlannerContext::default()).unwrap(),
        );
        let phys = lower(&plan, catalog, &udfs).unwrap();
        crate::pipeline::execute(&phys, &ctx).unwrap()
    }

    fn assert_batches_equal(a: &Batch, b: &Batch, sql: &str) {
        assert_eq!(a.rows(), b.rows(), "{sql}");
        assert_eq!(a.names(), b.names(), "{sql}");
        for (name, col) in a.columns() {
            assert_eq!(
                col.to_exact().decode_strings(),
                b.column(name).unwrap().to_exact().decode_strings(),
                "{sql} / {name}"
            );
        }
    }

    #[test]
    fn morselized_chains_match_whole_batch_execution() {
        let c = setup(500);
        for sql in [
            "SELECT v FROM t WHERE v > 0.0",
            "SELECT v * 2 AS d, k FROM t WHERE k < 9",
            "SELECT tag, v FROM t WHERE tag = 't3'",
            "SELECT v FROM t WHERE v > 0.2 LIMIT 37",
            "SELECT k, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY k",
            "SELECT tag, AVG(v), VARIANCE(v) FROM t WHERE v > -0.5 GROUP BY tag",
            "SELECT COUNT(*), SUM(v) FROM t WHERE v > 0.1",
        ] {
            let whole = run_with(&c, sql, 1, usize::MAX >> 1);
            for (threads, morsel) in [(1, 64), (3, 64), (2, 7), (5, 499)] {
                let m = run_with(&c, sql, threads, morsel);
                // Aggregated floats may differ in the last bit between the
                // whole-batch and morselized paths, but across thread
                // counts with a fixed morsel size they must be identical;
                // compare against the single-thread morselized run.
                let base = run_with(&c, sql, 1, morsel);
                assert_batches_equal(&m, &base, sql);
                // Row-wise pipelines are exactly equal to the whole batch.
                if !sql.contains("SUM") && !sql.contains("AVG") && !sql.contains("VARIANCE") {
                    assert_batches_equal(&m, &whole, sql);
                }
            }
        }
    }

    #[test]
    fn grouped_aggregates_match_sequential_values() {
        // Integer-exact aggregates are identical under any morselization.
        let c = setup(1000);
        let whole = run_with(
            &c,
            "SELECT k, COUNT(*) FROM t GROUP BY k",
            1,
            usize::MAX >> 1,
        );
        let m = run_with(&c, "SELECT k, COUNT(*) FROM t GROUP BY k", 4, 33);
        assert_batches_equal(&whole, &m, "count");
        // Float sums agree to tolerance.
        let ws = run_with(&c, "SELECT SUM(v) FROM t", 1, usize::MAX >> 1);
        let ms = run_with(&c, "SELECT SUM(v) FROM t", 4, 100);
        let a = ws.column("SUM(v)").unwrap().to_exact().decode_f32().at(0);
        let b = ms.column("SUM(v)").unwrap().to_exact().decode_f32().at(0);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn limit_early_exit_is_a_clean_prefix() {
        let c = setup(200);
        for limit in [0, 1, 6, 7, 8, 63, 64, 65, 199, 200, 500] {
            let sql = format!("SELECT k FROM t LIMIT {limit}");
            let out = run_with(&c, &sql, 3, 8);
            let expect: Vec<i64> = (0..200i64.min(limit)).map(|i| i % 13).collect();
            assert_eq!(
                out.column("k").unwrap().to_exact().decode_i64().to_vec(),
                expect,
                "{sql}"
            );
        }
    }

    #[test]
    fn unsafe_chains_fall_back_to_sequential() {
        use crate::udf::{ArgValue, ScalarUdf};
        use std::sync::Arc;
        struct PlusOne;
        impl ScalarUdf for PlusOne {
            fn name(&self) -> &str {
                "plus_one"
            }
            fn invoke(
                &self,
                args: &[ArgValue],
                _ctx: &ExecContext,
            ) -> Result<EncodedTensor, ExecError> {
                Ok(EncodedTensor::F32(
                    args[0].as_column()?.decode_f32().add_scalar(1.0),
                ))
            }
        }
        let c = setup(100);
        let mut udfs = UdfRegistry::new();
        udfs.register_scalar(Arc::new(PlusOne));
        let ctx = ExecContext::new(&c, &udfs).with_scheduler(4, 10);
        let plan = optimizer::optimize(
            build_plan(
                &parse("SELECT plus_one(v) AS w FROM t WHERE plus_one(v) > 1.0").unwrap(),
                &PlannerContext::default(),
            )
            .unwrap(),
        );
        let phys = lower(&plan, &c, &udfs).unwrap();
        let out = crate::pipeline::execute(&phys, &ctx).unwrap();
        assert!(out.rows() > 0);
        assert!(out
            .column("w")
            .unwrap()
            .to_exact()
            .decode_f32()
            .to_vec()
            .iter()
            .all(|&w| w > 1.0));
    }
}
